"""A-Steal-inspired baseline (the paper's reference [1]).

Agrawal–Leiserson–He–Hsu's adaptive work-stealing allocates by
*parallelism feedback*: each quantum the job reports whether it used its
processors efficiently; the scheduler grows its *desire* multiplicatively
when efficient and shrinks it when inefficient.  Their context has no
speculation — inefficiency is idling — but the protocol transplants
directly to ours by reading **utilisation = 1 − r** as the efficiency
signal:

* efficient window (``1 − r ≥ efficiency_threshold``): desire ``× growth``;
* inefficient window: desire ``/ growth``.

This gives a multiplicative-increase/multiplicative-decrease (MIMD)
baseline between AIMD and the paper's Recurrence B.  Characteristic
behaviour the ablation shows: geometric cold-start (like B) but a steady
state that *oscillates across the efficiency threshold* instead of
holding inside a dead-band — desire always moves.
"""

from __future__ import annotations

from repro.control.base import Controller, clamp
from repro.errors import ControllerError

__all__ = ["AStealController"]


class AStealController(Controller):
    """Windowed MIMD on the utilisation signal (A-Steal transplant)."""

    def __init__(
        self,
        rho: float,
        m0: int = 2,
        m_min: int = 2,
        m_max: int = 1024,
        period: int = 4,
        growth: float = 2.0,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if period < 1:
            raise ControllerError(f"averaging period must be >= 1, got {period}")
        if growth <= 1.0:
            raise ControllerError(f"growth factor must exceed 1, got {growth}")
        if m_min < 1 or m_min > m_max:
            raise ControllerError(f"bad allocation range [{m_min}, {m_max}]")
        self.rho = float(rho)
        #: a window is "efficient" when utilisation 1−r is at least this
        self.efficiency_threshold = 1.0 - float(rho)
        self.m0 = int(m0)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.period = int(period)
        self.growth = float(growth)
        self._do_reset()

    def _do_reset(self) -> None:
        self._desire = float(clamp(self.m0, self.m_min, self.m_max))
        self._acc = 0.0
        self._count = 0

    def _next_m(self) -> int:
        return clamp(self._desire, self.m_min, self.m_max)

    def _ingest(self, r: float, launched: int) -> None:
        self._acc += r
        self._count += 1
        if self._count < self.period:
            return
        avg = self._acc / self.period
        self._acc = 0.0
        self._count = 0
        old_m = clamp(self._desire, self.m_min, self.m_max)
        if 1.0 - avg >= self.efficiency_threshold:
            rule = "grow"
            self._desire *= self.growth  # efficient: ask for more
        else:
            rule = "shrink"
            self._desire /= self.growth  # inefficient: back off
        self._desire = float(self._clamped(self._desire, self.m_min, self.m_max))
        self._note_decision(
            rule, avg, old_m, int(self._desire), utilisation=1.0 - avg
        )

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "m0": self.m0,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "period": self.period,
            "growth": self.growth,
        }
