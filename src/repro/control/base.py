"""Controller interface for the processor-allocation problem (§4).

A controller decides, before each temporal step, how many processors
``m_t`` the runtime should use, and afterwards observes the realised
conflict ratio ``r_t``.  The engine guarantees the call order
``propose() → observe(r, launched) → propose() → …``.

Controllers are deliberately *environment-blind*: they see only the
``(r_t, m_t)`` history, exactly the information available to the paper's
recurrences (Eq. 31).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ControllerError

__all__ = ["Controller", "ControlTrace", "clamp"]


def clamp(m: float, m_min: int, m_max: int) -> int:
    """Round up and clamp an allocation into ``[m_min, m_max]``.

    The paper's recurrences use ceilings (⌈·⌉) so the controller never
    rounds itself into a fixed point below the target.
    """
    if m_min > m_max:
        raise ControllerError(f"empty allocation range [{m_min}, {m_max}]")
    import math

    return max(m_min, min(m_max, int(math.ceil(m))))


@dataclass
class ControlTrace:
    """Per-step history of a controller: proposals and observations."""

    proposals: list[int]
    observations: list[float]
    launched: list[int]

    @classmethod
    def empty(cls) -> "ControlTrace":
        return cls(proposals=[], observations=[], launched=[])

    @property
    def m_trace(self) -> np.ndarray:
        return np.array(self.proposals, dtype=np.int64)

    @property
    def r_trace(self) -> np.ndarray:
        return np.array(self.observations, dtype=float)

    def __len__(self) -> int:
        return len(self.proposals)


class Controller(abc.ABC):
    """Base class: bookkeeping plus the propose/observe contract."""

    def __init__(self) -> None:
        self.trace = ControlTrace.empty()
        self._awaiting_observation = False

    # -- subclass surface ------------------------------------------------
    @abc.abstractmethod
    def _next_m(self) -> int:
        """Current allocation decision (state-dependent, no side effects)."""

    def _ingest(self, r: float, launched: int) -> None:
        """Consume one observation; subclasses update their state here."""

    def _do_reset(self) -> None:
        """Subclass state reset (defaults to nothing extra)."""

    # -- engine-facing API -----------------------------------------------
    def propose(self) -> int:
        """The allocation ``m_t`` for the upcoming step."""
        m = int(self._next_m())
        if m < 1:
            raise ControllerError(f"{type(self).__name__} produced m={m} < 1")
        self.trace.proposals.append(m)
        self._awaiting_observation = True
        return m

    def observe(self, r: float, launched: int) -> None:
        """Report the realised conflict ratio of the step just executed."""
        if not self._awaiting_observation:
            raise ControllerError("observe() without a preceding propose()")
        if not 0.0 <= r <= 1.0:
            raise ControllerError(f"conflict ratio {r} outside [0, 1]")
        if launched < 0:
            raise ControllerError(f"launched count {launched} negative")
        self.trace.observations.append(float(r))
        self.trace.launched.append(int(launched))
        self._awaiting_observation = False
        self._ingest(float(r), int(launched))

    def reset(self) -> None:
        """Forget all history and return to the initial state."""
        self.trace = ControlTrace.empty()
        self._awaiting_observation = False
        self._do_reset()
