"""Controller interface for the processor-allocation problem (§4).

A controller decides, before each temporal step, how many processors
``m_t`` the runtime should use, and afterwards observes the realised
conflict ratio ``r_t``.  The engine guarantees the call order
``propose() → observe(r, launched) → propose() → …``.

Controllers are deliberately *environment-blind*: they see only the
``(r_t, m_t)`` history, exactly the information available to the paper's
recurrences (Eq. 31).

Observability: the engine may bind an event sink and a metrics scope via
:meth:`Controller.bind_observability`.  The base class then reports the
raw observation stream and clamp hits; subclasses report their *decisions*
(which rule fired on which windowed ``r``) through :meth:`_emit`, and
advertise their full configuration through :meth:`describe` so a recorded
trace can rebuild an identical controller for deterministic replay
(:mod:`repro.obs.replay`).  Unbound controllers skip all of it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ControllerError

__all__ = ["Controller", "ControlTrace", "clamp"]


def clamp(m: float, m_min: int, m_max: int) -> int:
    """Round up and clamp an allocation into ``[m_min, m_max]``.

    The paper's recurrences use ceilings (⌈·⌉) so the controller never
    rounds itself into a fixed point below the target.
    """
    if m_min > m_max:
        raise ControllerError(f"empty allocation range [{m_min}, {m_max}]")
    import math

    return max(m_min, min(m_max, int(math.ceil(m))))


@dataclass
class ControlTrace:
    """Per-step history of a controller: proposals and observations."""

    proposals: list[int]
    observations: list[float]
    launched: list[int]

    @classmethod
    def empty(cls) -> "ControlTrace":
        return cls(proposals=[], observations=[], launched=[])

    @property
    def m_trace(self) -> np.ndarray:
        return np.array(self.proposals, dtype=np.int64)

    @property
    def r_trace(self) -> np.ndarray:
        return np.array(self.observations, dtype=float)

    def __len__(self) -> int:
        return len(self.proposals)


class Controller(abc.ABC):
    """Base class: bookkeeping plus the propose/observe contract."""

    def __init__(self) -> None:
        self.trace = ControlTrace.empty()
        self._awaiting_observation = False
        self._sink = None  # duck-typed: anything with .emit(kind, step, **data)
        self._metrics = None
        self.clamp_hits = 0

    # -- observability ---------------------------------------------------
    def bind_observability(self, sink=None, metrics=None) -> None:
        """Attach an event sink and/or metrics scope (engine-side wiring).

        *sink* needs an ``emit(kind, step, **data)`` method (a
        :class:`repro.obs.TraceRecorder` qualifies); *metrics* a
        counter/gauge/histogram factory (a
        :class:`repro.obs.MetricsScope`).  Either may be ``None``.
        """
        self._sink = sink
        self._metrics = metrics

    def describe(self) -> dict:
        """Replay-sufficient configuration of this controller.

        Subclasses extend the dict with their constructor parameters; the
        contract is that ``controller_from_config(describe())`` builds a
        controller whose decision trajectory is identical on the same
        observation stream.
        """
        return {"type": type(self).__name__}

    def _emit(self, kind: str, **data) -> None:
        """Send one event to the bound sink (no-op when unbound).

        The step index is the 0-based engine step whose observation the
        controller just ingested.
        """
        if self._sink is not None:
            self._sink.emit(kind, step=max(len(self.trace.observations) - 1, 0), **data)

    def _note_decision(
        self, rule: str, windowed_r: float, m_old: int, m_new: int, **extra
    ) -> None:
        """Report one windowed update decision (event + rule counter).

        *rule* names the branch taken (``"B"``, ``"A"``, ``"hold"``,
        ``"increase"``, …); *extra* carries controller-specific inputs
        (thresholds, error terms, bracket state) so a trace explains the
        decision, not just its outcome.
        """
        self._emit(
            "decision",
            rule=rule,
            windowed_r=float(windowed_r),
            m_old=int(m_old),
            m_new=int(m_new),
            **extra,
        )
        if self._metrics is not None:
            self._metrics.counter(f"rule_{rule}").inc()

    def _clamped(self, value: float, m_min: int, m_max: int) -> int:
        """:func:`clamp` plus clamp-hit accounting and a ``clamp`` event."""
        m = clamp(value, m_min, m_max)
        if value < m_min or value > m_max:
            self.clamp_hits += 1
            bound = "low" if value < m_min else "high"
            self._emit("clamp", bound=bound, raw=float(value), m=m)
            if self._metrics is not None:
                self._metrics.counter(f"clamp_{bound}").inc()
        return m

    # -- subclass surface ------------------------------------------------
    @abc.abstractmethod
    def _next_m(self) -> int:
        """Current allocation decision (state-dependent, no side effects)."""

    def _ingest(self, r: float, launched: int) -> None:
        """Consume one observation; subclasses update their state here."""

    def _do_reset(self) -> None:
        """Subclass state reset (defaults to nothing extra)."""

    # -- engine-facing API -----------------------------------------------
    def propose(self) -> int:
        """The allocation ``m_t`` for the upcoming step."""
        m = int(self._next_m())
        if m < 1:
            raise ControllerError(f"{type(self).__name__} produced m={m} < 1")
        self.trace.proposals.append(m)
        self._awaiting_observation = True
        return m

    def observe(self, r: float, launched: int) -> None:
        """Report the realised conflict ratio of the step just executed."""
        if not self._awaiting_observation:
            raise ControllerError("observe() without a preceding propose()")
        if not 0.0 <= r <= 1.0:
            raise ControllerError(f"conflict ratio {r} outside [0, 1]")
        if launched < 0:
            raise ControllerError(f"launched count {launched} negative")
        self.trace.observations.append(float(r))
        self.trace.launched.append(int(launched))
        self._awaiting_observation = False
        if self._metrics is not None:
            self._metrics.counter("observations").inc()
            self._metrics.histogram("r").observe(r)
            self._metrics.gauge("m").set(self.trace.proposals[-1])
        self._ingest(float(r), int(launched))

    def reset(self) -> None:
        """Forget all history and return to the initial state."""
        self.trace = ControlTrace.empty()
        self._awaiting_observation = False
        self.clamp_hits = 0
        self._do_reset()
