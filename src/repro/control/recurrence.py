"""The paper's two elementary recurrences (§4, Eq. 32–33).

Both adjust the allocation every ``T`` steps from the conflict ratio
averaged over that window (the paper's first implementation optimisation —
per-step realisations ``r_t`` are far too noisy, especially at small ``m``):

* **Recurrence A** (Eq. 32)::

      m ← ⌈(1 − r + ρ) · m⌉

  Multiplicative nudging by the distance between observation and target.
  Slow (per window the growth factor is at most ``1 + ρ``) but robust to
  noise: an error ``ε`` in ``r`` perturbs ``m`` by only ``ε·m``.

* **Recurrence B** (Eq. 33)::

      m ← ⌈(ρ / r) · m⌉

  Assumes the conflict-ratio curve is initially linear through the origin
  (the experimental fact of Fig. 2), so it jumps straight to the predicted
  target.  Convergence is then essentially one window, but the division
  amplifies noise when ``r`` is small — hence the ``r_min`` floor.

The hybrid Algorithm 1 (:mod:`repro.control.hybrid`) switches between the
two; these standalone controllers exist for the Fig. 3 comparison and the
ablations.
"""

from __future__ import annotations

from repro.control.base import Controller, clamp
from repro.errors import ControllerError

__all__ = ["WindowedController", "RecurrenceAController", "RecurrenceBController"]


class WindowedController(Controller):
    """Shared machinery: average ``r`` over ``T`` steps, then update ``m``.

    Subclasses implement :meth:`_update` mapping the windowed average to a
    new (unclamped) allocation.
    """

    def __init__(
        self,
        rho: float,
        m0: int = 2,
        m_min: int = 2,
        m_max: int = 1024,
        period: int = 4,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if period < 1:
            raise ControllerError(f"averaging period must be >= 1, got {period}")
        if m_min < 1:
            raise ControllerError(f"m_min must be >= 1, got {m_min}")
        if m_min > m_max:
            raise ControllerError(f"empty allocation range [{m_min}, {m_max}]")
        self.rho = float(rho)
        self.m0 = int(m0)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.period = int(period)
        self._do_reset()

    def _do_reset(self) -> None:
        self._m = clamp(self.m0, self.m_min, self.m_max)
        self._acc = 0.0
        self._count = 0

    def _next_m(self) -> int:
        return self._m

    #: decision-event label of the recurrence a subclass implements
    rule_name = "update"

    def _ingest(self, r: float, launched: int) -> None:
        self._acc += r
        self._count += 1
        if self._count == self.period:
            avg = self._acc / self.period
            new_m = self._clamped(self._update(avg), self.m_min, self.m_max)
            self._note_decision(self.rule_name, avg, self._m, new_m)
            self._m = new_m
            self._acc = 0.0
            self._count = 0

    def _update(self, avg_r: float) -> float:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "m0": self.m0,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "period": self.period,
        }


class RecurrenceAController(WindowedController):
    """Recurrence A only: ``m ← ⌈(1 − r + ρ)·m⌉`` every window."""

    rule_name = "A"

    def _update(self, avg_r: float) -> float:
        return (1.0 - avg_r + self.rho) * self._m


class RecurrenceBController(WindowedController):
    """Recurrence B only: ``m ← ⌈(ρ/max(r, r_min))·m⌉`` every window."""

    rule_name = "B"

    def __init__(
        self,
        rho: float,
        m0: int = 2,
        m_min: int = 2,
        m_max: int = 1024,
        period: int = 4,
        r_min: float = 0.03,
    ) -> None:
        if not 0.0 < r_min < 1.0:
            raise ControllerError(f"r_min must be in (0,1), got {r_min}")
        super().__init__(rho, m0=m0, m_min=m_min, m_max=m_max, period=period)
        self.r_min = float(r_min)

    def _update(self, avg_r: float) -> float:
        return (self.rho / max(avg_r, self.r_min)) * self._m

    def describe(self) -> dict:
        return {**super().describe(), "r_min": self.r_min}
