"""Controller-run diagnostics: what did Algorithm 1 actually do?

Post-mortem analysis of a finished run — which update rule fired when,
how long each phase lasted, how the realised ratios distribute against
the target.  Useful both for debugging controller configurations and for
the ablation write-ups.

Works from the information the controller itself keeps — the
:class:`~repro.control.base.ControlTrace` and (for hybrids) the
``updates`` log of ``(step, rule, windowed r, new m)`` — or, via
:func:`diagnose_trace`, from a recorded :mod:`repro.obs` event trace,
which covers *any* controller type post hoc (including long-dead runs
reloaded from JSONL).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.hybrid import HybridController
from repro.errors import ControllerError, ObservabilityError

__all__ = [
    "RuleUsage",
    "HybridDiagnostics",
    "diagnose_hybrid",
    "SweepDiagnostics",
    "TraceDiagnostics",
    "diagnose_trace",
]


@dataclass(frozen=True)
class RuleUsage:
    """How often one update rule fired, and when it was last used."""

    rule: str
    count: int
    first_step: int
    last_step: int


@dataclass(frozen=True)
class HybridDiagnostics:
    """Summary of one hybrid-controller run."""

    rule_usage: dict[str, RuleUsage]
    cold_start_steps: int
    windows: int
    mean_window_r: float
    final_m: int
    r_percentiles: tuple[float, float, float]  # 10/50/90 of per-step r

    def render(self) -> str:
        lines = ["hybrid controller diagnostics:"]
        lines.append(
            f"  windows: {self.windows}, cold start (last B-rule step): "
            f"{self.cold_start_steps}"
        )
        for usage in self.rule_usage.values():
            lines.append(
                f"  rule {usage.rule:>4}: {usage.count:4d} firings "
                f"(steps {usage.first_step}..{usage.last_step})"
            )
        p10, p50, p90 = self.r_percentiles
        lines.append(
            f"  per-step r: p10={p10:.3f} p50={p50:.3f} p90={p90:.3f}; "
            f"mean windowed r = {self.mean_window_r:.3f}"
        )
        lines.append(f"  final allocation: {self.final_m}")
        return "\n".join(lines)


def diagnose_hybrid(controller: HybridController) -> HybridDiagnostics:
    """Analyse a finished :class:`HybridController` run.

    *Cold start* is measured as the last step at which Recurrence B fired
    while the allocation was still rising — the paper's "initial phase".
    """
    if not isinstance(controller, HybridController):
        raise ControllerError(
            f"diagnose_hybrid needs a HybridController, got {type(controller).__name__}"
        )
    if not controller.updates:
        raise ControllerError("controller has made no updates yet")
    usage: dict[str, RuleUsage] = {}
    for step, rule, _avg, _m in controller.updates:
        if rule not in usage:
            usage[rule] = RuleUsage(rule=rule, count=1, first_step=step, last_step=step)
        else:
            prev = usage[rule]
            usage[rule] = RuleUsage(
                rule=rule,
                count=prev.count + 1,
                first_step=prev.first_step,
                last_step=step,
            )
    # cold start: last B firing within the initial monotone climb
    cold = 0
    prev_m = 0
    for step, rule, _avg, new_m in controller.updates:
        if rule == "B" and new_m >= prev_m:
            cold = step
        elif new_m < prev_m:
            break
        prev_m = new_m
    rs = controller.trace.r_trace
    window_rs = np.array([avg for _s, _r, avg, _m in controller.updates])
    percentiles = tuple(float(p) for p in np.percentile(rs, [10, 50, 90])) if rs.size else (0.0, 0.0, 0.0)
    return HybridDiagnostics(
        rule_usage=usage,
        cold_start_steps=int(cold),
        windows=len(controller.updates),
        mean_window_r=float(window_rs.mean()) if window_rs.size else 0.0,
        final_m=controller.current_m,
        r_percentiles=percentiles,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# trace-based diagnostics (controller-type agnostic, works post hoc)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepDiagnostics:
    """Sweep-harness lifecycle summary extracted from ``sweep_*`` events.

    Traces recorded through :func:`repro.experiments.parallel.run_sweep`
    interleave these with engine/controller events; the counts here are
    the sweep's whole failure story — attempts, retries, quarantines —
    as recorded, independent of any live sweep object.
    """

    sweeps: int
    configs: int
    attempts: int
    completed: int
    cached: int
    reseeded: int
    retries: int
    quarantined: int
    failures_by_kind: dict[str, int]

    @property
    def failures(self) -> int:
        return sum(self.failures_by_kind.values())

    def render(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.failures_by_kind.items())
        )
        return (
            f"  sweep: {self.sweeps} invocation(s), {self.configs} configs, "
            f"{self.attempts} attempts\n"
            f"  sweep outcomes: {self.completed} completed "
            f"({self.cached} cached, {self.reseeded} reseeded), "
            f"{self.quarantined} quarantined\n"
            f"  sweep failures: {self.failures} ({kinds or 'none'}), "
            f"{self.retries} retries"
        )


@dataclass(frozen=True)
class TraceDiagnostics:
    """Summary of one recorded run segment (see :mod:`repro.obs`).

    ``sweep`` is populated when the segment interleaves sweep-harness
    lifecycle events with the engine/controller ones; ``None`` for a
    plain engine trace.
    """

    controller_type: str
    steps: int
    rule_usage: dict[str, RuleUsage]
    clamp_hits: int
    deadband_fraction: float  # fraction of decisions that held m unchanged
    mean_window_r: float
    final_m: int
    r_percentiles: tuple[float, float, float]
    sweep: "SweepDiagnostics | None" = None

    def render(self) -> str:
        lines = [f"trace diagnostics ({self.controller_type}, {self.steps} steps):"]
        for usage in self.rule_usage.values():
            lines.append(
                f"  rule {usage.rule:>8}: {usage.count:4d} firings "
                f"(steps {usage.first_step}..{usage.last_step})"
            )
        p10, p50, p90 = self.r_percentiles
        lines.append(
            f"  per-step r: p10={p10:.3f} p50={p50:.3f} p90={p90:.3f}; "
            f"mean windowed r = {self.mean_window_r:.3f}"
        )
        lines.append(
            f"  clamp hits: {self.clamp_hits}; dead-band/hold decisions: "
            f"{self.deadband_fraction:.0%}"
        )
        lines.append(f"  final allocation: {self.final_m}")
        if self.sweep is not None:
            lines.append(self.sweep.render())
        return "\n".join(lines)


def diagnose_trace(events) -> TraceDiagnostics:
    """Analyse one run segment of a recorded event trace.

    *events* is a list of :class:`repro.obs.TraceEvent` holding exactly
    one run (use :func:`repro.obs.split_runs` on a multi-run trace).
    Unlike :func:`diagnose_hybrid` this needs no live controller object —
    traces loaded from JSONL work — and it understands every controller
    type, since decision events are self-describing.

    Sweep-harness lifecycle events (``sweep_start``, ``sweep_task_*``,
    …) interleaved in the same trace are summarised into the
    :attr:`TraceDiagnostics.sweep` field; a sweep-only trace (no
    ``run_start`` at all) yields a diagnostics object with zero engine
    steps rather than an error.
    """
    # deferred: repro.obs's package __init__ transitively imports the
    # control package, so a top-level import here would close the cycle
    from repro.obs.events import (
        SWEEP_START,
        SWEEP_TASK_COMPLETE,
        SWEEP_TASK_FAILED,
        SWEEP_TASK_QUARANTINED,
        SWEEP_TASK_RETRY,
        SWEEP_TASK_START,
    )

    controller_type = "unknown"
    usage: dict[str, RuleUsage] = {}
    clamp_hits = 0
    holds = 0
    decisions = 0
    window_rs: list[float] = []
    step_rs: list[float] = []
    final_m = 0
    saw_run = False
    sweeps = 0
    sweep_configs = 0
    sweep_attempts = 0
    sweep_completed = 0
    sweep_cached = 0
    sweep_reseeded = 0
    sweep_retries = 0
    sweep_quarantined = 0
    failures_by_kind: dict[str, int] = {}
    saw_sweep = False
    for event in events:
        if event.kind in (
            SWEEP_START,
            SWEEP_TASK_START,
            SWEEP_TASK_FAILED,
            SWEEP_TASK_RETRY,
            SWEEP_TASK_QUARANTINED,
            SWEEP_TASK_COMPLETE,
        ):
            saw_sweep = True
            if event.kind == SWEEP_START:
                sweeps += 1
                sweep_configs += int(event.get("configs", 0))
            elif event.kind == SWEEP_TASK_START:
                sweep_attempts += 1
            elif event.kind == SWEEP_TASK_FAILED:
                kind = str(event.get("failure", "unknown"))
                failures_by_kind[kind] = failures_by_kind.get(kind, 0) + 1
            elif event.kind == SWEEP_TASK_RETRY:
                sweep_retries += 1
            elif event.kind == SWEEP_TASK_QUARANTINED:
                sweep_quarantined += 1
            elif event.kind == SWEEP_TASK_COMPLETE:
                sweep_completed += 1
                sweep_cached += int(bool(event.get("cached")))
                sweep_reseeded += int(bool(event.get("reseeded")))
            continue
        if event.kind == "run_start":
            if saw_run:
                raise ObservabilityError(
                    "diagnose_trace expects a single run segment; use "
                    "repro.obs.split_runs first"
                )
            saw_run = True
            config = event.get("controller") or {}
            controller_type = str(config.get("type", "unknown"))
        elif event.kind == "step":
            step_rs.append(float(event.data["conflict_ratio"]))
            final_m = int(event.data["requested"])
        elif event.kind == "clamp":
            clamp_hits += 1
        elif event.kind == "decision":
            decisions += 1
            rule = str(event.data["rule"])
            window_rs.append(float(event.data["windowed_r"]))
            if int(event.data["m_new"]) == int(event.data["m_old"]):
                holds += 1
            prev = usage.get(rule)
            if prev is None:
                usage[rule] = RuleUsage(
                    rule=rule, count=1, first_step=event.step, last_step=event.step
                )
            else:
                usage[rule] = RuleUsage(
                    rule=rule,
                    count=prev.count + 1,
                    first_step=prev.first_step,
                    last_step=event.step,
                )
    if not saw_run and not saw_sweep:
        raise ObservabilityError("trace segment has no run_start event")
    sweep_diag = None
    if saw_sweep:
        sweep_diag = SweepDiagnostics(
            sweeps=sweeps,
            configs=sweep_configs,
            attempts=sweep_attempts,
            completed=sweep_completed,
            cached=sweep_cached,
            reseeded=sweep_reseeded,
            retries=sweep_retries,
            quarantined=sweep_quarantined,
            failures_by_kind=failures_by_kind,
        )
    rs = np.asarray(step_rs, dtype=float)
    percentiles = (
        tuple(float(p) for p in np.percentile(rs, [10, 50, 90]))
        if rs.size
        else (0.0, 0.0, 0.0)
    )
    return TraceDiagnostics(
        controller_type=controller_type,
        steps=len(step_rs),
        rule_usage=usage,
        clamp_hits=clamp_hits,
        deadband_fraction=holds / decisions if decisions else 0.0,
        mean_window_r=float(np.mean(window_rs)) if window_rs else 0.0,
        final_m=final_m,
        r_percentiles=percentiles,  # type: ignore[arg-type]
        sweep=sweep_diag,
    )
