"""Controller-run diagnostics: what did Algorithm 1 actually do?

Post-mortem analysis of a finished run — which update rule fired when,
how long each phase lasted, how the realised ratios distribute against
the target.  Useful both for debugging controller configurations and for
the ablation write-ups.

Works from the information the controller itself keeps — the
:class:`~repro.control.base.ControlTrace` and (for hybrids) the
``updates`` log of ``(step, rule, windowed r, new m)`` — or, via
:func:`diagnose_trace`, from a recorded :mod:`repro.obs` event trace,
which covers *any* controller type post hoc (including long-dead runs
reloaded from JSONL).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.hybrid import HybridController
from repro.errors import ControllerError, ObservabilityError

__all__ = [
    "RuleUsage",
    "HybridDiagnostics",
    "diagnose_hybrid",
    "SweepDiagnostics",
    "OrderDiagnostics",
    "TraceDiagnostics",
    "diagnose_trace",
]


@dataclass(frozen=True)
class RuleUsage:
    """How often one update rule fired, and when it was last used."""

    rule: str
    count: int
    first_step: int
    last_step: int


@dataclass(frozen=True)
class HybridDiagnostics:
    """Summary of one hybrid-controller run."""

    rule_usage: dict[str, RuleUsage]
    cold_start_steps: int
    windows: int
    mean_window_r: float
    final_m: int
    r_percentiles: tuple[float, float, float]  # 10/50/90 of per-step r

    def render(self) -> str:
        lines = ["hybrid controller diagnostics:"]
        lines.append(
            f"  windows: {self.windows}, cold start (last B-rule step): "
            f"{self.cold_start_steps}"
        )
        for usage in self.rule_usage.values():
            lines.append(
                f"  rule {usage.rule:>4}: {usage.count:4d} firings "
                f"(steps {usage.first_step}..{usage.last_step})"
            )
        p10, p50, p90 = self.r_percentiles
        lines.append(
            f"  per-step r: p10={p10:.3f} p50={p50:.3f} p90={p90:.3f}; "
            f"mean windowed r = {self.mean_window_r:.3f}"
        )
        lines.append(f"  final allocation: {self.final_m}")
        return "\n".join(lines)


def diagnose_hybrid(controller: HybridController) -> HybridDiagnostics:
    """Analyse a finished :class:`HybridController` run.

    *Cold start* is measured as the last step at which Recurrence B fired
    while the allocation was still rising — the paper's "initial phase".
    """
    if not isinstance(controller, HybridController):
        raise ControllerError(
            f"diagnose_hybrid needs a HybridController, got {type(controller).__name__}"
        )
    if not controller.updates:
        raise ControllerError("controller has made no updates yet")
    usage: dict[str, RuleUsage] = {}
    for step, rule, _avg, _m in controller.updates:
        if rule not in usage:
            usage[rule] = RuleUsage(rule=rule, count=1, first_step=step, last_step=step)
        else:
            prev = usage[rule]
            usage[rule] = RuleUsage(
                rule=rule,
                count=prev.count + 1,
                first_step=prev.first_step,
                last_step=step,
            )
    # cold start: last B firing within the initial monotone climb
    cold = 0
    prev_m = 0
    for step, rule, _avg, new_m in controller.updates:
        if rule == "B" and new_m >= prev_m:
            cold = step
        elif new_m < prev_m:
            break
        prev_m = new_m
    rs = controller.trace.r_trace
    window_rs = np.array([avg for _s, _r, avg, _m in controller.updates])
    percentiles = tuple(float(p) for p in np.percentile(rs, [10, 50, 90])) if rs.size else (0.0, 0.0, 0.0)
    return HybridDiagnostics(
        rule_usage=usage,
        cold_start_steps=int(cold),
        windows=len(controller.updates),
        mean_window_r=float(window_rs.mean()) if window_rs.size else 0.0,
        final_m=controller.current_m,
        r_percentiles=percentiles,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# trace-based diagnostics (controller-type agnostic, works post hoc)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepDiagnostics:
    """Sweep-harness lifecycle summary extracted from ``sweep_*`` events.

    Traces recorded through :func:`repro.experiments.parallel.run_sweep`
    interleave these with engine/controller events; the counts here are
    the sweep's whole failure story — attempts, retries, quarantines —
    as recorded, independent of any live sweep object.
    """

    sweeps: int
    configs: int
    attempts: int
    completed: int
    cached: int
    reseeded: int
    retries: int
    quarantined: int
    failures_by_kind: dict[str, int]

    @property
    def failures(self) -> int:
        return sum(self.failures_by_kind.values())

    def render(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.failures_by_kind.items())
        )
        return (
            f"  sweep: {self.sweeps} invocation(s), {self.configs} configs, "
            f"{self.attempts} attempts\n"
            f"  sweep outcomes: {self.completed} completed "
            f"({self.cached} cached, {self.reseeded} reseeded), "
            f"{self.quarantined} quarantined\n"
            f"  sweep failures: {self.failures} ({kinds or 'none'}), "
            f"{self.retries} retries"
        )


@dataclass(frozen=True)
class OrderDiagnostics:
    """Commit-order policy summary from ``order_decision`` and friends.

    Covers the two shapes an ``order_decision`` event takes — windowed
    draws from the relaxed/async policies (``window``/``draws`` fields)
    and sharded rounds (``shards``/per-shard ``launched``/``committed``
    lists) — plus the sharded runtime's ``halo_exchange`` supervisor
    events and, in a *merged* distributed trace
    (:func:`repro.obs.merge_traces`), the per-worker ``shard_round``
    stream.
    """

    policies: tuple[str, ...]
    decisions: int
    windowed_draws: int
    shard_rounds: int
    shards: int
    launched_by_shard: tuple[int, ...]
    committed_by_shard: tuple[int, ...]
    halo_exchanges: int
    halo_aborts: int
    worker_rounds: int

    def render(self) -> str:
        lines = [f"  order policies: {', '.join(self.policies) or 'none'}"]
        if self.windowed_draws:
            lines.append(
                f"  order decisions: {self.decisions} "
                f"({self.windowed_draws} windowed draws)"
            )
        if self.shard_rounds:
            per_shard = ", ".join(
                f"shard {i}: {l}/{c}"
                for i, (l, c) in enumerate(
                    zip(self.launched_by_shard, self.committed_by_shard)
                )
            )
            lines.append(
                f"  sharded rounds: {self.shard_rounds} across "
                f"{self.shards} shards (launched/committed — {per_shard})"
            )
            lines.append(
                f"  halo: {self.halo_exchanges} exchanges, "
                f"{self.halo_aborts} aborts"
            )
        if self.worker_rounds:
            lines.append(
                f"  worker shard_round events (merged stream): {self.worker_rounds}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TraceDiagnostics:
    """Summary of one recorded run segment (see :mod:`repro.obs`).

    ``sweep`` is populated when the segment interleaves sweep-harness
    lifecycle events with the engine/controller ones; ``None`` for a
    plain engine trace.  ``order`` is populated when the segment carries
    commit-order policy events (``order_decision``, ``halo_exchange``,
    ``shard_round``); ``None`` for plain unordered runs.
    """

    controller_type: str
    steps: int
    rule_usage: dict[str, RuleUsage]
    clamp_hits: int
    deadband_fraction: float  # fraction of decisions that held m unchanged
    mean_window_r: float
    final_m: int
    r_percentiles: tuple[float, float, float]
    sweep: "SweepDiagnostics | None" = None
    order: "OrderDiagnostics | None" = None

    def render(self) -> str:
        lines = [f"trace diagnostics ({self.controller_type}, {self.steps} steps):"]
        for usage in self.rule_usage.values():
            lines.append(
                f"  rule {usage.rule:>8}: {usage.count:4d} firings "
                f"(steps {usage.first_step}..{usage.last_step})"
            )
        p10, p50, p90 = self.r_percentiles
        lines.append(
            f"  per-step r: p10={p10:.3f} p50={p50:.3f} p90={p90:.3f}; "
            f"mean windowed r = {self.mean_window_r:.3f}"
        )
        lines.append(
            f"  clamp hits: {self.clamp_hits}; dead-band/hold decisions: "
            f"{self.deadband_fraction:.0%}"
        )
        lines.append(f"  final allocation: {self.final_m}")
        if self.order is not None:
            lines.append(self.order.render())
        if self.sweep is not None:
            lines.append(self.sweep.render())
        return "\n".join(lines)


def diagnose_trace(events) -> TraceDiagnostics:
    """Analyse one run segment of a recorded event trace.

    *events* is a list of :class:`repro.obs.TraceEvent` holding exactly
    one run (use :func:`repro.obs.split_runs` on a multi-run trace).
    Unlike :func:`diagnose_hybrid` this needs no live controller object —
    traces loaded from JSONL work — and it understands every controller
    type, since decision events are self-describing.

    Sweep-harness lifecycle events (``sweep_start``, ``sweep_task_*``,
    …) interleaved in the same trace are summarised into the
    :attr:`TraceDiagnostics.sweep` field; a sweep-only trace (no
    ``run_start`` at all) yields a diagnostics object with zero engine
    steps rather than an error.  Commit-order events (``order_decision``,
    ``halo_exchange``, and — in merged distributed traces — the workers'
    ``shard_round`` stream) land in :attr:`TraceDiagnostics.order`.
    """
    # deferred: repro.obs's package __init__ transitively imports the
    # control package, so a top-level import here would close the cycle
    from repro.obs.events import (
        HALO_EXCHANGE,
        ORDER_DECISION,
        SHARD_ROUND,
        SWEEP_START,
        SWEEP_TASK_COMPLETE,
        SWEEP_TASK_FAILED,
        SWEEP_TASK_QUARANTINED,
        SWEEP_TASK_RETRY,
        SWEEP_TASK_START,
    )

    controller_type = "unknown"
    usage: dict[str, RuleUsage] = {}
    clamp_hits = 0
    holds = 0
    decisions = 0
    window_rs: list[float] = []
    step_rs: list[float] = []
    final_m = 0
    saw_run = False
    sweeps = 0
    sweep_configs = 0
    sweep_attempts = 0
    sweep_completed = 0
    sweep_cached = 0
    sweep_reseeded = 0
    sweep_retries = 0
    sweep_quarantined = 0
    failures_by_kind: dict[str, int] = {}
    saw_sweep = False
    saw_order = False
    order_policies: set[str] = set()
    order_decisions = 0
    windowed_draws = 0
    shard_rounds = 0
    order_shards = 0
    launched_by_shard: list[int] = []
    committed_by_shard: list[int] = []
    halo_exchanges = 0
    halo_aborts = 0
    worker_rounds = 0

    def _tally(totals: "list[int]", counts) -> None:
        while len(totals) < len(counts):
            totals.append(0)
        for i, c in enumerate(counts):
            totals[i] += int(c)

    for event in events:
        if event.kind in (
            SWEEP_START,
            SWEEP_TASK_START,
            SWEEP_TASK_FAILED,
            SWEEP_TASK_RETRY,
            SWEEP_TASK_QUARANTINED,
            SWEEP_TASK_COMPLETE,
        ):
            saw_sweep = True
            if event.kind == SWEEP_START:
                sweeps += 1
                sweep_configs += int(event.get("configs", 0))
            elif event.kind == SWEEP_TASK_START:
                sweep_attempts += 1
            elif event.kind == SWEEP_TASK_FAILED:
                kind = str(event.get("failure", "unknown"))
                failures_by_kind[kind] = failures_by_kind.get(kind, 0) + 1
            elif event.kind == SWEEP_TASK_RETRY:
                sweep_retries += 1
            elif event.kind == SWEEP_TASK_QUARANTINED:
                sweep_quarantined += 1
            elif event.kind == SWEEP_TASK_COMPLETE:
                sweep_completed += 1
                sweep_cached += int(bool(event.get("cached")))
                sweep_reseeded += int(bool(event.get("reseeded")))
            continue
        if event.kind in (ORDER_DECISION, HALO_EXCHANGE, SHARD_ROUND):
            saw_order = True
            if event.kind == ORDER_DECISION:
                order_decisions += 1
                order_policies.add(str(event.get("policy", "unknown")))
                if "draws" in event.data:  # relaxed/async windowed shape
                    windowed_draws += len(event.data["draws"])
                if "shards" in event.data:  # sharded two-phase shape
                    shard_rounds += 1
                    order_shards = max(order_shards, int(event.data["shards"]))
                    _tally(launched_by_shard, event.get("launched", ()))
                    _tally(committed_by_shard, event.get("committed", ()))
            elif event.kind == HALO_EXCHANGE:
                halo_exchanges += 1
                halo_aborts += int(event.get("halo_aborts", 0))
            else:
                worker_rounds += 1
            continue
        if event.kind == "run_start":
            if saw_run:
                raise ObservabilityError(
                    "diagnose_trace expects a single run segment; use "
                    "repro.obs.split_runs first"
                )
            saw_run = True
            config = event.get("controller") or {}
            controller_type = str(config.get("type", "unknown"))
        elif event.kind == "step":
            step_rs.append(float(event.data["conflict_ratio"]))
            final_m = int(event.data["requested"])
        elif event.kind == "clamp":
            clamp_hits += 1
        elif event.kind == "decision":
            decisions += 1
            rule = str(event.data["rule"])
            window_rs.append(float(event.data["windowed_r"]))
            if int(event.data["m_new"]) == int(event.data["m_old"]):
                holds += 1
            prev = usage.get(rule)
            if prev is None:
                usage[rule] = RuleUsage(
                    rule=rule, count=1, first_step=event.step, last_step=event.step
                )
            else:
                usage[rule] = RuleUsage(
                    rule=rule,
                    count=prev.count + 1,
                    first_step=prev.first_step,
                    last_step=event.step,
                )
    if not saw_run and not saw_sweep:
        raise ObservabilityError("trace segment has no run_start event")
    order_diag = None
    if saw_order:
        order_diag = OrderDiagnostics(
            policies=tuple(sorted(order_policies)),
            decisions=order_decisions,
            windowed_draws=windowed_draws,
            shard_rounds=shard_rounds,
            shards=order_shards,
            launched_by_shard=tuple(launched_by_shard),
            committed_by_shard=tuple(committed_by_shard),
            halo_exchanges=halo_exchanges,
            halo_aborts=halo_aborts,
            worker_rounds=worker_rounds,
        )
    sweep_diag = None
    if saw_sweep:
        sweep_diag = SweepDiagnostics(
            sweeps=sweeps,
            configs=sweep_configs,
            attempts=sweep_attempts,
            completed=sweep_completed,
            cached=sweep_cached,
            reseeded=sweep_reseeded,
            retries=sweep_retries,
            quarantined=sweep_quarantined,
            failures_by_kind=failures_by_kind,
        )
    rs = np.asarray(step_rs, dtype=float)
    percentiles = (
        tuple(float(p) for p in np.percentile(rs, [10, 50, 90]))
        if rs.size
        else (0.0, 0.0, 0.0)
    )
    return TraceDiagnostics(
        controller_type=controller_type,
        steps=len(step_rs),
        rule_usage=usage,
        clamp_hits=clamp_hits,
        deadband_fraction=holds / decisions if decisions else 0.0,
        mean_window_r=float(np.mean(window_rs)) if window_rs else 0.0,
        final_m=final_m,
        r_percentiles=percentiles,  # type: ignore[arg-type]
        sweep=sweep_diag,
        order=order_diag,
    )
