"""Controller-run diagnostics: what did Algorithm 1 actually do?

Post-mortem analysis of a finished run — which update rule fired when,
how long each phase lasted, how the realised ratios distribute against
the target.  Useful both for debugging controller configurations and for
the ablation write-ups.

Works from the information the controller itself keeps: the
:class:`~repro.control.base.ControlTrace` and (for hybrids) the
``updates`` log of ``(step, rule, windowed r, new m)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.hybrid import HybridController
from repro.errors import ControllerError

__all__ = ["RuleUsage", "HybridDiagnostics", "diagnose_hybrid"]


@dataclass(frozen=True)
class RuleUsage:
    """How often one update rule fired, and when it was last used."""

    rule: str
    count: int
    first_step: int
    last_step: int


@dataclass(frozen=True)
class HybridDiagnostics:
    """Summary of one hybrid-controller run."""

    rule_usage: dict[str, RuleUsage]
    cold_start_steps: int
    windows: int
    mean_window_r: float
    final_m: int
    r_percentiles: tuple[float, float, float]  # 10/50/90 of per-step r

    def render(self) -> str:
        lines = ["hybrid controller diagnostics:"]
        lines.append(
            f"  windows: {self.windows}, cold start (last B-rule step): "
            f"{self.cold_start_steps}"
        )
        for usage in self.rule_usage.values():
            lines.append(
                f"  rule {usage.rule:>4}: {usage.count:4d} firings "
                f"(steps {usage.first_step}..{usage.last_step})"
            )
        p10, p50, p90 = self.r_percentiles
        lines.append(
            f"  per-step r: p10={p10:.3f} p50={p50:.3f} p90={p90:.3f}; "
            f"mean windowed r = {self.mean_window_r:.3f}"
        )
        lines.append(f"  final allocation: {self.final_m}")
        return "\n".join(lines)


def diagnose_hybrid(controller: HybridController) -> HybridDiagnostics:
    """Analyse a finished :class:`HybridController` run.

    *Cold start* is measured as the last step at which Recurrence B fired
    while the allocation was still rising — the paper's "initial phase".
    """
    if not isinstance(controller, HybridController):
        raise ControllerError(
            f"diagnose_hybrid needs a HybridController, got {type(controller).__name__}"
        )
    if not controller.updates:
        raise ControllerError("controller has made no updates yet")
    usage: dict[str, RuleUsage] = {}
    for step, rule, _avg, _m in controller.updates:
        if rule not in usage:
            usage[rule] = RuleUsage(rule=rule, count=1, first_step=step, last_step=step)
        else:
            prev = usage[rule]
            usage[rule] = RuleUsage(
                rule=rule,
                count=prev.count + 1,
                first_step=prev.first_step,
                last_step=step,
            )
    # cold start: last B firing within the initial monotone climb
    cold = 0
    prev_m = 0
    for step, rule, _avg, new_m in controller.updates:
        if rule == "B" and new_m >= prev_m:
            cold = step
        elif new_m < prev_m:
            break
        prev_m = new_m
    rs = controller.trace.r_trace
    window_rs = np.array([avg for _s, _r, avg, _m in controller.updates])
    percentiles = tuple(float(p) for p in np.percentile(rs, [10, 50, 90])) if rs.size else (0.0, 0.0, 0.0)
    return HybridDiagnostics(
        rule_usage=usage,
        cold_start_steps=int(cold),
        windows=len(controller.updates),
        mean_window_r=float(window_rs.mean()) if window_rs.size else 0.0,
        final_m=controller.current_m,
        r_percentiles=percentiles,  # type: ignore[arg-type]
    )
