"""Noise-adaptive variant of Algorithm 1 (extension).

The paper hand-tunes a second parameter set for small ``m`` because the
conflict-ratio signal is noisier there.  Instead of two fixed regimes,
this controller re-derives its window and dead-band from the *current*
allocation using the noise model of :mod:`repro.model.noise`:

* dead-band: ``α₁ = z·σ_w/ρ`` so the on-target false-trigger rate is a
  chosen constant at every ``m`` (the fixed-α₁ hybrid false-triggers ~40%
  of windows at m = 10 and almost never at m = 500);
* switch threshold: ``α₀ = max(α₀_base, 2·α₁)`` so Recurrence B only
  fires on genuinely large errors;
* window: lengthened (up to a cap) when even a maximal dead-band cannot
  contain the noise.

Behaviour degrades gracefully to the plain hybrid at large ``m``, where
the suggested dead-band falls below the paper's 6%.
"""

from __future__ import annotations

from repro.control.base import Controller, clamp
from repro.errors import ControllerError
from repro.model.noise import suggest_deadband, suggest_period

__all__ = ["NoiseAdaptiveHybridController"]


class NoiseAdaptiveHybridController(Controller):
    """Algorithm 1 with statistically derived, m-dependent thresholds."""

    def __init__(
        self,
        rho: float,
        m0: int = 2,
        m_min: int = 2,
        m_max: int = 1024,
        r_min: float = 0.03,
        alpha0_base: float = 0.25,
        alpha1_floor: float = 0.06,
        trigger_rate: float = 0.1,
        max_deadband: float = 0.35,
        base_period: int = 4,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if not 0.0 < r_min < 1.0:
            raise ControllerError(f"r_min must be in (0,1), got {r_min}")
        if not 0.0 < trigger_rate < 1.0:
            raise ControllerError(f"trigger rate must be in (0,1), got {trigger_rate}")
        if base_period < 1:
            raise ControllerError(f"base period must be >= 1, got {base_period}")
        if m_min < 1 or m_min > m_max:
            raise ControllerError(f"bad allocation range [{m_min}, {m_max}]")
        self.rho = float(rho)
        self.m0 = int(m0)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.r_min = float(r_min)
        self.alpha0_base = float(alpha0_base)
        self.alpha1_floor = float(alpha1_floor)
        self.trigger_rate = float(trigger_rate)
        self.max_deadband = float(max_deadband)
        self.base_period = int(base_period)
        self._do_reset()

    def _do_reset(self) -> None:
        self._m = clamp(self.m0, self.m_min, self.m_max)
        self._acc = 0.0
        self._count = 0
        self._period = self._current_period()

    # ------------------------------------------------------------------
    #: longest window the controller will wait between updates — beyond
    #: this, responsiveness costs more than the residual noise does
    PERIOD_CAP = 16

    def _current_period(self) -> int:
        suggested = suggest_period(
            self.rho, self._m, self.max_deadband, self.trigger_rate
        )
        return max(self.base_period, min(suggested, self.PERIOD_CAP))

    def current_thresholds(self) -> tuple[float, float, int]:
        """(α₀, α₁, T) the controller is using at the current allocation."""
        period = self._period
        alpha1 = max(
            suggest_deadband(self.rho, self._m, period, self.trigger_rate),
            self.alpha1_floor,
        )
        alpha1 = min(alpha1, self.max_deadband)
        alpha0 = max(self.alpha0_base, 2.0 * alpha1)
        return alpha0, alpha1, period

    # ------------------------------------------------------------------
    def _next_m(self) -> int:
        return self._m

    def _ingest(self, r: float, launched: int) -> None:
        self._acc += r
        self._count += 1
        if self._count < self._period:
            return
        avg = self._acc / self._period
        self._acc = 0.0
        self._count = 0
        alpha0, alpha1, _ = self.current_thresholds()
        alpha = abs(1.0 - avg / self.rho)
        if alpha > alpha0:
            effective = max(avg, self.r_min)
            new_m, rule = self._clamped(
                (self.rho / effective) * self._m, self.m_min, self.m_max
            ), "B"
        elif alpha > alpha1:
            new_m, rule = self._clamped(
                (1.0 - avg + self.rho) * self._m, self.m_min, self.m_max
            ), "A"
        else:
            new_m, rule = self._m, "hold"
        self._note_decision(
            rule,
            avg,
            self._m,
            new_m,
            alpha=alpha,
            alpha0=alpha0,
            alpha1=alpha1,
            period=self._period,
        )
        self._m = new_m
        self._period = self._current_period()

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "m0": self.m0,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "r_min": self.r_min,
            "alpha0_base": self.alpha0_base,
            "alpha1_floor": self.alpha1_floor,
            "trigger_rate": self.trigger_rate,
            "max_deadband": self.max_deadband,
            "base_period": self.base_period,
        }

    @property
    def current_m(self) -> int:
        return self._m
