"""Bisection controller (Eq. 30).

Prop. 1 makes ``r̄(m)`` non-decreasing, so the target ``μ`` (largest ``m``
with ``r̄(m) ≤ ρ``) can be bracketed::

    r̄(m′) ≤ ρ ≤ r̄(m″)  ⇒  m′ ≤ μ ≤ m″

The controller measures the windowed conflict ratio at the current probe,
moves the corresponding bracket end, and probes the midpoint, halving the
bracket every window.  Convergence is O(log m_max) *windows* — typically
slower in steps than Recurrence B's single jump and, unlike the paper's
hybrid, it has no natural re-tracking behaviour: when the workload drifts,
the bracket must be detected stale and re-opened (implemented here by
re-widening whenever the measurement contradicts the bracket).
"""

from __future__ import annotations

from repro.control.base import Controller, clamp
from repro.errors import ControllerError

__all__ = ["BisectionController"]


class BisectionController(Controller):
    """Windowed bisection on the monotone conflict-ratio curve."""

    def __init__(
        self,
        rho: float,
        m_min: int = 2,
        m_max: int = 1024,
        period: int = 4,
        slack: float = 0.02,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if period < 1:
            raise ControllerError(f"averaging period must be >= 1, got {period}")
        if m_min < 1 or m_min > m_max:
            raise ControllerError(f"bad allocation range [{m_min}, {m_max}]")
        if slack < 0:
            raise ControllerError(f"slack must be >= 0, got {slack}")
        self.rho = float(rho)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.period = int(period)
        self.slack = float(slack)
        self._do_reset()

    def _do_reset(self) -> None:
        self._lo = self.m_min  # invariant: believed r̄(lo) <= rho
        self._hi = self.m_max  # invariant: believed r̄(hi) >= rho
        self._m = self.m_min
        self._acc = 0.0
        self._count = 0

    def _next_m(self) -> int:
        return self._m

    def _ingest(self, r: float, launched: int) -> None:
        self._acc += r
        self._count += 1
        if self._count < self.period:
            return
        avg = self._acc / self.period
        self._acc = 0.0
        self._count = 0
        old_m = self._m
        if avg > self.rho + self.slack:
            rule = "above"
            # probe is above target: μ < m
            if self._m <= self._lo:
                # contradiction with the lower bracket -> environment moved
                self._lo = self.m_min
            self._hi = max(self._m - 1, self._lo)
        elif avg < self.rho - self.slack:
            rule = "below"
            if self._m >= self._hi:
                self._hi = self.m_max
            self._lo = min(self._m, self._hi)
        else:
            rule = "in_band"
            # inside the slack band: treat as converged at this probe
            self._lo = self._m
            self._hi = self._m
        if self._hi - self._lo <= 1:
            # bracket closed: sit at lo, except when lo itself just measured
            # below target and the (unconfirmed) hi is still available
            if avg < self.rho - self.slack and self._m == self._lo and self._hi > self._lo:
                nxt = self._hi
            else:
                nxt = self._lo
            self._m = clamp(nxt, self.m_min, self.m_max)
            # keep a live bracket so drift re-opens the search
            if self._hi == self._lo:
                self._hi = min(self._hi + 1, self.m_max)
        else:
            # round the probe up so a bracket like [m_max−1, m_max] still
            # tests the upper end instead of re-probing the lower one
            self._m = clamp((self._lo + self._hi + 1) // 2, self.m_min, self.m_max)
        self._note_decision(rule, avg, old_m, self._m, lo=self._lo, hi=self._hi)

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "period": self.period,
            "slack": self.slack,
        }
