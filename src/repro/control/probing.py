"""Probe-then-allocate controller (extension of §4's smart start).

The paper notes that *if* an estimate of the CC graph's average degree is
available, the controller can start at the provably safe allocation of
Cor. 3 instead of crawling up from ``m₀ = 2``.  This controller obtains
that estimate *online* by inverting Prop. 2:

    r̄(2) = Δr̄(1) = d / 2(n−1)   ⇒   d̂ = 2(n−1) · r̂(2)

Phase 1 (probe): run at ``m = 2`` for ``probe_windows·T`` steps and
average the observed conflict ratio into ``r̂(2)``.
Phase 2 (jump): allocate ``safe_initial_m(n, d̂, ρ)`` — worst-case safe
by Thm. 2/3 even though only the density, not the structure, is known.
Phase 3: hand over to a plain :class:`HybridController` seeded at that
allocation.

Needs the work-set size ``n`` (known to any real runtime).  The probe
costs ``2·probe_windows·T`` task slots; for sparse graphs ``r̂(2)`` is a
rare-event estimate, so the jump conservatively floors ``d̂`` at
``d_min`` to avoid over-allocating off a few lucky windows.
"""

from __future__ import annotations

from repro.control.base import Controller, clamp
from repro.control.hybrid import HybridController, HybridParams
from repro.errors import ControllerError
from repro.model.turan import safe_initial_m

__all__ = ["ProbingHybridController"]


class ProbingHybridController(Controller):
    """Estimate density at m = 2, jump to the Cor.-3 safe m, then hybrid."""

    def __init__(
        self,
        rho: float,
        n: int,
        probe_windows: int = 8,
        probe_window_steps: int = 4,
        d_min: float = 1.0,
        m_min: int = 2,
        m_max: int = 1024,
        params: HybridParams | None = None,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if n < 3:
            raise ControllerError(f"need work-set size n >= 3, got {n}")
        if probe_windows < 1 or probe_window_steps < 1:
            raise ControllerError(
                f"probe phase needs >= 1 window of >= 1 step, got "
                f"{probe_windows}×{probe_window_steps}"
            )
        if d_min <= 0:
            raise ControllerError(f"density floor must be positive, got {d_min}")
        if m_min < 1 or m_min > m_max:
            raise ControllerError(f"bad allocation range [{m_min}, {m_max}]")
        self.rho = float(rho)
        self.n = int(n)
        self.probe_steps = int(probe_windows * probe_window_steps)
        self.d_min = float(d_min)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.params = params or HybridParams()
        self.d_estimate: float | None = None
        self._do_reset()

    def _do_reset(self) -> None:
        self._probe_acc = 0.0
        self._probe_count = 0
        self._inner: HybridController | None = None
        self.d_estimate = None

    # ------------------------------------------------------------------
    def bind_observability(self, sink=None, metrics=None) -> None:
        super().bind_observability(sink, metrics)
        if self._inner is not None:
            self._inner.bind_observability(sink, metrics)

    def _next_m(self) -> int:
        if self._inner is not None:
            return self._inner.propose()
        return clamp(2, self.m_min, self.m_max)

    def _ingest(self, r: float, launched: int) -> None:
        if self._inner is not None:
            self._inner.observe(r, launched)
            return
        self._probe_acc += r
        self._probe_count += 1
        if self._probe_count < self.probe_steps:
            return
        r2 = self._probe_acc / self._probe_count
        # Prop. 2 inverted, floored against rare-event underestimation
        self.d_estimate = max(2.0 * (self.n - 1) * r2, self.d_min)
        d_capped = min(self.d_estimate, self.n - 1.0)
        m_start = safe_initial_m(self.n, d_capped, self.rho, m_min=self.m_min)
        self._inner = HybridController(
            self.rho,
            m0=clamp(m_start, self.m_min, self.m_max),
            m_min=self.m_min,
            m_max=self.m_max,
            params=self.params,
        )
        # the inner hybrid reports into the same sink/metrics (its decision
        # steps count from the handover, probe_steps after the run start)
        self._inner.bind_observability(self._sink, self._metrics)
        self._note_decision(
            "handover",
            r2,
            2,
            self._inner.current_m,
            d_estimate=self.d_estimate,
            probe_steps=self.probe_steps,
        )

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "n": self.n,
            "probe_steps": self.probe_steps,
            "d_min": self.d_min,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "params": self.params.as_dict(),
        }

    @property
    def probing(self) -> bool:
        """True while still in the m = 2 estimation phase."""
        return self._inner is None

    @property
    def current_m(self) -> int:
        if self._inner is not None:
            return self._inner.current_m
        return clamp(2, self.m_min, self.m_max)
