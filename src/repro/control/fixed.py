"""The trivial baseline: a constant processor allocation."""

from __future__ import annotations

from repro.control.base import Controller
from repro.errors import ControllerError

__all__ = ["FixedController"]


class FixedController(Controller):
    """Always allocate ``m`` processors.

    The static strawman of the processor-allocation problem: optimal only
    when the workload's parallelism happens to be constant and known.
    """

    def __init__(self, m: int):
        super().__init__()
        if m < 1:
            raise ControllerError(f"fixed allocation must be >= 1, got {m}")
        self.m = int(m)

    def _next_m(self) -> int:
        return self.m

    def describe(self) -> dict:
        return {"type": type(self).__name__, "m": self.m}
