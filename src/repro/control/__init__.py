"""Processor-allocation controllers: Algorithm 1 and baselines."""

from repro.control.adaptive import NoiseAdaptiveHybridController
from repro.control.aimd import AIMDController
from repro.control.asteal import AStealController
from repro.control.base import Controller, ControlTrace, clamp
from repro.control.bisection import BisectionController
from repro.control.diagnostics import (
    HybridDiagnostics,
    OrderDiagnostics,
    RuleUsage,
    SweepDiagnostics,
    TraceDiagnostics,
    diagnose_hybrid,
    diagnose_trace,
)
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController, HybridParams
from repro.control.oracle import OracleController, mu_from_curve
from repro.control.pid import PIController
from repro.control.probing import ProbingHybridController
from repro.control.recurrence import (
    RecurrenceAController,
    RecurrenceBController,
    WindowedController,
)
from repro.control.tuning import (
    ControllerMetrics,
    evaluate_controller,
    oracle_mu,
    summarize_sweep,
    sweep_controllers,
)

__all__ = [
    "NoiseAdaptiveHybridController",
    "AIMDController",
    "AStealController",
    "Controller",
    "ControlTrace",
    "clamp",
    "BisectionController",
    "HybridDiagnostics",
    "OrderDiagnostics",
    "SweepDiagnostics",
    "RuleUsage",
    "TraceDiagnostics",
    "diagnose_hybrid",
    "diagnose_trace",
    "FixedController",
    "HybridController",
    "HybridParams",
    "OracleController",
    "mu_from_curve",
    "PIController",
    "ProbingHybridController",
    "RecurrenceAController",
    "RecurrenceBController",
    "WindowedController",
    "ControllerMetrics",
    "evaluate_controller",
    "oracle_mu",
    "summarize_sweep",
    "sweep_controllers",
]
