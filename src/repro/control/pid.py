"""PI baseline controller in log-allocation space.

A textbook proportional–integral loop on the error ``e = ρ − r``.  The
plant gain is multiplicative (doubling ``m`` roughly doubles a small
``r̄(m)``, per Fig. 2's initial linearity), so the natural actuation space
is ``log m``::

    log m ← log m + K_p·(e − e_prev) + K_i·e        (velocity form)

The velocity form avoids integral wind-up at the clamps.  Included to show
where a generic control-theory answer lands between the paper's
purpose-built recurrences: with well-tuned gains it tracks acceptably but
needs that tuning per workload, while Algorithm 1's gains come from the
structure of ``r̄(m)`` itself.
"""

from __future__ import annotations

import math

from repro.control.base import Controller, clamp
from repro.errors import ControllerError

__all__ = ["PIController"]


class PIController(Controller):
    """Windowed velocity-form PI loop on ``log m``."""

    def __init__(
        self,
        rho: float,
        m0: int = 2,
        m_min: int = 2,
        m_max: int = 1024,
        period: int = 4,
        kp: float = 2.0,
        ki: float = 4.0,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if period < 1:
            raise ControllerError(f"averaging period must be >= 1, got {period}")
        if m_min < 1 or m_min > m_max:
            raise ControllerError(f"bad allocation range [{m_min}, {m_max}]")
        self.rho = float(rho)
        self.m0 = int(m0)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.period = int(period)
        self.kp = float(kp)
        self.ki = float(ki)
        self._do_reset()

    def _do_reset(self) -> None:
        self._log_m = math.log(max(self.m0, 1))
        self._m = clamp(self.m0, self.m_min, self.m_max)
        self._acc = 0.0
        self._count = 0
        self._prev_error: float | None = None

    def _next_m(self) -> int:
        return self._m

    def _ingest(self, r: float, launched: int) -> None:
        self._acc += r
        self._count += 1
        if self._count < self.period:
            return
        avg = self._acc / self.period
        self._acc = 0.0
        self._count = 0
        error = self.rho - avg
        delta = self.ki * error
        if self._prev_error is not None:
            delta += self.kp * (error - self._prev_error)
        self._prev_error = error
        self._log_m += delta
        # keep the latent state inside the actuator range (anti-windup)
        self._log_m = min(max(self._log_m, math.log(self.m_min)), math.log(self.m_max))
        new_m = self._clamped(math.exp(self._log_m), self.m_min, self.m_max)
        self._note_decision(
            "pi", avg, self._m, new_m, error=error, delta=delta
        )
        self._m = new_m

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "m0": self.m0,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "period": self.period,
            "kp": self.kp,
            "ki": self.ki,
        }
