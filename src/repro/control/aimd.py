"""AIMD baseline controller.

Additive-increase / multiplicative-decrease is the classic congestion-
control answer to the same structural problem (probe an unknown capacity,
back off on congestion signals), so it is the natural off-the-shelf
baseline for Algorithm 1: ``r > ρ`` plays the role of packet loss.

Its known weakness transfers too: the additive climb is O(μ) windows from
a cold start (versus Recurrence B's O(log μ) jumps), and the steady state
oscillates in a sawtooth instead of holding inside a dead-band.
"""

from __future__ import annotations

from repro.control.base import Controller, clamp
from repro.errors import ControllerError

__all__ = ["AIMDController"]


class AIMDController(Controller):
    """Windowed AIMD on the conflict-ratio signal."""

    def __init__(
        self,
        rho: float,
        m0: int = 2,
        m_min: int = 2,
        m_max: int = 1024,
        period: int = 4,
        increase: int = 4,
        decrease: float = 0.5,
        deadband: float = 0.06,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if period < 1:
            raise ControllerError(f"averaging period must be >= 1, got {period}")
        if increase < 1:
            raise ControllerError(f"additive increase must be >= 1, got {increase}")
        if not 0.0 < decrease < 1.0:
            raise ControllerError(f"decrease factor must be in (0,1), got {decrease}")
        if deadband < 0:
            raise ControllerError(f"deadband must be >= 0, got {deadband}")
        if m_min < 1 or m_min > m_max:
            raise ControllerError(f"bad allocation range [{m_min}, {m_max}]")
        self.rho = float(rho)
        self.m0 = int(m0)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.period = int(period)
        self.increase = int(increase)
        self.decrease = float(decrease)
        self.deadband = float(deadband)
        self._do_reset()

    def _do_reset(self) -> None:
        self._m = clamp(self.m0, self.m_min, self.m_max)
        self._acc = 0.0
        self._count = 0

    def _next_m(self) -> int:
        return self._m

    def _ingest(self, r: float, launched: int) -> None:
        self._acc += r
        self._count += 1
        if self._count < self.period:
            return
        avg = self._acc / self.period
        self._acc = 0.0
        self._count = 0
        if avg > self.rho * (1.0 + self.deadband):
            new_m, rule = self._clamped(
                self._m * self.decrease, self.m_min, self.m_max
            ), "decrease"
        elif avg < self.rho * (1.0 - self.deadband):
            new_m, rule = self._clamped(
                self._m + self.increase, self.m_min, self.m_max
            ), "increase"
        else:
            new_m, rule = self._m, "hold"
        self._note_decision(rule, avg, self._m, new_m, deadband=self.deadband)
        self._m = new_m

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "m0": self.m0,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "period": self.period,
            "increase": self.increase,
            "decrease": self.decrease,
            "deadband": self.deadband,
        }
