"""Oracle controller — the unattainable upper baseline.

Knows the environment's conflict-ratio curve ``r̄(m)`` (measured offline by
Monte Carlo) and jumps immediately to

    μ = max { m : r̄(m) ≤ ρ }

which is exactly the fixed point the adaptive controllers chase.  Settling
metrics of real controllers are reported relative to this target.
"""

from __future__ import annotations

import numpy as np

from repro.control.base import Controller, clamp
from repro.errors import ControllerError
from repro.model.conflict_ratio import ConflictCurve

__all__ = ["OracleController", "mu_from_curve"]


def mu_from_curve(curve: ConflictCurve, rho: float, m_min: int = 2) -> int:
    """``μ = max{m : r̄(m) ≤ ρ}`` from a sampled curve (grid + interpolation).

    Scans the sampled grid for the last point at or below ρ, then refines
    between neighbouring grid points by linear interpolation.
    """
    if not 0.0 < rho < 1.0:
        raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
    ms = np.asarray(curve.ms, dtype=float)
    rs = np.asarray(curve.ratios, dtype=float)
    below = np.nonzero(rs <= rho)[0]
    if below.size == 0:
        return m_min
    i = int(below[-1])
    if i == len(ms) - 1:
        return max(int(ms[-1]), m_min)
    m_lo, m_hi = ms[i], ms[i + 1]
    r_lo, r_hi = rs[i], rs[i + 1]
    if r_hi <= r_lo:  # flat or noisy segment: stay at the safe end
        return max(int(m_lo), m_min)
    frac = (rho - r_lo) / (r_hi - r_lo)
    return max(int(np.floor(m_lo + frac * (m_hi - m_lo))), m_min)


class OracleController(Controller):
    """Proposes the precomputed optimum ``μ`` from step one."""

    def __init__(self, mu: int, m_min: int = 2, m_max: int = 1024):
        super().__init__()
        if mu < 1:
            raise ControllerError(f"oracle target must be >= 1, got {mu}")
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.mu = clamp(mu, m_min, m_max)

    @classmethod
    def from_curve(
        cls, curve: ConflictCurve, rho: float, m_min: int = 2, m_max: int = 1024
    ) -> "OracleController":
        """Build directly from a measured conflict-ratio curve."""
        return cls(mu_from_curve(curve, rho, m_min=m_min), m_min=m_min, m_max=m_max)

    def _next_m(self) -> int:
        return self.mu

    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "mu": self.mu,
            "m_min": self.m_min,
            "m_max": self.m_max,
        }
