"""Controller evaluation and parameter sweeps (§4.1 and the ablations).

Metrics follow the paper's narrative for Fig. 3:

* **settling step** — how many temporal steps from the cold start
  ``m₀ = 2`` until the trajectory stays near the oracle target ``μ``
  (the paper reports ≈15 for the hybrid);
* **steady-state wobble** — relative dispersion of ``m_t`` after settling
  (the dead-band exists to keep this near zero, preserving locality);
* **tracking error** — mean ``|r_t − ρ|`` after settling.

Evaluation runs use the stationary :class:`ReplayGraphWorkload`, so the
oracle ``μ`` is well-defined for the whole run.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.control.base import Controller
from repro.control.oracle import mu_from_curve
from repro.errors import ControllerError
from repro.graph.ccgraph import CCGraph
from repro.model.conflict_ratio import conflict_ratio_curve
from repro.runtime.stats import RunResult
from repro.runtime.workloads import ReplayGraphWorkload
from repro.utils.rng import ensure_rng, spawn

__all__ = ["ControllerMetrics", "oracle_mu", "evaluate_controller", "sweep_controllers"]


@dataclass(frozen=True)
class ControllerMetrics:
    """Outcome of one controller evaluation run."""

    mu: int
    settling_step: int
    steady_mean_m: float
    steady_std_m: float
    steady_mean_r: float
    tracking_error: float
    steps: int
    churn: float = 0.0  # mean |Δm| per step (locality cost proxy)

    @property
    def settled(self) -> bool:
        """Whether the trajectory ever settled inside the band."""
        return self.settling_step < self.steps

    @property
    def wobble(self) -> float:
        """Relative steady-state dispersion of the allocation."""
        return self.steady_std_m / self.steady_mean_m if self.steady_mean_m else 0.0


def oracle_mu(
    graph: CCGraph,
    rho: float,
    m_max: int | None = None,
    grid_size: int = 24,
    reps: int = 100,
    seed=None,
) -> int:
    """Monte-Carlo estimate of ``μ = max{m : r̄(m) ≤ ρ}`` for *graph*."""
    n = graph.num_nodes
    if n < 2:
        raise ControllerError(f"need at least 2 nodes, got {n}")
    hi = min(m_max or n, n)
    ms = np.unique(np.geomspace(1, hi, grid_size).astype(int))
    ms = ms[ms >= 1]
    curve = conflict_ratio_curve(graph, ms, reps=reps, seed=seed)
    return mu_from_curve(curve, rho)


def evaluate_controller(
    controller: Controller,
    graph: CCGraph,
    rho: float,
    steps: int = 200,
    band: float = 0.3,
    mu: int | None = None,
    seed=None,
) -> tuple[ControllerMetrics, RunResult]:
    """Run *controller* on the stationary replay workload and score it.

    The CC graph is copied so repeated evaluations are independent.  *mu*
    may be supplied to avoid recomputing the oracle target across a sweep.
    """
    rng = ensure_rng(seed)
    mu_rng, run_rng = spawn(rng, 2)
    if mu is None:
        mu = oracle_mu(graph, rho, seed=mu_rng)
    workload = ReplayGraphWorkload(graph.copy())
    engine = workload.build_engine(controller, seed=run_rng)
    result = engine.run(max_steps=steps)
    settle = result.settling_step(mu, band=band)
    ms = result.m_trace
    rs = result.r_trace
    if settle < len(result):
        steady_m = ms[settle:]
        steady_r = rs[settle:]
    else:  # never settled: score the tail half so the metrics stay finite
        steady_m = ms[len(ms) // 2 :]
        steady_r = rs[len(rs) // 2 :]
    return (
        ControllerMetrics(
            mu=int(mu),
            settling_step=int(settle),
            steady_mean_m=float(steady_m.mean()),
            steady_std_m=float(steady_m.std()),
            steady_mean_r=float(steady_r.mean()),
            tracking_error=float(np.abs(steady_r - rho).mean()),
            steps=len(result),
            churn=result.allocation_churn(),
        ),
        result,
    )


def sweep_controllers(
    factories: dict[str, Callable[[], Controller]],
    graph: CCGraph,
    rho: float,
    steps: int = 200,
    replications: int = 5,
    band: float = 0.3,
    seed=None,
) -> dict[str, list[ControllerMetrics]]:
    """Evaluate several controller configurations on one graph.

    Each named factory is called once per replication (controllers are
    stateful); all configurations face the same per-replication RNG stream
    offsets for a paired comparison.
    """
    if replications < 1:
        raise ControllerError(f"need >= 1 replication, got {replications}")
    rng = ensure_rng(seed)
    mu = oracle_mu(graph, rho, seed=rng)
    rep_rngs = spawn(rng, replications)
    out: dict[str, list[ControllerMetrics]] = {name: [] for name in factories}
    for rep_rng in rep_rngs:
        streams = spawn(rep_rng, len(factories))
        for (name, factory), stream in zip(factories.items(), streams):
            metrics, _ = evaluate_controller(
                factory(), graph, rho, steps=steps, band=band, mu=mu, seed=stream
            )
            out[name].append(metrics)
    return out


def summarize_sweep(
    results: dict[str, list[ControllerMetrics]]
) -> list[tuple[str, float, float, float, float]]:
    """Aggregate sweep output into ``(name, settle, wobble, r̄, |r−ρ|)`` rows."""
    rows = []
    for name, metrics in results.items():
        rows.append(
            (
                name,
                float(np.mean([m.settling_step for m in metrics])),
                float(np.mean([m.wobble for m in metrics])),
                float(np.mean([m.steady_mean_r for m in metrics])),
                float(np.mean([m.tracking_error for m in metrics])),
            )
        )
    return rows
