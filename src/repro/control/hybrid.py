"""Algorithm 1 — the paper's hybrid processor-allocation controller.

The heuristic merges the two recurrences by the size of the relative error
``α = |1 − r/ρ|`` of the windowed conflict ratio ``r`` against the target
``ρ``:

* ``α > α₀`` (far from target) → **Recurrence B**, ``m ← ⌈(ρ/r)·m⌉`` with
  ``r`` floored at ``r_min`` — one aggressive jump exploiting the initial
  linearity of ``r̄(m)``;
* ``α₀ ≥ α > α₁`` (close) → **Recurrence A**, ``m ← ⌈(1−r+ρ)·m⌉`` — gentle
  noise-robust trimming;
* ``α ≤ α₁`` (dead-band) → no change, avoiding steady-state oscillation
  that would defeat locality (tasks hopping between processors).

Faithful to the pseudo-code with its published defaults
(``m₀=2, m_max=1024, m_min=2, T=4, r_min=3%, α₀=25%, α₁=6%``), plus the
two extensions the text describes but does not show:

* **small-m parameter set** — "for small values of m the variance is much
  bigger, so it is better to tune separately this case": below
  ``small_m_threshold`` an alternative (typically longer) window and wider
  dead-band apply (Fig. 3's caption: different parameters for m ≶ 20);
* **smart start** — Cor. 3 gives a provably safe initial allocation
  ``m₀ = n/(2(d+1))`` (conflict ratio ≤ 21.3%) when an estimate of the
  graph's average degree is available; see
  :func:`repro.model.turan.safe_initial_m` and :meth:`HybridController.smart_start`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.base import Controller, clamp
from repro.errors import ControllerError
from repro.model.turan import safe_initial_m

__all__ = ["HybridParams", "HybridController"]


@dataclass(frozen=True)
class HybridParams:
    """Window/threshold parameters of Algorithm 1 (one regime)."""

    period: int = 4  # T: steps averaged between updates
    r_min: float = 0.03  # floor for the measured ratio in Recurrence B
    alpha0: float = 0.25  # switch threshold: above -> Recurrence B
    alpha1: float = 0.06  # dead-band: below -> no update

    def validate(self) -> None:
        if self.period < 1:
            raise ControllerError(f"period must be >= 1, got {self.period}")
        if not 0.0 < self.r_min < 1.0:
            raise ControllerError(f"r_min must be in (0,1), got {self.r_min}")
        if not 0.0 <= self.alpha1 <= self.alpha0:
            raise ControllerError(
                f"need 0 <= alpha1 <= alpha0, got alpha1={self.alpha1}, "
                f"alpha0={self.alpha0}"
            )

    def as_dict(self) -> dict:
        """Plain-data form (trace metadata / replay reconstruction)."""
        return {
            "period": self.period,
            "r_min": self.r_min,
            "alpha0": self.alpha0,
            "alpha1": self.alpha1,
        }


class HybridController(Controller):
    """The paper's Algorithm 1 (see module docstring).

    Parameters
    ----------
    rho:
        Target conflict ratio ρ (Remark 1: 20–30% is reasonable; ρ = 0
        would collapse the allocation to one processor).
    m0, m_min, m_max:
        Initial allocation and clamps (paper defaults 2, 2, 1024).
    params:
        Thresholds/window for the normal regime.
    small_params, small_m_threshold:
        Optional alternative regime used while ``m < small_m_threshold``
        (``None`` disables the split).
    """

    def __init__(
        self,
        rho: float,
        m0: int = 2,
        m_min: int = 2,
        m_max: int = 1024,
        params: HybridParams | None = None,
        small_params: HybridParams | None = None,
        small_m_threshold: int = 20,
    ) -> None:
        super().__init__()
        if not 0.0 < rho < 1.0:
            raise ControllerError(f"target conflict ratio must be in (0,1), got {rho}")
        if m_min < 1:
            raise ControllerError(f"m_min must be >= 1, got {m_min}")
        if m_min > m_max:
            raise ControllerError(f"empty allocation range [{m_min}, {m_max}]")
        self.rho = float(rho)
        self.m0 = int(m0)
        self.m_min = int(m_min)
        self.m_max = int(m_max)
        self.params = params or HybridParams()
        self.params.validate()
        if small_params is not None:
            small_params.validate()
            if small_m_threshold < 1:
                raise ControllerError(
                    f"small_m_threshold must be >= 1, got {small_m_threshold}"
                )
        self.small_params = small_params
        self.small_m_threshold = int(small_m_threshold)
        self.updates: list[tuple[int, str, float, int]] = []  # (step, rule, r, new m)
        self._step = 0
        self._do_reset()

    # ------------------------------------------------------------------
    @classmethod
    def smart_start(
        cls, rho: float, n: int, avg_degree: float, **kwargs
    ) -> "HybridController":
        """Construct with the Cor.-3 safe initial allocation.

        With ``m₀ = n/(2(d+1))`` the worst-case conflict ratio is ≤ 21.3%,
        so the controller skips the slow climb from ``m₀ = 2``.
        """
        m0 = safe_initial_m(n, avg_degree, rho)
        return cls(rho, m0=m0, **kwargs)

    # ------------------------------------------------------------------
    def _do_reset(self) -> None:
        self._m = clamp(self.m0, self.m_min, self.m_max)
        self._acc = 0.0
        self._count = 0
        self._step = 0
        self.updates = []

    def _active_params(self) -> HybridParams:
        if self.small_params is not None and self._m < self.small_m_threshold:
            return self.small_params
        return self.params

    def _next_m(self) -> int:
        return self._m

    def _ingest(self, r: float, launched: int) -> None:
        self._step += 1
        p = self._active_params()
        self._acc += r
        self._count += 1
        if self._count < p.period:
            return
        avg = self._acc / p.period
        self._acc = 0.0
        self._count = 0
        alpha = abs(1.0 - avg / self.rho)
        if alpha > p.alpha0:
            effective = max(avg, p.r_min)
            new_m = self._clamped((self.rho / effective) * self._m, self.m_min, self.m_max)
            rule = "B"
        elif alpha > p.alpha1:
            new_m = self._clamped((1.0 - avg + self.rho) * self._m, self.m_min, self.m_max)
            rule = "A"
        else:
            new_m = self._m
            rule = "hold"
        self.updates.append((self._step, rule, avg, new_m))
        self._note_decision(
            rule,
            avg,
            self._m,
            new_m,
            alpha=alpha,
            alpha0=p.alpha0,
            alpha1=p.alpha1,
            regime="small" if p is self.small_params else "normal",
        )
        self._m = new_m

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "type": type(self).__name__,
            "rho": self.rho,
            "m0": self.m0,
            "m_min": self.m_min,
            "m_max": self.m_max,
            "params": self.params.as_dict(),
            "small_params": (
                None if self.small_params is None else self.small_params.as_dict()
            ),
            "small_m_threshold": self.small_m_threshold,
        }

    @property
    def current_m(self) -> int:
        """The allocation the next :meth:`propose` will return."""
        return self._m
