"""High-level facade — config-driven runs and Galois-style loops.

The canonical entry point is :func:`run`, which executes a typed
:class:`repro.config.RunConfig` by resolving its named parts against
:mod:`repro.registry`::

    from repro import RunConfig, run

    result = run(RunConfig(workload="consuming", rho=0.25, seed=0),
                 graph=my_graph)
    report = run(RunConfig(experiment="fig3", quick=True))

For users who want the paper's machinery without a config object,
:func:`for_each` mirrors Galois' ``for_each`` (unordered amorphous
data-parallel loop with adaptive processor allocation),
:func:`for_each_ordered` the ordered variant, and :func:`solve_graph`
runs the controller over an explicit CC graph directly — all three are
thin wrappers over :func:`run`.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterable

from repro.config import RunConfig
from repro.control.base import Controller
from repro.errors import ConfigError, ReproError
from repro.graph.ccgraph import CCGraph
from repro.registry import (
    CONFLICT_POLICIES,
    CONTROLLERS,
    EXPERIMENTS,
    ORDER_POLICIES,
    WORKLOADS,
    order_family,
    parse_order_spec,
    parse_workload_spec,
    select_backend_for,
    workload_is_self_building,
    workset_for,
)
from repro.runtime.core import Engine
from repro.runtime.ordered import OrderedEngine, PriorityWorkset
from repro.runtime.stats import RunResult
from repro.runtime.task import Operator, Task

__all__ = ["run", "for_each", "for_each_ordered", "solve_graph"]


def _wrap_tasks(items: Iterable[object]) -> list[Task]:
    return [item if isinstance(item, Task) else Task(payload=item) for item in items]


def _coerce_config(config) -> RunConfig:
    if isinstance(config, RunConfig):
        return config
    if isinstance(config, str):
        warnings.warn(
            "passing a bare experiment name to repro.api.run is deprecated; "
            f"use run(RunConfig(experiment={config!r}))",
            DeprecationWarning,
            stacklevel=3,
        )
        return RunConfig(experiment=config)
    if isinstance(config, dict):
        return RunConfig.from_dict(config)
    raise ConfigError(
        f"run() takes a RunConfig, a config dict, or an experiment name, "
        f"got {type(config).__name__}"
    )


def _controller_for(config: RunConfig, controller: "Controller | None") -> Controller:
    return controller if controller is not None else CONTROLLERS.create(
        config.controller, config
    )


def _order_engine(config, order, workset, operator, controller, seed, recorder, metrics):
    """Core :class:`Engine` over an explicit commit-order policy."""
    return Engine(
        workset=workset,
        operator=operator,
        controller=controller,
        order=order,
        seed=seed,
        recorder=recorder,
        metrics=metrics,
        engine=config.engine,
    )


def run(
    config,
    *,
    graph: "CCGraph | None" = None,
    initial: "Iterable | None" = None,
    operator: "Operator | None" = None,
    priority_of: "Callable[[Task], float] | None" = None,
    controller: "Controller | None" = None,
    seed=None,
    recorder=None,
    metrics=None,
    record_workload: "str | None" = None,
):
    """Execute one :class:`~repro.config.RunConfig`.

    Three mutually exclusive shapes, selected by the config and the
    keyword inputs:

    * ``config.experiment`` set — run that registered experiment and
      return its :class:`~repro.experiments.base.ExperimentResult`;
    * ``graph=`` given — build the configured workload
      (``config.workload``) over the graph, wire the configured
      controller, and return the engine's
      :class:`~repro.runtime.stats.RunResult`.  Self-building workloads
      — the applications (``workload="boruvka"`` …, which synthesise a
      seeded input) and trace replays (``workload="trace:<path>"``) —
      also run with no ``graph=`` at all;
    * ``initial=`` + ``operator=`` given — run a task loop
      (:class:`~repro.runtime.engine.OptimisticEngine`, or
      :class:`~repro.runtime.ordered.OrderedEngine` when
      ``priority_of=`` is supplied) and return its ``RunResult``.

    ``record_workload=`` (graph/workload runs only) wraps the workload
    in a :class:`~repro.runtime.wktrace.WorkloadCapture` and saves the
    recorded :class:`~repro.runtime.wktrace.WorkloadTrace` to that path
    after the run, for later ``workload="trace:<path>"`` replays.

    ``config.order`` selects the commit-order policy
    (``"unordered"``, ``"ordered"``, ``"relaxed:k"``, ``"async[:w]"`` or
    a registered third-party name): the run then executes on the
    step-pipeline core :class:`~repro.runtime.core.Engine` with that
    policy, over the work-set family the policy requires (graph runs
    rank tasks by node id; ordered/relaxed task loops need
    ``priority_of=``).  ``order=None`` keeps the historical engine
    classes.

    All names (``workload``, ``controller``, ``conflict``, ``order``,
    ``experiment``) resolve through :mod:`repro.registry`, so anything a
    third party has :func:`repro.register`-ed is accepted.  An explicit
    *controller* instance overrides ``config.controller``; an explicit
    *seed* (which, unlike ``config.seed``, may be a
    ``numpy.random.Generator``) overrides ``config.seed``.  For backward
    compatibility *config* may be a bare experiment-name string
    (deprecated) or a config dict.
    """
    config = _coerce_config(config)
    seed = seed if seed is not None else config.seed
    if config.experiment is not None:
        return EXPERIMENTS.create(config.experiment, seed, config.quick)

    workload_name, workload_kwargs = parse_workload_spec(config.workload)
    if graph is not None or (
        initial is None and operator is None and workload_is_self_building(workload_name)
    ):
        if initial is not None or operator is not None:
            raise ConfigError("pass either graph= or initial=/operator=, not both")
        if workload_name == "replay" and config.max_steps is None:
            raise ReproError("replay workloads never drain; pass max_steps")
        workload = WORKLOADS.create(workload_name, graph, config, **workload_kwargs)
        if record_workload is not None:
            from repro.runtime.wktrace import WorkloadCapture

            workload = WorkloadCapture(workload, label=workload_name)
        if config.order is not None:
            # explicit commit order: the workload factory already matched
            # its work-set to the order family (workset_for), so only the
            # policy itself is built here.  Priority-family policies rank
            # tasks by the workload's own priority (event times for DES;
            # node id — the canonical graph priority — otherwise), and
            # every family shares the workload's conflict policy, so
            # ordered, relaxed and unordered runs detect the same
            # conflicts.
            name, kwargs = parse_order_spec(config.order)
            if record_workload is not None and name == "sharded":
                raise ConfigError(
                    "record_workload= is not supported under the sharded "
                    "commit order; record unsharded, then replay the trace "
                    "with shards=N"
                )
            if getattr(workload, "requires_order", False) and order_family(name) != "priority":
                raise ConfigError(
                    f"workload {workload_name!r} requires in-order commits "
                    f'(order="ordered" or "relaxed:k"), got order={config.order!r}'
                )
            if order_family(name) == "priority":
                priority_fn = getattr(workload, "priority_of", None)
                kwargs["priority_of"] = (
                    priority_fn
                    if priority_fn is not None
                    else (lambda task: float(task.payload))
                )
            if (
                name == "sharded"
                and "shards" not in kwargs
                and config.shards is not None
            ):
                kwargs["shards"] = config.shards
            order = ORDER_POLICIES.create(
                name, conflict_policy=workload.policy, **kwargs
            )
            engine = _order_engine(
                config,
                order,
                workload.workset,
                workload.operator,
                _controller_for(config, controller),
                seed,
                recorder,
                metrics,
            )
        else:
            # make_engine is the non-deprecated workload protocol; fall
            # back to build_engine for third-party workloads predating it
            make = getattr(workload, "make_engine", None)
            builder = make if make is not None else workload.build_engine
            engine = builder(
                _controller_for(config, controller),
                seed=seed,
                recorder=recorder,
                metrics=metrics,
                engine=config.engine,
            )
        result = engine.run(max_steps=config.max_steps)
        if record_workload is not None:
            workload.save(record_workload)
        return result

    if initial is not None:
        if operator is None:
            raise ConfigError("initial= also needs operator=")
        order_spec = config.order
        if order_spec is not None:
            order_name, order_kwargs = parse_order_spec(order_spec)
            family = order_family(order_name)
        if priority_of is not None:
            if order_spec is not None and family != "priority":
                raise ConfigError(
                    f"order={order_spec!r} ignores priorities; "
                    "drop priority_of= or use an ordered/relaxed order"
                )
            pairs = list(initial)
            if not pairs:
                raise ReproError("for_each_ordered needs at least one initial task")
            workset = PriorityWorkset()
            for prio, item in pairs:
                task = item if isinstance(item, Task) else Task(payload=item)
                workset.add(task, float(prio))
            if order_spec is not None:
                # conflict_policy stays None: task loops keep the
                # historical greedy item-lock over operator
                # neighbourhoods, which is what makes relaxed:1 traces
                # byte-identical to the OrderedEngine's
                order = ORDER_POLICIES.create(
                    order_name, priority_of=priority_of, **order_kwargs
                )
                engine = _order_engine(
                    config,
                    order,
                    workset,
                    operator,
                    _controller_for(config, controller),
                    seed,
                    recorder,
                    metrics,
                )
            else:
                engine = OrderedEngine(
                    workset=workset,
                    operator=operator,
                    controller=_controller_for(config, controller),
                    priority_of=priority_of,
                    seed=seed,
                    recorder=recorder,
                    metrics=metrics,
                    engine=config.engine,
                )
            return engine.run(max_steps=config.max_steps)
        tasks = _wrap_tasks(initial)
        if not tasks:
            raise ReproError("for_each needs at least one initial task")
        if order_spec is not None:
            if family == "priority":
                raise ConfigError(
                    f"order={order_spec!r} ranks tasks by priority; pass "
                    "priority_of= and (priority, payload) initial pairs"
                )
            workset = workset_for(config)
            workset.add_all(tasks)
            order = ORDER_POLICIES.create(
                order_name,
                conflict_policy=CONFLICT_POLICIES.create(config.conflict, config),
                **order_kwargs,
            )
            engine = _order_engine(
                config,
                order,
                workset,
                operator,
                _controller_for(config, controller),
                seed,
                recorder,
                metrics,
            )
            return engine.run(max_steps=config.max_steps)
        workset = select_backend_for(config)
        workset.add_all(tasks)
        from repro.runtime.engine import OptimisticEngine

        engine = OptimisticEngine(
            workset=workset,
            operator=operator,
            policy=CONFLICT_POLICIES.create(config.conflict, config),
            controller=_controller_for(config, controller),
            seed=seed,
            recorder=recorder,
            metrics=metrics,
            engine=config.engine,
        )
        return engine.run(max_steps=config.max_steps)

    raise ConfigError(
        "run() needs an experiment in the config, a graph=, initial=/operator=, "
        "or a self-building workload (an application name or trace:<path>)"
    )


def for_each(
    initial: Iterable[object],
    operator: Operator,
    rho: float = 0.25,
    controller: Controller | None = None,
    m_max: int = 1024,
    max_steps: int | None = None,
    seed=None,
    recorder=None,
    metrics=None,
) -> RunResult:
    """Run an unordered amorphous data-parallel loop to completion.

    *initial* seeds the work-set (plain payloads are wrapped into
    :class:`Task`); *operator* supplies neighbourhoods and commit
    behaviour; processor allocation adapts via Algorithm 1 targeting
    *rho* unless an explicit *controller* is given.  *recorder* /
    *metrics* attach an observability sink (see :mod:`repro.obs`); by
    default the process-wide active ones are used if set.
    """
    config = RunConfig(rho=rho, m_max=m_max, max_steps=max_steps, workload="consuming")
    return run(
        config,
        initial=initial,
        operator=operator,
        controller=controller,
        seed=seed,
        recorder=recorder,
        metrics=metrics,
    )


def for_each_ordered(
    initial: Iterable[tuple[float, object]],
    operator: Operator,
    priority_of: Callable[[Task], float],
    rho: float = 0.25,
    controller: Controller | None = None,
    m_max: int = 1024,
    max_steps: int | None = None,
    seed=None,
    recorder=None,
    metrics=None,
) -> RunResult:
    """Run an ordered loop: *initial* is ``(priority, payload)`` pairs.

    Commits respect priorities globally (see
    :class:`~repro.runtime.ordered.OrderedEngine`); *priority_of* must
    return the priority of any task the operator creates.
    """
    config = RunConfig(rho=rho, m_max=m_max, max_steps=max_steps, workload="consuming")
    return run(
        config,
        initial=initial,
        operator=operator,
        priority_of=priority_of,
        controller=controller,
        seed=seed,
        recorder=recorder,
        metrics=metrics,
    )


def solve_graph(
    graph: CCGraph,
    rho: float = 0.25,
    consuming: bool = True,
    controller: Controller | None = None,
    m_max: int = 1024,
    max_steps: int | None = None,
    seed=None,
    recorder=None,
    metrics=None,
) -> RunResult:
    """Run the controller directly over an explicit CC graph.

    ``consuming=True`` drains the graph (committed nodes disappear);
    ``consuming=False`` replays it as a stationary environment (cap the
    run with *max_steps*).
    """
    config = RunConfig(
        rho=rho,
        m_max=m_max,
        max_steps=max_steps,
        workload="consuming" if consuming else "replay",
    )
    return run(
        config,
        graph=graph,
        controller=controller,
        seed=seed,
        recorder=recorder,
        metrics=metrics,
    )
