"""High-level facade — Galois-style one-call parallel loops.

For users who want the paper's machinery without assembling engines by
hand::

    from repro.api import for_each

    result = for_each(initial_tasks, operator, rho=0.25)

mirrors Galois' ``for_each`` (unordered amorphous data-parallel loop with
adaptive processor allocation), and :func:`for_each_ordered` the ordered
variant.  :func:`solve_graph` runs the controller over an explicit CC
graph directly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.control.base import Controller
from repro.control.hybrid import HybridController
from repro.errors import ReproError
from repro.graph.ccgraph import CCGraph
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.engine import OptimisticEngine
from repro.runtime.ordered import OrderedEngine, PriorityWorkset
from repro.runtime.stats import RunResult
from repro.runtime.task import Operator, Task
from repro.runtime.workloads import ConsumingGraphWorkload, ReplayGraphWorkload
from repro.runtime.workset import RandomWorkset

__all__ = ["for_each", "for_each_ordered", "solve_graph"]


def _wrap_tasks(items: Iterable[object]) -> list[Task]:
    return [item if isinstance(item, Task) else Task(payload=item) for item in items]


def _default_controller(rho: float, m_max: int) -> Controller:
    return HybridController(rho, m_max=m_max)


def for_each(
    initial: Iterable[object],
    operator: Operator,
    rho: float = 0.25,
    controller: Controller | None = None,
    m_max: int = 1024,
    max_steps: int | None = None,
    seed=None,
    recorder=None,
    metrics=None,
) -> RunResult:
    """Run an unordered amorphous data-parallel loop to completion.

    *initial* seeds the work-set (plain payloads are wrapped into
    :class:`Task`); *operator* supplies neighbourhoods and commit
    behaviour; processor allocation adapts via Algorithm 1 targeting
    *rho* unless an explicit *controller* is given.  *recorder* /
    *metrics* attach an observability sink (see :mod:`repro.obs`); by
    default the process-wide active ones are used if set.
    """
    tasks = _wrap_tasks(initial)
    if not tasks:
        raise ReproError("for_each needs at least one initial task")
    workset = RandomWorkset()
    workset.add_all(tasks)
    engine = OptimisticEngine(
        workset=workset,
        operator=operator,
        policy=ItemLockPolicy(),
        controller=controller or _default_controller(rho, m_max),
        seed=seed,
        recorder=recorder,
        metrics=metrics,
    )
    return engine.run(max_steps=max_steps)


def for_each_ordered(
    initial: Iterable[tuple[float, object]],
    operator: Operator,
    priority_of: Callable[[Task], float],
    rho: float = 0.25,
    controller: Controller | None = None,
    m_max: int = 1024,
    max_steps: int | None = None,
    seed=None,
    recorder=None,
    metrics=None,
) -> RunResult:
    """Run an ordered loop: *initial* is ``(priority, payload)`` pairs.

    Commits respect priorities globally (see
    :class:`~repro.runtime.ordered.OrderedEngine`); *priority_of* must
    return the priority of any task the operator creates.
    """
    pairs = list(initial)
    if not pairs:
        raise ReproError("for_each_ordered needs at least one initial task")
    workset = PriorityWorkset()
    for prio, item in pairs:
        task = item if isinstance(item, Task) else Task(payload=item)
        workset.add(task, float(prio))
    engine = OrderedEngine(
        workset=workset,
        operator=operator,
        controller=controller or _default_controller(rho, m_max),
        priority_of=priority_of,
        seed=seed,
        recorder=recorder,
        metrics=metrics,
    )
    return engine.run(max_steps=max_steps)


def solve_graph(
    graph: CCGraph,
    rho: float = 0.25,
    consuming: bool = True,
    controller: Controller | None = None,
    m_max: int = 1024,
    max_steps: int | None = None,
    seed=None,
    recorder=None,
    metrics=None,
) -> RunResult:
    """Run the controller directly over an explicit CC graph.

    ``consuming=True`` drains the graph (committed nodes disappear);
    ``consuming=False`` replays it as a stationary environment (cap the
    run with *max_steps*).
    """
    if consuming:
        workload = ConsumingGraphWorkload(graph)
    else:
        if max_steps is None:
            raise ReproError("replay workloads never drain; pass max_steps")
        workload = ReplayGraphWorkload(graph)
    engine = workload.build_engine(
        controller or _default_controller(rho, m_max),
        seed=seed,
        recorder=recorder,
        metrics=metrics,
    )
    return engine.run(max_steps=max_steps)
