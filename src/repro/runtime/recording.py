"""Run recording: persist engine traces as JSONL, reload, and diff.

A production runtime ships observability; ours records every temporal
step of a run — allocations, commit/abort counts, work-set sizes, cost
totals — as one JSON object per line, so long experiments can be archived
and compared across code versions:

* :class:`RunRecorder` — engine ``step_hook`` that appends records;
* :func:`save_run` / :func:`load_run` — JSONL round trip, restoring a
  :class:`~repro.runtime.stats.RunResult`;
* :func:`diff_runs` — headline deltas between two runs (makespan, waste,
  churn, settling against a target), the regression-check primitive used
  by the tests.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import RuntimeEngineError
from repro.runtime.stats import RunResult, StepStats

__all__ = ["RunRecorder", "save_run", "load_run", "diff_runs"]

_FIELDS = (
    "step",
    "requested",
    "launched",
    "committed",
    "aborted",
    "workset_before",
    "workset_after",
)


class RunRecorder:
    """Collects step records; attach via ``step_hook=recorder``."""

    def __init__(self, metadata: dict | None = None):
        self.metadata = dict(metadata or {})
        self.records: list[dict] = []

    def __call__(self, engine, stats: StepStats) -> None:
        self.records.append(stats.as_dict())

    def save(self, path: "str | Path") -> None:
        """Write metadata line + one JSON record per step."""
        with Path(path).open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"metadata": self.metadata}) + "\n")
            for rec in self.records:
                fh.write(json.dumps(rec) + "\n")


def save_run(result: RunResult, path: "str | Path", metadata: dict | None = None) -> None:
    """Persist a finished :class:`RunResult` directly (no recorder needed)."""
    rec = RunRecorder(metadata)
    for s in result.steps:
        rec(None, s)
    rec.save(path)


def load_run(path: "str | Path") -> tuple[RunResult, dict]:
    """Reload a JSONL trace into ``(RunResult, metadata)``."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise RuntimeEngineError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise RuntimeEngineError(f"{path}: bad header line") from exc
    if "metadata" not in header:
        raise RuntimeEngineError(f"{path}: first line is not a metadata header")
    result = RunResult()
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            result.append(StepStats(**{f: int(rec[f]) for f in _FIELDS}))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise RuntimeEngineError(f"{path}:{lineno}: malformed record") from exc
    return result, header["metadata"]


def diff_runs(
    a: RunResult, b: RunResult, target: "float | None" = None
) -> dict[str, float]:
    """Headline metric deltas ``b − a`` (negative = b improved).

    With *target* set, also compares settling steps against it.
    """
    out = {
        "makespan": float(len(b) - len(a)),
        "committed": float(b.total_committed - a.total_committed),
        "wasted_fraction": b.wasted_fraction - a.wasted_fraction,
        "mean_conflict_ratio": b.mean_conflict_ratio - a.mean_conflict_ratio,
        "processor_steps": float(b.processor_steps() - a.processor_steps()),
        "allocation_churn": b.allocation_churn() - a.allocation_churn(),
    }
    if target is not None:
        out["settling_step"] = float(
            b.settling_step(target) - a.settling_step(target)
        )
    return out
