"""Vectorised conflict-resolution kernels (the engine's fast path).

The reference engine resolves every speculative batch with a per-task
Python walk (:mod:`repro.runtime.conflict`).  That walk is semantically
the greedy maximal-independent-set construction of §2.1 — and greedy MIS
over a *frozen* adjacency structure is exactly the kind of irregular
computation that Atos/GRAPHOPT-style batched array formulations turn into
a handful of NumPy segment operations.

Four kernels live here; all reproduce the reference semantics **bit for
bit** (the differential suite in ``tests/runtime`` enforces this):

* :func:`greedy_commit_mask` — one batch over a CSR graph: walking the
  prefix in commit order, a slot commits iff no *earlier committed* slot
  is a graph neighbour.
* :func:`greedy_commit_mask_batch` — the same kernel over ``R``
  independent prefixes at once; the Monte-Carlo estimators in
  :mod:`repro.model` push hundreds of replications through a single
  fixed-point iteration.
* :func:`greedy_commit_mask_from_slots` — the engine's hot path: the
  caller pre-projects its batch onto commit slots and hands over only
  the conflicting pairs, skipping all per-call graph indexing.
* :func:`greedy_lock_mask` — the item-lock (Galois neighbourhood)
  variant used by :class:`~repro.runtime.conflict.ItemLockPolicy` and
  the ordered engine: a slot commits iff none of its abstract data items
  is touched by an earlier committed slot.
* :func:`sample_prefix_draws` — the selection-side kernel: the bounded
  draws of the m-out-of-n swap-removal sampler
  (:class:`~repro.runtime.workset.RandomWorkset`'s ``π_m`` prefix) as a
  single vectorised call, bit-identical to the sequential scalar loop.
* :func:`sample_window_draws` — the bounded-window variant backing the
  relaxed/async commit-order policies: draw ``i`` is uniform over the
  first ``min(window, n - i)`` remaining entries, degenerating to
  :func:`sample_prefix_draws` when the window covers the whole pool.

All kernels resolve fates in *rounds* of pure array arithmetic: a slot
aborts as soon as an earlier neighbour is known to commit, and commits
once every earlier neighbour is known not to.  The expected number of
rounds is the longest chain of strictly decreasing commit positions
(O(log m) on random orders), and each round is O(edges) NumPy work.

Kernels validate only what they need (shape/range/duplicates) and raise
:class:`ValueError`; callers translate into their domain error types.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = [
    "greedy_commit_mask",
    "greedy_commit_mask_batch",
    "greedy_commit_mask_from_slots",
    "greedy_lock_mask",
    "sample_prefix_draws",
    "sample_window_draws",
]


def _timed(span_name: str):
    """Attribute a kernel's run time to *span_name* in the active profiler.

    The import is deferred to call time: ``repro.obs`` transitively pulls
    in the control package, and importing it at module top would close
    the runtime<->control cycle.  When no profiler is active the wrapper
    costs one function call and one attribute test per kernel invocation
    (the kernels do array work orders of magnitude above that).
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.obs.spans import active_profiler

            prof = active_profiler()
            if prof is None:
                return fn(*args, **kwargs)
            with prof.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def _segment_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flatten ``[starts[i], starts[i]+counts[i])`` ranges into one index array."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_starts = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    return seg_starts + within


def _segment_sum(values: np.ndarray, seg_ptr: np.ndarray) -> np.ndarray:
    """Sum *values* over segments delimited by *seg_ptr* (len = nseg+1)."""
    csum = np.concatenate(([0], np.cumsum(values)))
    return csum[seg_ptr[1:]] - csum[seg_ptr[:-1]]


@_timed("kernel.commit_mask_batch")
def greedy_commit_mask_batch(
    indptr: np.ndarray, indices: np.ndarray, prefixes: np.ndarray
) -> np.ndarray:
    """Resolve ``R`` commit-order prefixes over one CSR graph at once.

    Parameters
    ----------
    indptr, indices:
        CSR adjacency over a dense ``0..n-1`` node universe (e.g. from
        :class:`~repro.graph.ccgraph.GraphSnapshot`).
    prefixes:
        ``int64[R, m]`` node indices, one commit-order prefix per row,
        without duplicates within a row.

    Returns
    -------
    ``bool[R, m]`` — ``True`` where the corresponding slot commits.
    """
    prefixes = np.ascontiguousarray(prefixes, dtype=np.int64)
    if prefixes.ndim != 2:
        raise ValueError(f"prefixes must be 2-D, got shape {prefixes.shape}")
    num_reps, m = prefixes.shape
    n = int(indptr.shape[0]) - 1
    if num_reps == 0 or m == 0:
        return np.zeros((num_reps, m), dtype=bool)
    if prefixes.min() < 0 or prefixes.max() >= n:
        raise ValueError("prefix contains indices outside the graph")
    # position of each selected node in its row's commit order; -1 = absent
    pos = np.full((num_reps, n), -1, dtype=np.int64)
    pos[np.arange(num_reps)[:, None], prefixes] = np.arange(m, dtype=np.int64)
    if int(np.count_nonzero(pos >= 0)) != num_reps * m:
        raise ValueError("duplicate node in commit order")

    # Earlier-committed-neighbour edges, over all rows at once.  Slots are
    # globally numbered ``rep * m + slot`` so one fixed point serves all.
    starts = indptr[prefixes].ravel()
    counts = (indptr[prefixes + 1] - indptr[prefixes]).ravel()
    flat = _segment_ranges(starts, counts)
    nbr = indices[flat]
    owner = np.repeat(np.arange(num_reps * m, dtype=np.int64), counts)
    owner_rep = owner // m
    owner_slot = owner - owner_rep * m
    nbr_pos = pos[owner_rep, nbr]
    keep = (nbr_pos >= 0) & (nbr_pos < owner_slot)
    own_global = owner[keep]
    nbr_global = owner_rep[keep] * m + nbr_pos[keep]

    total = num_reps * m
    state = np.zeros(total, dtype=np.int8)  # 0 undecided, 1 committed, 2 aborted
    order = np.argsort(own_global, kind="stable")
    nbr_sorted = nbr_global[order]
    seg_counts = np.bincount(own_global, minlength=total)
    seg_ptr = np.concatenate(([0], np.cumsum(seg_counts)))

    undecided = np.ones(total, dtype=bool)
    no_earlier = seg_counts == 0
    state[no_earlier] = 1
    undecided[no_earlier] = False

    while undecided.any():
        nbr_state = state[nbr_sorted]
        c_committed = _segment_sum((nbr_state == 1).astype(np.int64), seg_ptr)
        c_undecided = _segment_sum((nbr_state == 0).astype(np.int64), seg_ptr)
        newly_aborted = undecided & (c_committed > 0)
        newly_committed = undecided & (c_committed == 0) & (c_undecided == 0)
        if not (newly_aborted.any() or newly_committed.any()):
            raise ValueError("commit fixed-point stalled (cycle of undecided nodes)")
        state[newly_aborted] = 2
        state[newly_committed] = 1
        undecided &= ~(newly_aborted | newly_committed)
    return (state == 1).reshape(num_reps, m)


def greedy_commit_mask(
    indptr: np.ndarray, indices: np.ndarray, prefix: np.ndarray
) -> np.ndarray:
    """Single-prefix form of :func:`greedy_commit_mask_batch`.

    ``prefix`` is ``int64[m]`` node indices in commit order; returns
    ``bool[m]`` with ``True`` where the slot commits.
    """
    prefix = np.ascontiguousarray(prefix, dtype=np.int64)
    if prefix.ndim != 1:
        raise ValueError(f"prefix must be 1-D, got shape {prefix.shape}")
    return greedy_commit_mask_batch(indptr, indices, prefix[None, :])[0]


#: below this many live pairs, array rounds cost more than a Python walk
_SEQUENTIAL_TAIL = 512


def _finish_sequentially(
    state: np.ndarray, own: np.ndarray, nbr: np.ndarray
) -> np.ndarray:
    """Resolve the last few undecided slots with a direct greedy walk.

    The fixed point's undecided set decays geometrically, so its final
    rounds each pay full NumPy call overhead to decide a handful of
    slots; once few pairs remain, one pass in slot order is cheaper.
    Touches only the undecided subset — no O(m) list conversions.
    """
    live = np.zeros(state.shape[0], dtype=bool)
    live[own] = True
    state[(state == 0) & ~live] = 1  # no live conflicts left: commits
    fate: dict[int, int] = {}
    # walk pairs grouped by ascending owner, so every earlier slot's fate
    # is settled before its own pairs are inspected; ``sb`` is the
    # blocker's fate on tail entry — 0 means it is itself a (smaller)
    # tail slot, already walked and recorded in ``fate``
    for o, b, sb in sorted(zip(own.tolist(), nbr.tolist(), state[nbr].tolist())):
        if fate.get(o) == 2:
            continue
        fate[o] = 2 if (sb == 1 or (sb == 0 and fate[b] == 1)) else 1
    if fate:
        state[np.fromiter(fate.keys(), np.int64, count=len(fate))] = np.fromiter(
            fate.values(), state.dtype, count=len(fate)
        )
    return state == 1


@_timed("kernel.commit_mask_from_slots")
def greedy_commit_mask_from_slots(
    own_slot: np.ndarray, nbr_slot: np.ndarray, m: int, *, checked: bool = True
) -> np.ndarray:
    """Greedy commit over pre-projected conflict pairs in slot space.

    The engine's hot path: the caller has already mapped its batch onto
    commit slots ``0..m-1`` and extracted the conflicting pairs, so this
    kernel skips all graph indexing.  Each pair says slot ``own_slot[k]``
    conflicts with the strictly earlier slot ``nbr_slot[k]``.

    Instead of re-scanning every edge per round (as the batched kernel
    must), the active pair list shrinks as fates settle: pairs whose
    owner decided — or whose earlier slot aborted and so can never block
    — are shed each round, giving geometrically decaying work per round.

    Returns ``bool[m]`` — ``True`` where the slot commits, i.e. no
    earlier slot it conflicts with committed.

    ``checked=False`` skips input validation for callers whose pairs are
    correct by construction (the engine projects them from a scatter of
    unique batch slots, so ``0 <= nbr < own < m`` always holds there).
    """
    own = np.ascontiguousarray(own_slot, dtype=np.int64)
    nbr = np.ascontiguousarray(nbr_slot, dtype=np.int64)
    if checked:
        if own.shape != nbr.shape or own.ndim != 1:
            raise ValueError(
                f"conflict pair arrays must be 1-D and equal length, "
                f"got {own.shape} vs {nbr.shape}"
            )
        if m < 0:
            raise ValueError(f"slot count must be >= 0, got {m}")
        if own.size and m and (
            own.min() < 0 or own.max() >= m or nbr.min() < 0 or (nbr >= own).any()
        ):
            raise ValueError("conflict pair outside 0 <= nbr < own < m")
    if m == 0:
        if own.size:
            raise ValueError("conflict pairs given for an empty slot range")
        return np.zeros(0, dtype=bool)

    # int64 state keeps every gather/add below upcast-free
    state = np.zeros(m, dtype=np.int64)  # 0 undecided, 1 committed, 2 aborted
    # round 1, specialised: nothing is decided yet, so a slot commits iff
    # it owns no pairs at all (every pair it owns is an undecided wait)
    state[np.bincount(own, minlength=m) == 0] = 1
    own2 = own * 2  # fused bincount codes: 2*own + state of the earlier slot
    while own.size:
        if own.size <= _SEQUENTIAL_TAIL:
            return _finish_sequentially(state, own, nbr)
        # one bincount counts waiting (code +0) and blocking (+1) pairs
        # per owner at once; the shed below guarantees no live pair has an
        # aborted earlier slot at round top, so states here are 0/1 only
        counts = np.bincount(own2 + state[nbr], minlength=2 * m).reshape(m, 2)
        has_waiting = counts[:, 0] > 0
        has_blocked = counts[:, 1] > 0
        undecided = state == 0
        abort_now = undecided & has_blocked
        commit_now = undecided & ~has_blocked & ~has_waiting
        if not (abort_now.any() or commit_now.any()):
            # unreachable for valid input (nbr < own forces progress)
            raise ValueError("commit fixed-point stalled (cycle of undecided slots)")
        state[abort_now] = 2
        state[commit_now] = 1
        # shed decided owners and never-blocking (aborted-earlier) pairs;
        # pairs whose earlier slot committed stay one round to seal fates
        alive = np.flatnonzero((state[own] == 0) & (state[nbr] != 2))
        own = own[alive]
        nbr = nbr[alive]
        own2 = own2[alive]
    state[state == 0] = 1  # every conflict decided non-committed
    return state == 1


@_timed("kernel.sample_prefix")
def sample_prefix_draws(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Vectorised bounded draws of the m-out-of-n swap-removal sampler.

    :class:`~repro.runtime.workset.RandomWorkset` draws its batch with a
    partial Fisher–Yates walk: at step ``i`` it draws ``j ~ U[0, n-i)``,
    swaps slot ``j`` with the current tail, and pops the tail.  This
    kernel produces exactly those ``k`` draws — ``draws[i] ~ U[0, n-i)``
    — in one call, by handing NumPy the whole descending bound vector
    ``[n, n-1, ..., n-k+1]`` at once.

    **Bit-parity contract**: ``Generator.integers`` with a broadcast
    array of bounds consumes the bit stream exactly as ``k`` sequential
    scalar ``rng.integers(0, n-i)`` calls do — same values *and* same
    generator state afterwards — so a caller replaying these draws
    through the swap loop reproduces the reference sampler's batches and
    RNG trajectory exactly (the selection distribution tests enforce
    both properties).

    Returns ``int64[k]``; ``k == 0`` returns an empty array without
    touching the generator.
    """
    if k < 0:
        raise ValueError(f"cannot draw {k} samples")
    if k > n:
        raise ValueError(f"cannot draw {k} samples from a pool of {n}")
    if k == 0:
        return np.empty(0, dtype=np.int64)
    highs = np.arange(n, n - k, -1, dtype=np.int64)
    return rng.integers(0, highs, dtype=np.int64)


@_timed("kernel.sample_window")
def sample_window_draws(
    n: int, k: int, window: int, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised bounded draws of the k-of-top windowed sampler.

    The relaxed commit-order policies draw each of their ``k`` batch
    entries uniformly from the first ``window`` remaining entries of an
    ordered pool (priority order for :class:`RelaxedCommitOrder`, arrival
    order for :class:`AsyncCommitOrder` — both in
    :mod:`repro.runtime.policies`).  Draw ``i`` is therefore uniform over
    ``[0, min(window, n - i))`` — the window, clipped once the pool runs
    low — and this kernel produces all ``k`` draws in one
    ``Generator.integers`` call over the clipped bound vector.

    When ``window >= n`` every bound clips to the pool size and the draw
    *is* the uniform ``π_m`` prefix sampler, so the call delegates to
    :func:`sample_prefix_draws` — the bridge behind the theory-conformance
    claim that relaxation depth ``k >= n`` recovers the paper's §2 model.

    **Bit-parity contract**: as with :func:`sample_prefix_draws`, the
    broadcast-bounds call consumes the bit stream exactly as ``k``
    sequential scalar ``rng.integers(0, bound_i)`` calls do, so scalar
    replays of the windowed draw reproduce both the values and the
    generator state.

    Returns ``int64[k]``; ``k == 0`` returns an empty array without
    touching the generator.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window >= n:
        return sample_prefix_draws(n, k, rng)
    if k < 0:
        raise ValueError(f"cannot draw {k} samples")
    if k > n:
        raise ValueError(f"cannot draw {k} samples from a pool of {n}")
    if k == 0:
        return np.empty(0, dtype=np.int64)
    highs = np.minimum(window, np.arange(n, n - k, -1, dtype=np.int64))
    return rng.integers(0, highs, dtype=np.int64)


@_timed("kernel.lock_mask")
def greedy_lock_mask(
    item_ptr: np.ndarray, item_codes: np.ndarray, num_items: "int | None" = None
) -> np.ndarray:
    """Item-lock greedy resolution: commit iff no earlier committed toucher.

    Parameters
    ----------
    item_ptr:
        ``int64[T+1]`` CSR pointer: task ``t`` touches
        ``item_codes[item_ptr[t]:item_ptr[t+1]]``.  Tasks are in commit
        order; items within a task must be unique.
    item_codes:
        ``int64[nnz]`` dense item codes (``0..num_items-1``).
    num_items:
        Size of the item universe; inferred from ``item_codes`` if omitted.

    Returns
    -------
    ``bool[T]`` — ``True`` where the task commits, i.e. none of its items
    is touched by an earlier *committed* task (an earlier toucher that
    itself aborted does not block).
    """
    item_ptr = np.ascontiguousarray(item_ptr, dtype=np.int64)
    item_codes = np.ascontiguousarray(item_codes, dtype=np.int64)
    num_tasks = int(item_ptr.shape[0]) - 1
    if num_tasks < 0:
        raise ValueError("item_ptr must have at least one entry")
    if num_tasks == 0:
        return np.zeros(0, dtype=bool)
    if num_items is None:
        num_items = int(item_codes.max()) + 1 if item_codes.shape[0] else 0
    if item_codes.shape[0] and (item_codes.min() < 0 or item_codes.max() >= num_items):
        raise ValueError("item code outside the item universe")

    counts = np.diff(item_ptr)
    owner = np.repeat(np.arange(num_tasks, dtype=np.int64), counts)
    sentinel = num_tasks  # strictly beyond any commit slot

    state = np.zeros(num_tasks, dtype=np.int8)  # 0 undecided, 1 committed, 2 aborted
    undecided = np.ones(num_tasks, dtype=bool)
    # itemless tasks conflict with nothing: they commit immediately
    trivial = counts == 0
    state[trivial] = 1
    undecided[trivial] = False

    while undecided.any():
        committed_edge = state[owner] == 1
        undecided_edge = undecided[owner]
        # earliest committed / undecided toucher per item (sentinel = none)
        min_committed = np.full(num_items, sentinel, dtype=np.int64)
        np.minimum.at(min_committed, item_codes[committed_edge], owner[committed_edge])
        min_undecided = np.full(num_items, sentinel, dtype=np.int64)
        np.minimum.at(min_undecided, item_codes[undecided_edge], owner[undecided_edge])
        # a task aborts if any item has an earlier committed toucher, and
        # commits once additionally no earlier toucher is still undecided
        blocked_edge = (min_committed[item_codes] < owner).astype(np.int64)
        waiting_edge = (min_undecided[item_codes] < owner).astype(np.int64)
        has_blocked = _segment_sum(blocked_edge, item_ptr) > 0
        has_waiting = _segment_sum(waiting_edge, item_ptr) > 0
        newly_aborted = undecided & has_blocked
        newly_committed = undecided & ~has_blocked & ~has_waiting
        if not (newly_aborted.any() or newly_committed.any()):
            raise ValueError("lock fixed-point stalled (cycle of undecided tasks)")
        state[newly_aborted] = 2
        state[newly_committed] = 1
        undecided &= ~(newly_aborted | newly_committed)
    return state == 1
