"""Real-thread speculative executor (demonstration only).

The paper's runtime runs speculative tasks on real cores; under CPython's
GIL a thread pool gives no true parallel speedup for compute-bound
operators, so **all quantitative experiments use the discrete-time
simulator** (see DESIGN.md §2).  This module exists to show that the same
``Operator``/conflict semantics drive a genuinely concurrent executor: a
batch of threads races to acquire per-item locks in hash order
(deadlock-free global order), losers abort exactly like the model's
aborted tasks, and the committed set is an independent set of the true
conflict graph.

Nondeterminism caveat: the committed set depends on thread interleaving,
so unlike the simulator the commit order is *not* a uniform random
permutation — another reason the experiments use the model executor.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

from repro.errors import RuntimeEngineError
from repro.runtime.conflict import BatchOutcome
from repro.runtime.task import Operator, Task

__all__ = ["ThreadedSpeculativeExecutor"]


class ThreadedSpeculativeExecutor:
    """Run one speculative batch on real threads with item locking."""

    def __init__(self, operator: Operator, max_threads: int = 8):
        if max_threads < 1:
            raise RuntimeEngineError(f"need at least one thread, got {max_threads}")
        self.operator = operator
        self.max_threads = int(max_threads)

    def execute_batch(self, batch: Sequence[Task]) -> tuple[BatchOutcome, list[Task]]:
        """Speculatively run *batch*; returns (outcome, newly created tasks).

        Each task's thread tries to claim every item of its neighbourhood
        under a registry lock; claims are all-or-nothing, so the committed
        set is independent.  Committed operators then run their ``apply``
        sequentially under a commit lock (application state is not assumed
        thread-safe — the speculation here is in the *conflict detection*,
        matching the granularity the paper models).
        """
        registry_lock = threading.Lock()
        owners: dict[object, int] = {}
        commit_lock = threading.Lock()
        committed: list[Task] = []
        aborted: list[Task] = []
        created: list[Task] = []
        semaphore = threading.Semaphore(self.max_threads)

        def worker(task: Task) -> None:
            with semaphore:
                items = sorted(
                    set(self.operator.neighborhood(task)), key=lambda x: (hash(x), repr(x))
                )
                with registry_lock:
                    if any(it in owners for it in items):
                        win = False
                    else:
                        for it in items:
                            owners[it] = task.uid
                        win = True
                if not win:
                    self.operator.on_abort(task)
                    with commit_lock:
                        aborted.append(task)
                    return
                with commit_lock:
                    new_tasks = self.operator.apply(task)
                    committed.append(task)
                    created.extend(new_tasks)

        threads = [threading.Thread(target=worker, args=(t,)) for t in batch]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return BatchOutcome(committed, aborted), created
