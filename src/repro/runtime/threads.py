"""Real-thread speculative executor (demonstration only).

The paper's runtime runs speculative tasks on real cores; under CPython's
GIL a thread pool gives no true parallel speedup for compute-bound
operators, so **all quantitative experiments use the discrete-time
simulator** (see DESIGN.md §2).  This module exists to show that the same
``Operator``/conflict semantics drive a genuinely concurrent executor: a
batch of threads races to acquire per-item locks in hash order
(deadlock-free global order), losers abort exactly like the model's
aborted tasks, and the committed set is an independent set of the true
conflict graph.

Nondeterminism caveat: by default the committed set depends on thread
interleaving, so unlike the simulator the commit order is *not* a uniform
random permutation — another reason the experiments use the model
executor.  Passing ``seed`` switches to a *deterministic* two-phase mode:
conflicts are resolved sequentially in a seeded random claim order (the
model's ``π_m``), and only the already-decided winners run their
``apply`` on real threads, handing off a commit token in claim order.
Same seed + same batch ⇒ identical committed/aborted/created sequences.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

from repro.errors import RuntimeEngineError
from repro.runtime.conflict import BatchOutcome
from repro.runtime.task import Operator, Task
from repro.utils.rng import ensure_rng

__all__ = ["ThreadedSpeculativeExecutor"]


class ThreadedSpeculativeExecutor:
    """Run one speculative batch on real threads with item locking.

    ``seed`` (int / ``numpy.random.Generator``) selects the deterministic
    execution mode described in the module docstring; ``None`` keeps the
    free-running racy mode.
    """

    def __init__(self, operator: Operator, max_threads: int = 8, seed=None):
        if max_threads < 1:
            raise RuntimeEngineError(f"need at least one thread, got {max_threads}")
        self.operator = operator
        self.max_threads = int(max_threads)
        self._rng = None if seed is None else ensure_rng(seed)

    def execute_batch(self, batch: Sequence[Task]) -> tuple[BatchOutcome, list[Task]]:
        """Speculatively run *batch*; returns (outcome, newly created tasks).

        Each task's thread tries to claim every item of its neighbourhood
        under a registry lock; claims are all-or-nothing, so the committed
        set is independent.  Committed operators then run their ``apply``
        sequentially under a commit lock (application state is not assumed
        thread-safe — the speculation here is in the *conflict detection*,
        matching the granularity the paper models).
        """
        if self._rng is not None:
            return self._execute_seeded(batch)
        registry_lock = threading.Lock()
        owners: dict[object, int] = {}
        commit_lock = threading.Lock()
        committed: list[Task] = []
        aborted: list[Task] = []
        created: list[Task] = []
        semaphore = threading.Semaphore(self.max_threads)

        def worker(task: Task) -> None:
            with semaphore:
                items = sorted(
                    set(self.operator.neighborhood(task)), key=lambda x: (hash(x), repr(x))
                )
                with registry_lock:
                    if any(it in owners for it in items):
                        win = False
                    else:
                        for it in items:
                            owners[it] = task.uid
                        win = True
                if not win:
                    self.operator.on_abort(task)
                    with commit_lock:
                        aborted.append(task)
                    return
                with commit_lock:
                    new_tasks = self.operator.apply(task)
                    committed.append(task)
                    created.extend(new_tasks)

        threads = [threading.Thread(target=worker, args=(t,)) for t in batch]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return BatchOutcome(committed, aborted), created

    def _execute_seeded(self, batch: Sequence[Task]) -> tuple[BatchOutcome, list[Task]]:
        """Deterministic mode: seeded claim order, token-passing commits.

        Phase 1 resolves all conflicts sequentially in a uniformly random
        (but seeded) order — exactly the model's commit order ``π_m`` —
        so the winner set never depends on scheduling.  Phase 2 runs the
        winners' ``apply`` on real threads; each thread waits for its
        predecessor's commit token before applying, which keeps shared
        application state safe *and* makes the committed/created
        sequences reproducible.
        """
        order = [batch[int(i)] for i in self._rng.permutation(len(batch))]
        owners: set[object] = set()
        winners: list[Task] = []
        aborted: list[Task] = []
        for task in order:
            items = set(self.operator.neighborhood(task))
            if items & owners:
                self.operator.on_abort(task)
                aborted.append(task)
            else:
                owners |= items
                winners.append(task)

        created_per: list[list[Task]] = [[] for _ in winners]
        tokens = [threading.Event() for _ in range(len(winners) + 1)]
        tokens[0].set()

        def worker(slot: int, task: Task) -> None:
            tokens[slot].wait()
            try:
                created_per[slot] = list(self.operator.apply(task))
            finally:
                tokens[slot + 1].set()

        threads = [
            threading.Thread(target=worker, args=(i, t)) for i, t in enumerate(winners)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        created = [child for chunk in created_per for child in chunk]
        return BatchOutcome(winners, aborted), created
