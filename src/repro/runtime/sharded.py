"""Process-backed sharded execution: one phase-1 resolver per shard.

:func:`run_sharded` runs one engine exactly like
``api.run(config, graph=..., order="sharded:k")`` — same work-set, same
controller, same RNG trajectory, same trace — except that phase-1 (the
per-shard local greedy walk) executes in ``k`` **persistent worker
processes**, one per shard, supervised with the crash/timeout machinery
of :mod:`repro.runtime.supervise`.  The in-process
:class:`~repro.runtime.policies.ShardedCommitOrder` is the byte-for-byte
specification this runtime is held to: the equivalence suite pins the
two traces to each other, with and without injected faults.

Design
======

* The **supervisor owns all authoritative state** — graph, work-set,
  controller, RNG, journal.  Workers are pure functions: each holds its
  shard's intra-shard adjacency (shipped once at spawn) and answers
  "which of these batch positions commit locally?" per round via
  :func:`repro.graph.partition.local_greedy_positions`.
* **No mutation sync.**  Worker adjacency is never updated: a committed
  node of a consuming workload leaves the work-set forever, so its stale
  edges can never fire again — the same staleness argument the
  incremental CSR view (:class:`~repro.graph.ccgraph.ConflictDeltaView`)
  rests on.  Workloads that *add* edges (``regenerating``) are rejected
  up front; use the in-process policy for those.
* **Fault tolerance.**  Worker processes fire the run's
  :class:`~repro.testing.FaultPlan` with the shard identity
  ``"shard:<i>"`` and their incarnation index as the attempt, so
  ``kill:shard:1:0`` kills shard 1's first incarnation mid-run.  A
  crashed, hung (timeout) or erroring worker is terminated, respawned
  with attempt+1, and the round is re-dispatched — the masks are pure
  functions of the round, so recovery is invisible in the trace.
* **Crash-safe resume.**  With ``journal=``, every completed round's
  phase-1/phase-2 masks are fsynced before the engine proceeds;
  ``resume=True`` replays journaled rounds without touching workers
  (batch draws are deterministic), so an interrupted run — even one
  whose journal has a torn final line — finishes byte-identical to an
  uninterrupted one.
* **Distributed observability** (all opt-in, see
  :mod:`repro.obs.distributed`).  With ``trace_dir=`` each worker ships
  one ``shard_round`` event per round over its existing reply pipe,
  buffered by a supervisor-side :class:`~repro.obs.TelemetryBus` and
  written as per-shard ``shard-<i>.jsonl`` streams that
  :func:`~repro.obs.merge_traces` interleaves with the supervisor trace
  by halo-exchange sequence number; an active span profiler receives
  worker span deltas under ``shard.worker/`` plus supervisor-side
  ``shard.round`` wall-clock (the sweep supervisor's merge idiom, so
  ``--profile`` works); an active/passed metrics registry gains
  per-shard labelled ``shard.*`` series and halo-wait/skew statistics;
  and ``flight_dir=`` arms the crash flight recorder: workers journal
  fsynced round begin/end records, and a dying worker's spill tail is
  salvaged into ``<flight_dir>/<run_id>/shard-<i>.jsonl`` before the
  respawn.  The default path (none of these configured) is byte- and
  message-identical to the uninstrumented runtime.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError, RuntimeEngineError
from repro.graph.partition import local_greedy_positions
from repro.runtime.supervise import PersistentWorker, mp_context

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import RunConfig
    from repro.graph.ccgraph import CCGraph

__all__ = ["ShardPool", "run_sharded", "DEFAULT_SHARD_JOURNAL"]

#: default round-journal filename (sibling idiom to the sweep journal)
DEFAULT_SHARD_JOURNAL = "shard-journal.jsonl"

#: workloads the process runtime supports: their morphs never *add*
#: edges, so spawn-time worker adjacency stays sound (see module doc)
_SUPPORTED_WORKLOADS = frozenset({"replay", "consuming"})


def _flight_write(file, record: dict, fsync: bool = False) -> None:
    """Append one spill record; fsync when it must survive a SIGKILL."""
    file.write(json.dumps(record, sort_keys=True) + "\n")
    file.flush()
    if fsync:
        os.fsync(file.fileno())


def _shard_worker_main(conns, payload: dict) -> None:
    """Worker entry point: serve phase-1 rounds until EOF or close.

    Fires the injected fault plan (if any) once, before the first round
    this incarnation serves, with ``("shard:<i>", attempt)`` identity —
    the shard-process extension of the sweep harness's fault matching.

    Three opt-in payload extensions (see the module doc) layer the
    distributed-observability duties on top: ``telem_events`` /
    ``telem_spans`` piggyback a per-round telemetry delta on the reply,
    and ``flight`` journals fsynced round begin/end records to the
    flight-recorder spill — the ``round_begin`` lands on disk *before*
    the fault plan can fire, so the spill always names the round a
    killed worker died in.  With none of them set, the message protocol
    is byte-identical to the uninstrumented worker.
    """
    recv_conn, send_conn = conns
    adjacency: "dict[int, set[int]]" = {}
    for u, v in payload["edges"]:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    plan = payload.get("faults")
    fired = plan is None
    shard = payload["shard"]
    attempt = payload["attempt"]
    telem_events = bool(payload.get("telem_events"))
    telem_spans = bool(payload.get("telem_spans"))
    flight = payload.get("flight")
    if telem_events or telem_spans or flight is not None:
        # one up-call import per incarnation; the default path never
        # touches repro.obs at all
        from repro.obs import distributed as _dist
        from repro.obs.spans import SpanProfiler
    flight_file = None
    if flight is not None:
        flight_file = open(flight["path"], "a", encoding="utf-8")
        _flight_write(
            flight_file,
            _dist.flight_incarnation(flight.get("run_id"), shard, attempt),
            fsync=True,
        )
    try:
        while True:
            try:
                message = recv_conn.recv()
            except (EOFError, OSError):
                break
            if message is None:  # close sentinel
                break
            try:
                sub = message["sub"]
                step = message.get("step")
                seq = message.get("seq")
                if flight_file is not None:
                    _flight_write(
                        flight_file,
                        _dist.flight_round_begin(step, seq, len(sub), attempt),
                        fsync=True,
                    )
                if not fired:
                    fired = True
                    from repro.testing.faults import FaultPlan

                    FaultPlan.from_dict(plan).fire(f"shard:{shard}", attempt)
                profiler = SpanProfiler() if telem_spans else None
                if profiler is not None:
                    with profiler.span("shard.round"):
                        positions = local_greedy_positions(adjacency, sub)
                else:
                    positions = local_greedy_positions(adjacency, sub)
                reply: dict = {"ok": True, "positions": positions}
                spans = None if profiler is None else profiler.snapshot()
                if telem_events or spans is not None:
                    telem: dict = {}
                    if telem_events:
                        telem["events"] = [
                            {
                                "step": 0 if step is None else int(step),
                                "kind": "shard_round",
                                "data": {
                                    "src": f"shard:{shard}",
                                    "seq": seq,
                                    "launched": len(sub),
                                    "committed": len(positions),
                                    "attempt": attempt,
                                },
                            }
                        ]
                    if spans is not None:
                        telem["spans"] = spans
                    reply["telem"] = telem
                send_conn.send(reply)
                if flight_file is not None:
                    _flight_write(
                        flight_file,
                        _dist.flight_round_end(
                            step, len(sub), len(positions), spans
                        ),
                    )
            except BaseException as exc:  # noqa: BLE001 - workers never re-raise
                try:
                    send_conn.send(
                        {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                    )
                except Exception:
                    pass
                break
    finally:
        for conn in (recv_conn, send_conn):
            try:
                conn.close()
            except Exception:
                pass
        if flight_file is not None:
            try:
                flight_file.close()
            except Exception:
                pass


class _RoundJournal:
    """Append-only fsynced JSONL journal of completed rounds.

    One ``{"step", "final", "local"}`` record per round (positions of
    the surviving and phase-1 commits within that round's batch), after
    a ``{"kind": "shard_journal", "shards": k}`` header.  Loading
    tolerates a torn final line — that round simply recomputes.
    """

    def __init__(self, path, shards: int, resume: bool):
        self.path = Path(path)
        self.records: "dict[int, dict]" = {}
        if resume and self.path.exists():
            for line in self.path.read_text().splitlines():
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail: recompute from here
                if record.get("kind") == "shard_journal":
                    if record.get("shards") != shards:
                        raise RuntimeEngineError(
                            f"journal {self.path} was written for "
                            f"shards={record.get('shards')}, not {shards}"
                        )
                    continue
                self.records[int(record["step"])] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        if self._file.tell() == 0:
            self._write({"kind": "shard_journal", "shards": shards})

    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def lookup(self, step: int) -> "dict | None":
        return self.records.get(step)

    def record(self, step: int, final: np.ndarray, local: np.ndarray) -> None:
        self._write(
            {
                "step": int(step),
                "final": [int(i) for i in np.flatnonzero(final)],
                "local": [int(i) for i in np.flatnonzero(local)],
            }
        )

    def close(self) -> None:
        try:
            self._file.close()
        except Exception:  # pragma: no cover - double close
            pass


class ShardPool:
    """Supervised per-shard phase-1 workers plus the halo-exchange step.

    Plugs into :class:`~repro.runtime.policies.ShardedCommitOrder` via
    its ``pool=`` argument: the policy calls :meth:`resolve` once per
    multi-shard round and receives the same ``(final, local)`` masks its
    in-process path would compute.
    """

    def __init__(
        self,
        shards: int,
        *,
        timeout: "float | None" = None,
        faults=None,
        journal=None,
        resume: bool = False,
        max_respawns: int = 8,
    ):
        if shards < 2:
            raise RuntimeEngineError(
                f"a shard pool needs >= 2 shards, got {shards}"
            )
        self.shards = shards
        self.timeout = timeout
        self.faults = faults.to_dict() if hasattr(faults, "to_dict") else faults
        self.max_respawns = max_respawns
        self.respawns = 0
        self._attempts = [0] * shards
        self._ctx = mp_context()
        self._workers: "dict[int, PersistentWorker]" = {}
        self._edges: "dict[int, list] | None" = None
        self._journal = (
            _RoundJournal(journal, shards, resume) if journal is not None else None
        )
        self._bus = None
        self._flight = None

    # -- distributed observability (bind before the first round) ---------
    def _check_unspawned(self, what: str) -> None:
        if self._workers:
            raise RuntimeEngineError(
                f"cannot bind {what} after workers have spawned — bind "
                "before the first resolved round"
            )

    def bind_telemetry(self, bus) -> None:
        """Attach a :class:`~repro.obs.TelemetryBus` (duck-typed).

        Worker payloads carry the bus's event/span appetite, so binding
        is only legal before the lazily spawned workers exist.
        """
        self._check_unspawned("a telemetry bus")
        self._bus = bus

    def bind_flight(self, flight) -> None:
        """Attach a :class:`~repro.obs.FlightRecorder` (duck-typed)."""
        self._check_unspawned("a flight recorder")
        self._flight = flight

    # -- worker lifecycle ------------------------------------------------
    def _ensure_edges(self, partition, graph) -> None:
        if self._edges is None:
            intra, _ = partition.edge_split(graph)
            self._edges = {
                s: pairs.tolist() for s, pairs in intra.items()
            }

    def _spawn(self, shard: int) -> PersistentWorker:
        payload = {
            "shard": shard,
            "attempt": self._attempts[shard],
            "edges": self._edges[shard],
            "faults": self.faults,
        }
        if self._bus is not None:
            payload["run_id"] = self._bus.run_id
            payload["telem_events"] = self._bus.wants_events
            payload["telem_spans"] = self._bus.wants_spans
        if self._flight is not None:
            payload["flight"] = self._flight.worker_payload(shard)
        worker = PersistentWorker(_shard_worker_main, payload, self._ctx)
        self._workers[shard] = worker
        return worker

    def _worker(self, shard: int) -> PersistentWorker:
        worker = self._workers.get(shard)
        return worker if worker is not None else self._spawn(shard)

    def _respawn(self, shard: int, why: str) -> PersistentWorker:
        self.respawns += 1
        if self.respawns > self.max_respawns:
            raise RuntimeEngineError(
                f"shard {shard} exhausted the respawn budget "
                f"({self.max_respawns}): {why}"
            )
        self._attempts[shard] += 1
        self._workers.pop(shard, None)
        return self._spawn(shard)

    # -- one round -------------------------------------------------------
    def resolve(self, step, batch, partition, graph, *, seq=None):
        """Two-phase masks for one round, worker-backed and journaled.

        *seq* is the round's halo-exchange sequence number when
        distributed tracing is on (threaded through the round message so
        workers stamp it on their telemetry); ``None`` otherwise.
        Journal-replayed rounds return before any worker or telemetry
        involvement — a resumed run re-derives masks, not observability.
        """
        m = len(batch)
        record = self._journal.lookup(step) if self._journal is not None else None
        if record is not None:
            final = np.zeros(m, dtype=bool)
            local = np.zeros(m, dtype=bool)
            final[np.asarray(record["final"], dtype=np.int64)] = True
            local[np.asarray(record["local"], dtype=np.int64)] = True
            return final, local
        self._ensure_edges(partition, graph)
        t_round = time.perf_counter()
        payloads = np.asarray(
            [task.payload for task in batch] or [], dtype=np.int64
        )
        shard_by_pos = partition.shard_of_array(payloads)
        subs: "dict[int, list[tuple[int, int]]]" = {}
        for pos in range(m):
            subs.setdefault(int(shard_by_pos[pos]), []).append(
                (pos, int(payloads[pos]))
            )
        local = np.zeros(m, dtype=bool)
        message = {"step": int(step), "seq": seq}
        pending = []
        for shard, sub in sorted(subs.items()):
            msg = {**message, "sub": sub}
            self._worker(shard).post(msg)
            pending.append((shard, msg))
        first_reply = last_reply = None
        for shard, msg in pending:
            local[self._collect(shard, msg)] = True
            now = time.perf_counter()
            if first_reply is None:
                first_reply = now
            last_reply = now
        final = self._halo_exchange(graph, partition, payloads, shard_by_pos, local)
        if self._journal is not None:
            self._journal.record(step, final, local)
        if self._bus is not None:
            launched = np.bincount(shard_by_pos, minlength=self.shards)
            committed = np.bincount(shard_by_pos[final], minlength=self.shards)
            self._bus.note_round(
                {
                    "launched": [int(x) for x in launched],
                    "committed": [int(x) for x in committed],
                    "halo_aborts": int(np.count_nonzero(local & ~final)),
                },
                # how long the first finished shard waited for the last
                halo_wait_seconds=(
                    last_reply - first_reply if first_reply is not None else None
                ),
                round_seconds=time.perf_counter() - t_round,
            )
        return final, local

    def _collect(self, shard: int, message: dict) -> "list[int]":
        """One shard's phase-1 reply, respawning and retrying on failure.

        Respawned workers get the *full* round message back (step and
        sequence number included), so a recovered round is
        indistinguishable from an undisturbed one on both channels.
        A failure first salvages the dead incarnation's flight spill
        (when a recorder is bound) — the attempt index recorded is the
        incarnation that died, not its replacement.
        """
        worker = self._workers[shard]
        while True:
            status, reply = worker.collect(self.timeout)
            if status == "ok" and reply.get("ok"):
                if self._bus is not None:
                    self._bus.ingest(shard, reply.get("telem"))
                return reply["positions"]
            if status == "ok":
                why = f"error: {reply.get('error', 'worker error')}"
                worker.close()  # erroring worker: its loop already exited
            else:
                why = f"{status}: {reply}"
            if self._flight is not None:
                self._flight.salvage(
                    shard, reason=why, attempt=self._attempts[shard]
                )
            worker = self._respawn(shard, why)
            if not worker.post(message):  # pragma: no cover - instant death
                continue

    @staticmethod
    def _halo_exchange(graph, partition, payloads, shard_by_pos, local):
        """Phase 2, supervisor-side: cut-edge greedy over local commits.

        Identical to the reference rule in
        :func:`repro.graph.partition.two_phase_commit_mask`: walk the
        locally committed tasks in batch order; survive iff no earlier
        *surviving* cross-shard neighbour committed.
        """
        final = np.zeros(len(payloads), dtype=bool)
        survivors: "dict[int, int]" = {}
        for pos in np.flatnonzero(local):
            node = int(payloads[pos])
            shard = int(shard_by_pos[pos])
            if all(
                survivors.get(b, shard) == shard for b in graph.neighbors(node)
            ):
                final[pos] = True
                survivors[node] = shard
        return final

    def close(self) -> None:
        for worker in self._workers.values():
            worker.post(None)  # polite close; terminate regardless
            worker.close()
        self._workers.clear()
        if self._journal is not None:
            self._journal.close()


def run_sharded(
    config: "RunConfig",
    graph: "CCGraph",
    *,
    seed=None,
    controller=None,
    recorder=None,
    metrics=None,
    faults=None,
    timeout: "float | None" = None,
    journal=None,
    resume: bool = False,
    run_id=None,
    trace_dir=None,
    flight_dir=None,
    monitor=None,
):
    """One sharded engine run with worker-process phase-1 resolution.

    Accepts the same ``RunConfig`` shape as
    ``api.run(config, graph=...)`` with ``order="sharded[:k]"`` and
    produces a byte-identical trace and result; ``shards=1`` (or a
    single-shard spec) runs in-process with no pool at all.  See the
    module docstring for the fault/journal semantics of ``faults=``,
    ``timeout=``, ``journal=`` and ``resume=``.

    The distributed-observability layer is opt-in per channel:

    * ``trace_dir=`` turns on distributed tracing — the supervisor's
      ``order_decision``/``halo_exchange`` events gain ``run_id``/``seq``
      fields and each shard's ``shard_round`` stream is written to
      ``<trace_dir>/shard-<i>.jsonl`` when the run finishes (the
      supervisor trace itself stays in *recorder*, to be written by the
      caller — see :func:`repro.obs.write_trace`);
    * ``flight_dir=`` arms the crash flight recorder under
      ``<flight_dir>/<run_id>/``;
    * ``monitor=`` takes a :class:`repro.obs.ShardProgress` fed every
      round (the CLI's ``--live``);
    * an **active span profiler** (``--profile``) automatically receives
      worker span deltas under ``shard.worker/`` plus ``shard.round``
      wall-clock, and the metrics registry (*metrics* or the active one)
      gains per-shard ``shard.*`` series.

    *run_id* names the run across all of its streams; one is derived
    when needed (deterministically if you pass your own — see
    :func:`repro.obs.new_run_id`).  Returns the engine's run result.
    """
    # call-time up-reach into api/registry (sanctioned; see config.py)
    from repro.api import _controller_for, _order_engine
    from repro.errors import ReproError
    from repro.registry import WORKLOADS, parse_order_spec
    from repro.runtime.policies import ShardedCommitOrder

    name, kwargs = parse_order_spec(config.order or "sharded")
    if name != "sharded":
        raise ConfigError(
            f'run_sharded needs order="sharded[:k]", got {config.order!r}'
        )
    shards = kwargs.get("shards") or config.shards or 1
    if config.workload == "replay" and config.max_steps is None:
        raise ReproError("replay workloads never drain; pass max_steps")
    if shards > 1 and config.workload not in _SUPPORTED_WORKLOADS:
        raise ConfigError(
            f"the process-backed shard runtime supports workloads "
            f"{sorted(_SUPPORTED_WORKLOADS)}; {config.workload!r} morphs add "
            "edges that spawn-time worker adjacency cannot see — use the "
            'in-process order="sharded" policy instead'
        )
    workload = WORKLOADS.create(config.workload, graph, config)
    pool = (
        ShardPool(
            shards,
            timeout=timeout,
            faults=faults,
            journal=journal,
            resume=resume,
        )
        if shards > 1
        else None
    )
    order = ShardedCommitOrder(workload.policy, shards=shards, pool=pool)
    bus = None
    if pool is not None:
        # call-time up-reach into repro.obs (same layering note as above)
        from repro.obs.distributed import (
            FlightRecorder,
            TelemetryBus,
            TraceContext,
            new_run_id,
        )
        from repro.obs.metrics import active_metrics
        from repro.obs.spans import active_profiler

        registry = metrics if metrics is not None else active_metrics()
        profiler = active_profiler()
        if run_id is None and (trace_dir is not None or flight_dir is not None):
            run_id = new_run_id()
        if (
            trace_dir is not None
            or monitor is not None
            or registry is not None
            or profiler is not None
        ):
            bus = TelemetryBus(
                shards,
                run_id=run_id,
                trace_dir=trace_dir,
                metrics=registry,
                profiler=profiler,
                monitor=monitor,
            )
            pool.bind_telemetry(bus)
        if flight_dir is not None:
            pool.bind_flight(FlightRecorder(flight_dir, run_id, shards))
        if trace_dir is not None:
            order.trace_ctx = TraceContext(run_id)
    engine = _order_engine(
        config,
        order,
        workload.workset,
        workload.operator,
        _controller_for(config, controller),
        seed,
        recorder,
        metrics,
    )
    try:
        return engine.run(max_steps=config.max_steps)
    finally:
        if pool is not None:
            pool.close()
        if bus is not None:
            bus.close()
