"""Process-backed sharded execution: one phase-1 resolver per shard.

:func:`run_sharded` runs one engine exactly like
``api.run(config, graph=..., order="sharded:k")`` — same work-set, same
controller, same RNG trajectory, same trace — except that phase-1 (the
per-shard local greedy walk) executes in ``k`` **persistent worker
processes**, one per shard, supervised with the crash/timeout machinery
of :mod:`repro.runtime.supervise`.  The in-process
:class:`~repro.runtime.policies.ShardedCommitOrder` is the byte-for-byte
specification this runtime is held to: the equivalence suite pins the
two traces to each other, with and without injected faults.

Design
======

* The **supervisor owns all authoritative state** — graph, work-set,
  controller, RNG, journal.  Workers are pure functions: each holds its
  shard's intra-shard adjacency (shipped once at spawn) and answers
  "which of these batch positions commit locally?" per round via
  :func:`repro.graph.partition.local_greedy_positions`.
* **No mutation sync.**  Worker adjacency is never updated: a committed
  node of a consuming workload leaves the work-set forever, so its stale
  edges can never fire again — the same staleness argument the
  incremental CSR view (:class:`~repro.graph.ccgraph.ConflictDeltaView`)
  rests on.  Workloads that *add* edges (``regenerating``) are rejected
  up front; use the in-process policy for those.
* **Fault tolerance.**  Worker processes fire the run's
  :class:`~repro.testing.FaultPlan` with the shard identity
  ``"shard:<i>"`` and their incarnation index as the attempt, so
  ``kill:shard:1:0`` kills shard 1's first incarnation mid-run.  A
  crashed, hung (timeout) or erroring worker is terminated, respawned
  with attempt+1, and the round is re-dispatched — the masks are pure
  functions of the round, so recovery is invisible in the trace.
* **Crash-safe resume.**  With ``journal=``, every completed round's
  phase-1/phase-2 masks are fsynced before the engine proceeds;
  ``resume=True`` replays journaled rounds without touching workers
  (batch draws are deterministic), so an interrupted run — even one
  whose journal has a torn final line — finishes byte-identical to an
  uninterrupted one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError, RuntimeEngineError
from repro.graph.partition import local_greedy_positions
from repro.runtime.supervise import PersistentWorker, mp_context

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import RunConfig
    from repro.graph.ccgraph import CCGraph

__all__ = ["ShardPool", "run_sharded", "DEFAULT_SHARD_JOURNAL"]

#: default round-journal filename (sibling idiom to the sweep journal)
DEFAULT_SHARD_JOURNAL = "shard-journal.jsonl"

#: workloads the process runtime supports: their morphs never *add*
#: edges, so spawn-time worker adjacency stays sound (see module doc)
_SUPPORTED_WORKLOADS = frozenset({"replay", "consuming"})


def _shard_worker_main(conns, payload: dict) -> None:
    """Worker entry point: serve phase-1 rounds until EOF or close.

    Fires the injected fault plan (if any) once, before the first round
    this incarnation serves, with ``("shard:<i>", attempt)`` identity —
    the shard-process extension of the sweep harness's fault matching.
    """
    recv_conn, send_conn = conns
    adjacency: "dict[int, set[int]]" = {}
    for u, v in payload["edges"]:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    plan = payload.get("faults")
    fired = plan is None
    try:
        while True:
            try:
                message = recv_conn.recv()
            except (EOFError, OSError):
                break
            if message is None:  # close sentinel
                break
            try:
                if not fired:
                    fired = True
                    from repro.testing.faults import FaultPlan

                    FaultPlan.from_dict(plan).fire(
                        f"shard:{payload['shard']}", payload["attempt"]
                    )
                positions = local_greedy_positions(adjacency, message["sub"])
                send_conn.send({"ok": True, "positions": positions})
            except BaseException as exc:  # noqa: BLE001 - workers never re-raise
                try:
                    send_conn.send(
                        {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                    )
                except Exception:
                    pass
                break
    finally:
        for conn in (recv_conn, send_conn):
            try:
                conn.close()
            except Exception:
                pass


class _RoundJournal:
    """Append-only fsynced JSONL journal of completed rounds.

    One ``{"step", "final", "local"}`` record per round (positions of
    the surviving and phase-1 commits within that round's batch), after
    a ``{"kind": "shard_journal", "shards": k}`` header.  Loading
    tolerates a torn final line — that round simply recomputes.
    """

    def __init__(self, path, shards: int, resume: bool):
        self.path = Path(path)
        self.records: "dict[int, dict]" = {}
        if resume and self.path.exists():
            for line in self.path.read_text().splitlines():
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail: recompute from here
                if record.get("kind") == "shard_journal":
                    if record.get("shards") != shards:
                        raise RuntimeEngineError(
                            f"journal {self.path} was written for "
                            f"shards={record.get('shards')}, not {shards}"
                        )
                    continue
                self.records[int(record["step"])] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        if self._file.tell() == 0:
            self._write({"kind": "shard_journal", "shards": shards})

    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def lookup(self, step: int) -> "dict | None":
        return self.records.get(step)

    def record(self, step: int, final: np.ndarray, local: np.ndarray) -> None:
        self._write(
            {
                "step": int(step),
                "final": [int(i) for i in np.flatnonzero(final)],
                "local": [int(i) for i in np.flatnonzero(local)],
            }
        )

    def close(self) -> None:
        try:
            self._file.close()
        except Exception:  # pragma: no cover - double close
            pass


class ShardPool:
    """Supervised per-shard phase-1 workers plus the halo-exchange step.

    Plugs into :class:`~repro.runtime.policies.ShardedCommitOrder` via
    its ``pool=`` argument: the policy calls :meth:`resolve` once per
    multi-shard round and receives the same ``(final, local)`` masks its
    in-process path would compute.
    """

    def __init__(
        self,
        shards: int,
        *,
        timeout: "float | None" = None,
        faults=None,
        journal=None,
        resume: bool = False,
        max_respawns: int = 8,
    ):
        if shards < 2:
            raise RuntimeEngineError(
                f"a shard pool needs >= 2 shards, got {shards}"
            )
        self.shards = shards
        self.timeout = timeout
        self.faults = faults.to_dict() if hasattr(faults, "to_dict") else faults
        self.max_respawns = max_respawns
        self.respawns = 0
        self._attempts = [0] * shards
        self._ctx = mp_context()
        self._workers: "dict[int, PersistentWorker]" = {}
        self._edges: "dict[int, list] | None" = None
        self._journal = (
            _RoundJournal(journal, shards, resume) if journal is not None else None
        )

    # -- worker lifecycle ------------------------------------------------
    def _ensure_edges(self, partition, graph) -> None:
        if self._edges is None:
            intra, _ = partition.edge_split(graph)
            self._edges = {
                s: pairs.tolist() for s, pairs in intra.items()
            }

    def _spawn(self, shard: int) -> PersistentWorker:
        worker = PersistentWorker(
            _shard_worker_main,
            {
                "shard": shard,
                "attempt": self._attempts[shard],
                "edges": self._edges[shard],
                "faults": self.faults,
            },
            self._ctx,
        )
        self._workers[shard] = worker
        return worker

    def _worker(self, shard: int) -> PersistentWorker:
        worker = self._workers.get(shard)
        return worker if worker is not None else self._spawn(shard)

    def _respawn(self, shard: int, why: str) -> PersistentWorker:
        self.respawns += 1
        if self.respawns > self.max_respawns:
            raise RuntimeEngineError(
                f"shard {shard} exhausted the respawn budget "
                f"({self.max_respawns}): {why}"
            )
        self._attempts[shard] += 1
        self._workers.pop(shard, None)
        return self._spawn(shard)

    # -- one round -------------------------------------------------------
    def resolve(self, step, batch, partition, graph):
        """Two-phase masks for one round, worker-backed and journaled."""
        m = len(batch)
        record = self._journal.lookup(step) if self._journal is not None else None
        if record is not None:
            final = np.zeros(m, dtype=bool)
            local = np.zeros(m, dtype=bool)
            final[np.asarray(record["final"], dtype=np.int64)] = True
            local[np.asarray(record["local"], dtype=np.int64)] = True
            return final, local
        self._ensure_edges(partition, graph)
        payloads = np.asarray(
            [task.payload for task in batch] or [], dtype=np.int64
        )
        shard_by_pos = partition.shard_of_array(payloads)
        subs: "dict[int, list[tuple[int, int]]]" = {}
        for pos in range(m):
            subs.setdefault(int(shard_by_pos[pos]), []).append(
                (pos, int(payloads[pos]))
            )
        local = np.zeros(m, dtype=bool)
        message = {"step": int(step)}
        pending = []
        for shard, sub in sorted(subs.items()):
            self._worker(shard).post({**message, "sub": sub})
            pending.append((shard, sub))
        for shard, sub in pending:
            local[self._collect(shard, sub)] = True
        final = self._halo_exchange(graph, partition, payloads, shard_by_pos, local)
        if self._journal is not None:
            self._journal.record(step, final, local)
        return final, local

    def _collect(self, shard: int, sub) -> "list[int]":
        """One shard's phase-1 reply, respawning and retrying on failure."""
        worker = self._workers[shard]
        while True:
            status, reply = worker.collect(self.timeout)
            if status == "ok" and reply.get("ok"):
                return reply["positions"]
            why = reply if status != "ok" else reply.get("error", "worker error")
            if status == "ok":
                worker.close()  # erroring worker: its loop already exited
            worker = self._respawn(shard, str(why))
            if not worker.post({"sub": sub}):  # pragma: no cover - instant death
                continue

    @staticmethod
    def _halo_exchange(graph, partition, payloads, shard_by_pos, local):
        """Phase 2, supervisor-side: cut-edge greedy over local commits.

        Identical to the reference rule in
        :func:`repro.graph.partition.two_phase_commit_mask`: walk the
        locally committed tasks in batch order; survive iff no earlier
        *surviving* cross-shard neighbour committed.
        """
        final = np.zeros(len(payloads), dtype=bool)
        survivors: "dict[int, int]" = {}
        for pos in np.flatnonzero(local):
            node = int(payloads[pos])
            shard = int(shard_by_pos[pos])
            if all(
                survivors.get(b, shard) == shard for b in graph.neighbors(node)
            ):
                final[pos] = True
                survivors[node] = shard
        return final

    def close(self) -> None:
        for worker in self._workers.values():
            worker.post(None)  # polite close; terminate regardless
            worker.close()
        self._workers.clear()
        if self._journal is not None:
            self._journal.close()


def run_sharded(
    config: "RunConfig",
    graph: "CCGraph",
    *,
    seed=None,
    controller=None,
    recorder=None,
    metrics=None,
    faults=None,
    timeout: "float | None" = None,
    journal=None,
    resume: bool = False,
):
    """One sharded engine run with worker-process phase-1 resolution.

    Accepts the same ``RunConfig`` shape as
    ``api.run(config, graph=...)`` with ``order="sharded[:k]"`` and
    produces a byte-identical trace and result; ``shards=1`` (or a
    single-shard spec) runs in-process with no pool at all.  See the
    module docstring for the fault/journal semantics of ``faults=``,
    ``timeout=``, ``journal=`` and ``resume=``.
    """
    # call-time up-reach into api/registry (sanctioned; see config.py)
    from repro.api import _controller_for, _order_engine
    from repro.errors import ReproError
    from repro.registry import WORKLOADS, parse_order_spec
    from repro.runtime.policies import ShardedCommitOrder

    name, kwargs = parse_order_spec(config.order or "sharded")
    if name != "sharded":
        raise ConfigError(
            f'run_sharded needs order="sharded[:k]", got {config.order!r}'
        )
    shards = kwargs.get("shards") or config.shards or 1
    if config.workload == "replay" and config.max_steps is None:
        raise ReproError("replay workloads never drain; pass max_steps")
    if shards > 1 and config.workload not in _SUPPORTED_WORKLOADS:
        raise ConfigError(
            f"the process-backed shard runtime supports workloads "
            f"{sorted(_SUPPORTED_WORKLOADS)}; {config.workload!r} morphs add "
            "edges that spawn-time worker adjacency cannot see — use the "
            'in-process order="sharded" policy instead'
        )
    workload = WORKLOADS.create(config.workload, graph, config)
    pool = (
        ShardPool(
            shards,
            timeout=timeout,
            faults=faults,
            journal=journal,
            resume=resume,
        )
        if shards > 1
        else None
    )
    order = ShardedCommitOrder(workload.policy, shards=shards, pool=pool)
    engine = _order_engine(
        config,
        order,
        workload.workset,
        workload.operator,
        _controller_for(config, controller),
        seed,
        recorder,
        metrics,
    )
    try:
        return engine.run(max_steps=config.max_steps)
    finally:
        if pool is not None:
            pool.close()
