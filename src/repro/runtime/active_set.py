"""Incremental active-set selection backend (``select="incremental"``).

``BENCH_obs.json`` showed ``select`` eating ~73% of step wall-clock: the
fast kernels had already won ``resolve``/``commit``, but the reference
:class:`~repro.runtime.workset.RandomWorkset` still walks a per-task
Python loop of scalar RNG draws every step.  :class:`ActiveSet` is the
same bag with the loop hoisted into one vectorised kernel call and the
bookkeeping made O(delta):

* **dense slot array** — tasks live in a contiguous list; slot ``i``
  holds the ``i``-th pending task, so commits/aborts re-enter via a
  single ``list.extend`` (:meth:`add_batch`) instead of per-task
  appends;
* **vectorised prefix sampling** — :meth:`take` fetches all ``k``
  bounded draws from :func:`~repro.runtime.kernels.sample_prefix_draws`
  in one call and replays them through the swap loop, which is
  *bit-identical* to ``RandomWorkset.take`` under the same seed (same
  batches, same generator state afterwards — the differential and
  distribution suites enforce both);
* **lazy uid ↔ slot map** — :meth:`discard` and :meth:`__contains__`
  need task-id → slot lookups, but the engine's hot path never does, so
  the map is built on first use and invalidated wholesale by
  :meth:`take` (k dict deletions would cost more than one rebuild
  amortised over a batch).

The class attribute ``incremental = True`` is the capability flag the
workloads read to switch the conflict policy onto memoised CSR deltas
(:meth:`repro.graph.ccgraph.CCGraph.conflict_view`) and the commit-order
policy onto the batched apply path.

**Invariant** (fuzzed in ``tests/test_fuzz.py``): after any sequence of
``add`` / ``add_batch`` / ``take`` / ``discard``, the slot list and the
uid → slot map equal those of a from-scratch rebuild; and any prefix of
draws fed through :meth:`take` leaves the list in exactly the state the
reference sampler's swap-pop loop would.

Membership helpers (:meth:`discard`, :meth:`__contains__`) assume each
task is present at most once — the engine guarantees it (a task is
either pending or in flight, never both).  ``add``/``take`` stay exact
even with duplicates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorksetEmptyError
from repro.runtime.kernels import sample_prefix_draws
from repro.runtime.task import Task
from repro.runtime.workset import Workset

__all__ = ["ActiveSet"]


class ActiveSet(Workset):
    """Dense active-set work-set with O(delta) updates and vectorised take.

    Drop-in replacement for :class:`~repro.runtime.workset.RandomWorkset`
    — same uniform m-out-of-n ``π_m`` prefix distribution, bit-identical
    batches under the same seed — selected via ``select="incremental"``
    (or the ``REPRO_SELECT`` environment variable).
    """

    #: capability flag: workloads route conflict resolution through the
    #: memoised CSR delta view and policies through the batched apply
    #: path when the work-set advertises incremental maintenance.
    incremental = True

    def __init__(self) -> None:
        self._items: list[Task] = []
        #: uid -> slot, built lazily by :meth:`_slots`; ``None`` = stale
        self._slot_of: "dict[int, int] | None" = None

    # -- insertion ------------------------------------------------------
    def add(self, task: Task) -> None:
        slots = self._slot_of
        if slots is not None:
            slots[task.uid] = len(self._items)
        self._items.append(task)

    def add_batch(self, tasks: "list[Task] | tuple[Task, ...]") -> None:
        """Append *tasks* in order via one ``list.extend`` (O(delta))."""
        slots = self._slot_of
        if slots is not None:
            base = len(self._items)
            for offset, task in enumerate(tasks):
                slots[task.uid] = base + offset
        self._items.extend(tasks)

    def add_all(self, tasks: "list[Task] | tuple[Task, ...]") -> None:
        self.add_batch(tasks)

    # -- removal --------------------------------------------------------
    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        """Uniform batch draw, bit-identical to ``RandomWorkset.take``.

        One vectorised kernel call fetches all ``k`` bounded draws; the
        swap loop then replays the reference sampler's partial
        Fisher–Yates walk with the pops deferred — the selected tasks
        end up (reversed) in the tail, which is sliced off in one go.
        """
        items = self._items
        if not items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        n = len(items)
        k = min(count, n)
        if k == 0:
            return []
        draws = sample_prefix_draws(n, k, rng)
        last = n - 1
        for j in draws.tolist():
            items[j], items[last] = items[last], items[j]
            last -= 1
        batch = items[n - k:]
        batch.reverse()
        del items[n - k:]
        if self._slot_of is not None:
            self._slot_of = None  # wholesale invalidation beats k deletions
        return batch

    def discard(self, task: Task) -> bool:
        """Remove *task* if pending (O(1) amortised swap-removal).

        Returns ``True`` when the task was present.  The first discard
        after a :meth:`take` rebuilds the uid → slot map (O(n)); further
        discards are O(1).
        """
        slots = self._slots()
        slot = slots.pop(task.uid, None)
        if slot is None:
            return False
        items = self._items
        mover = items[-1]
        if mover.uid != task.uid:
            items[slot] = mover
            slots[mover.uid] = slot
        items.pop()
        return True

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, task: Task) -> bool:
        return task.uid in self._slots()

    def index_of(self, task: Task) -> "int | None":
        """Current slot of *task*, or ``None`` when not pending."""
        return self._slots().get(task.uid)

    def tasks(self) -> "tuple[Task, ...]":
        """Immutable snapshot of the slot list (slot order)."""
        return tuple(self._items)

    def _slots(self) -> dict[int, int]:
        slots = self._slot_of
        if slots is None:
            slots = {task.uid: i for i, task in enumerate(self._items)}
            self._slot_of = slots
        return slots
