"""Per-step and per-run statistics of the optimistic engine.

The controller experiments (Fig. 3, §4.1) are read entirely off these
records: the trajectory ``m_t``, the realised conflict ratios ``r_t``, and
the committed/aborted work accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StepStats", "RunResult"]


@dataclass(frozen=True)
class StepStats:
    """One temporal step of the engine.

    ``requested`` is the controller's allocation ``m_t``; ``launched`` the
    number actually started (smaller only when the work-set ran short);
    ``conflict_ratio`` is the realisation ``r_t = aborted/launched``.
    """

    step: int
    requested: int
    launched: int
    committed: int
    aborted: int
    workset_before: int
    workset_after: int

    @property
    def conflict_ratio(self) -> float:
        return self.aborted / self.launched if self.launched else 0.0

    def as_dict(self) -> dict:
        """Plain-data form (trace events, JSONL recording)."""
        return {
            "step": self.step,
            "requested": self.requested,
            "launched": self.launched,
            "committed": self.committed,
            "aborted": self.aborted,
            "workset_before": self.workset_before,
            "workset_after": self.workset_after,
            "conflict_ratio": self.conflict_ratio,
        }


class RunResult:
    """Accumulated trace of one engine run."""

    def __init__(self) -> None:
        self.steps: list[StepStats] = []

    def append(self, s: StepStats) -> None:
        self.steps.append(s)

    def __len__(self) -> int:
        return len(self.steps)

    # ------------------------------------------------------------------
    # column views
    # ------------------------------------------------------------------
    @property
    def m_trace(self) -> np.ndarray:
        """Controller allocations ``m_t`` per step."""
        return np.array([s.requested for s in self.steps], dtype=np.int64)

    @property
    def launched_trace(self) -> np.ndarray:
        return np.array([s.launched for s in self.steps], dtype=np.int64)

    @property
    def r_trace(self) -> np.ndarray:
        """Realised conflict ratios ``r_t`` per step."""
        return np.array([s.conflict_ratio for s in self.steps], dtype=float)

    @property
    def committed_trace(self) -> np.ndarray:
        return np.array([s.committed for s in self.steps], dtype=np.int64)

    @property
    def workset_trace(self) -> np.ndarray:
        """Work-set size before each step."""
        return np.array([s.workset_before for s in self.steps], dtype=np.int64)

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------
    @property
    def total_committed(self) -> int:
        return int(sum(s.committed for s in self.steps))

    @property
    def total_aborted(self) -> int:
        return int(sum(s.aborted for s in self.steps))

    @property
    def total_launched(self) -> int:
        return int(sum(s.launched for s in self.steps))

    @property
    def wasted_fraction(self) -> float:
        """Fraction of speculative launches that were rolled back."""
        launched = self.total_launched
        return self.total_aborted / launched if launched else 0.0

    @property
    def mean_conflict_ratio(self) -> float:
        """Unweighted mean of the per-step realisations ``r_t``."""
        return float(self.r_trace.mean()) if self.steps else 0.0

    def processor_steps(self) -> int:
        """Σ_t launched_t — total processor-step budget consumed."""
        return self.total_launched

    def speedup_vs_serial(self) -> float:
        """Committed work per step relative to one task/step serially.

        A serial execution commits one task per step, so its makespan is
        ``total_committed``; ours is ``len(steps)``.
        """
        return self.total_committed / len(self.steps) if self.steps else 0.0

    def allocation_churn(self) -> float:
        """Mean |Δm| per step — the locality cost the dead-band suppresses.

        Every change of the allocation moves tasks (and their data)
        between processors; §4.1 motivates the dead-band precisely by
        this cost.  0 for a constant allocation.
        """
        ms = self.m_trace
        if len(ms) < 2:
            return 0.0
        return float(np.abs(np.diff(ms)).mean())

    def settling_step(
        self, target: float, band: float = 0.5, outlier_fraction: float = 0.1
    ) -> int:
        """Earliest step from which ``m_t`` essentially stays near *target*.

        Measures controller convergence (Fig. 3's "≈15 steps"): the first
        ``t`` such that over the remaining trace at most
        ``outlier_fraction`` of the steps leave
        ``[(1−band)·target, (1+band)·target]`` (the allowance absorbs the
        occasional noise-triggered excursion without declaring the run
        unsettled).  Returns ``len(steps)`` when no suffix qualifies.
        """
        if target <= 0:
            raise ValueError(f"settling target must be positive, got {target}")
        if band <= 0:
            raise ValueError(f"band must be positive, got {band}")
        if not 0.0 <= outlier_fraction < 1.0:
            raise ValueError(
                f"outlier fraction must be in [0, 1), got {outlier_fraction}"
            )
        ms = self.m_trace
        n = len(ms)
        if n == 0:
            return 0
        lo, hi = (1.0 - band) * target, (1.0 + band) * target
        outside = ((ms < lo) | (ms > hi)).astype(np.int64)
        suffix_out = np.concatenate((np.cumsum(outside[::-1])[::-1], [0]))
        for t in range(n):
            if suffix_out[t] <= outlier_fraction * (n - t) and outside[t] == 0:
                return t
        return n

    def __repr__(self) -> str:
        return (
            f"RunResult(steps={len(self.steps)}, committed={self.total_committed}, "
            f"aborted={self.total_aborted}, r̄={self.mean_conflict_ratio:.3f})"
        )
