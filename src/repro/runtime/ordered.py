"""Ordered optimistic execution (the paper's §5 future work).

The paper restricts itself to *unordered* algorithms; it names ordered
ones (discrete-event simulation: "events must commit chronologically") as
the open problem.  This module implements the natural extension of the §2
model to ordered work so the controller can be evaluated on it:

* tasks carry **priorities** (virtual time); the scheduler speculates on
  the ``m`` *earliest* pending tasks instead of random ones;
* the batch is resolved in priority order with the same
  greedy-independent-set conflict rule;
* a committed task may **create new work in the past** of later committed
  tasks of the same batch.  Those later commits would violate the order,
  so they are rolled back too (*order violations*, Time-Warp style
  cascades) — a second abort source that does not exist in the unordered
  model.

The observed conflict ratio therefore decomposes as
``r = (conflict aborts + order aborts) / launched``; the ρ-targeting
controllers need no change — they just see a steeper ``r̄(m)``, and the
ordered experiment shows how much exploitable parallelism the ordering
constraint destroys.

The step pipeline lives in :mod:`repro.runtime.core` and the
barrier/horizon commit rules in
:class:`~repro.runtime.policies.OrderedCommitOrder`;
:class:`OrderedEngine` binds the two with its historical constructor
signature.  :class:`~repro.runtime.policies.PriorityWorkset` and
:class:`~repro.runtime.policies.OrderedBatchOutcome` are re-exported here
for backwards compatibility.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.runtime.core import Engine
from repro.runtime.policies import (
    OrderedBatchOutcome,
    OrderedCommitOrder,
    PriorityWorkset,
)
from repro.runtime.task import Operator, Task

if TYPE_CHECKING:  # avoid runtime<->control import cycle
    from repro.control.base import Controller

__all__ = ["PriorityWorkset", "OrderedBatchOutcome", "OrderedEngine"]


class OrderedEngine(Engine):
    """Speculative engine for priority-ordered work.

    Parameters mirror :class:`~repro.runtime.engine.OptimisticEngine`
    (including the ``engine="reference"|"fast"`` switch); the operator's
    ``apply`` must return new tasks whose priorities the *priority_of*
    callable reports: new tasks are enqueued at ``priority_of(new_task)``.

    The commit rules (conflict phase, barrier, horizon) and the per-step
    RNG substream scheme are documented on
    :class:`~repro.runtime.policies.OrderedCommitOrder`, which this class
    plugs into the shared step-pipeline core.
    """

    def __init__(
        self,
        workset: PriorityWorkset,
        operator: Operator,
        controller: "Controller",
        priority_of: Callable[[Task], float],
        seed=None,
        recorder=None,
        metrics=None,
        profiler=None,
        engine: "str | None" = None,
        step_hook=None,
        cost_model=None,
    ) -> None:
        self.priority_of = priority_of
        self._order_policy = OrderedCommitOrder(priority_of)
        super().__init__(
            workset,
            operator,
            controller,
            self._order_policy,
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            profiler=profiler,
            engine=engine,
        )

    # ------------------------------------------------------------------
    def _resolve(self, batch: "list[tuple[float, Task]]") -> OrderedBatchOutcome:
        """Resolve one ordered batch (swap point for tests/subclasses)."""
        return self._order_policy.resolve(batch)

    @property
    def conflict_aborts_total(self) -> int:
        """Cumulative conflict-aborted tasks across the whole run."""
        return self._order_policy.conflict_aborts_total

    @property
    def order_aborts_total(self) -> int:
        """Cumulative order-aborted (barrier/horizon) tasks across the run."""
        return self._order_policy.order_aborts_total
