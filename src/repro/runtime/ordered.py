"""Ordered optimistic execution (the paper's §5 future work).

The paper restricts itself to *unordered* algorithms; it names ordered
ones (discrete-event simulation: "events must commit chronologically") as
the open problem.  This module implements the natural extension of the §2
model to ordered work so the controller can be evaluated on it:

* tasks carry **priorities** (virtual time); the scheduler speculates on
  the ``m`` *earliest* pending tasks instead of random ones;
* the batch is resolved in priority order with the same
  greedy-independent-set conflict rule;
* a committed task may **create new work in the past** of later committed
  tasks of the same batch.  Those later commits would violate the order,
  so they are rolled back too (*order violations*, Time-Warp style
  cascades) — a second abort source that does not exist in the unordered
  model.

The observed conflict ratio therefore decomposes as
``r = (conflict aborts + order aborts) / launched``; the ρ-targeting
controllers need no change — they just see a steeper ``r̄(m)``, and the
ordered experiment shows how much exploitable parallelism the ordering
constraint destroys.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from itertools import count
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RuntimeEngineError, WorksetEmptyError
from repro.runtime.engine import resolve_engine_mode
from repro.runtime.kernels import greedy_lock_mask
from repro.runtime.stats import RunResult, StepStats
from repro.runtime.task import Operator, Task
from repro.utils.rng import substream

if TYPE_CHECKING:  # avoid runtime<->control import cycle
    from repro.control.base import Controller

__all__ = ["PriorityWorkset", "OrderedBatchOutcome", "OrderedEngine"]


class PriorityWorkset:
    """Min-heap of ``(priority, tie, task)`` — earliest work first."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Task]] = []
        self._ties = count()

    def add(self, task: Task, priority: float) -> None:
        """Insert *task* at *priority* (smaller = earlier = more urgent)."""
        heapq.heappush(self._heap, (float(priority), next(self._ties), task))

    def take_earliest(self, m: int) -> list[tuple[float, Task]]:
        """Remove the ``min(m, len)`` earliest tasks, in priority order."""
        if not self._heap:
            raise WorksetEmptyError("take from empty priority work-set")
        if m < 0:
            raise ValueError(f"cannot take {m} tasks")
        out = []
        for _ in range(min(m, len(self._heap))):
            prio, _, task = heapq.heappop(self._heap)
            out.append((prio, task))
        return out

    def peek_priority(self) -> float:
        """Priority of the earliest pending task."""
        if not self._heap:
            raise WorksetEmptyError("peek into empty priority work-set")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class OrderedBatchOutcome:
    """Resolution of one ordered speculative batch.

    ``barrier`` is the priority of the earliest conflict-aborted task
    (``inf`` when none aborted); ``horizon`` is the final earliest-possible-
    future-work priority after all commits applied (it starts at the
    barrier and shrinks as committed tasks create new work).  Both are
    recorded for rollback-accounting diagnostics.
    """

    __slots__ = ("committed", "conflict_aborted", "order_aborted", "barrier", "horizon")

    def __init__(
        self,
        committed: list[tuple[float, Task]],
        conflict_aborted: list[tuple[float, Task]],
        order_aborted: list[tuple[float, Task]],
        barrier: float = float("inf"),
        horizon: float = float("inf"),
    ):
        self.committed = committed
        self.conflict_aborted = conflict_aborted
        self.order_aborted = order_aborted
        self.barrier = barrier
        self.horizon = horizon

    @property
    def launched(self) -> int:
        return len(self.committed) + len(self.conflict_aborted) + len(self.order_aborted)

    @property
    def conflict_ratio(self) -> float:
        """Total abort fraction (conflicts + order violations)."""
        n = self.launched
        if not n:
            return 0.0
        return (len(self.conflict_aborted) + len(self.order_aborted)) / n


class OrderedEngine:
    """Speculative engine for priority-ordered work.

    Parameters mirror :class:`~repro.runtime.engine.OptimisticEngine`
    (including the ``engine="reference"|"fast"`` switch); the operator's
    ``apply`` must return ``list[(priority, Task)]`` pairs via the
    *priority_of* callable: new tasks are enqueued at
    ``priority_of(new_task)``.

    **Per-step RNG substreams.**  Aborted tasks roll back into the
    work-set and retry in later steps, so how much randomness one step's
    operators consume depends on the whole retry history.  A single
    shared stream would therefore make per-step draws irreproducible from
    the recorded seed alone.  Instead :attr:`rng` is re-derived at the
    top of every step as a pure function of ``(seed, step)`` — replaying
    any step in isolation sees exactly the draws of the original run,
    regardless of what earlier (re)executions consumed.

    Commit rule per step, with the batch sorted by priority:

    1. walk the batch earliest-first; a task *conflict-aborts* if its
       neighbourhood intersects an earlier committed task's neighbourhood;
    2. the **barrier**: no survivor later than the earliest
       conflict-aborted task may commit — that aborted task will re-execute
       in a future step and may create work in their past (order-abort
       instead of implementing Time-Warp anti-message cascades);
    3. apply surviving tasks earliest-first; after each apply, any later
       not-yet-applied survivor whose priority exceeds the earliest
       priority just *created* is also **order-aborted**.

    Rules 2+3 together give the strong invariant the tests rely on:
    the global committed sequence is chronologically sorted, and equals
    the sequential execution of the same workload.
    """

    def __init__(
        self,
        workset: PriorityWorkset,
        operator: Operator,
        controller: "Controller",
        priority_of: Callable[[Task], float],
        seed=None,
        recorder=None,
        metrics=None,
        profiler=None,
        engine: "str | None" = None,
    ) -> None:
        from repro.obs.metrics import active_metrics
        from repro.obs.recorder import active_recorder, describe_seed
        from repro.obs.spans import NULL_SPAN, active_profiler

        self.workset = workset
        self.operator = operator
        self.controller = controller
        self.priority_of = priority_of
        self.engine_mode = resolve_engine_mode(engine)
        # Seeds (ints / SeedSequence / None) get per-step substream
        # derivation; a caller-owned Generator cannot be re-derived, so it
        # is used as-is (draws then depend on prior consumption — pass a
        # seed when step-level reproducibility matters).
        if isinstance(seed, np.random.Generator):
            self._seed = None
            self.rng: np.random.Generator = seed
        else:
            self._seed = seed if seed is not None else int(
                np.random.SeedSequence().generate_state(1)[0]
            )
            self.rng = substream(self._seed, "ordered-step", 0)
        self.result = RunResult()
        self.order_aborts_total = 0
        self.conflict_aborts_total = 0
        self._step = 0
        self.recorder = recorder if recorder is not None else active_recorder()
        registry = metrics if metrics is not None else active_metrics()
        self.metrics = None if registry is None else registry.scope("engine")
        self.profiler = profiler if profiler is not None else active_profiler()
        self._null_span = NULL_SPAN
        if self.recorder is not None or self.metrics is not None:
            controller.bind_observability(
                self.recorder,
                None if registry is None else registry.scope("controller"),
            )
        if self.recorder is not None:
            self.recorder.emit(
                "run_start",
                step=self._step,
                engine=type(self).__name__,
                policy="ordered",
                seed=describe_seed(seed),
                workset_size=len(workset),
                controller=controller.describe(),
            )

    # ------------------------------------------------------------------
    def _conflict_phase(
        self, batch: list[tuple[float, Task]]
    ) -> tuple[list[tuple[float, Task]], list[tuple[float, Task]]]:
        """Greedy item-lock partition of *batch* into (survivors, aborted)."""
        if self.engine_mode == "fast":
            codes: dict = {}
            flat: list[int] = []
            ptr = np.zeros(len(batch) + 1, dtype=np.int64)
            for i, (_, task) in enumerate(batch):
                for item in set(self.operator.neighborhood(task)):
                    flat.append(codes.setdefault(item, len(codes)))
                ptr[i + 1] = len(flat)
            mask = greedy_lock_mask(
                ptr, np.asarray(flat, dtype=np.int64), num_items=len(codes)
            )
            survivors = [entry for entry, ok in zip(batch, mask) if ok]
            aborted = [entry for entry, ok in zip(batch, mask) if not ok]
            return survivors, aborted
        held: set = set()
        survivors = []
        aborted = []
        for prio, task in batch:  # batch is already earliest-first
            items = set(self.operator.neighborhood(task))
            if held.isdisjoint(items):
                held |= items
                survivors.append((prio, task))
            else:
                aborted.append((prio, task))
        return survivors, aborted

    def _resolve(self, batch: list[tuple[float, Task]]) -> OrderedBatchOutcome:
        prof = self.profiler
        null = self._null_span
        with prof.span("resolve") if prof is not None else null:
            survivors, conflict_aborted = self._conflict_phase(batch)
        committed: list[tuple[float, Task]] = []
        order_aborted: list[tuple[float, Task]] = []
        # barrier: an aborted task re-executes later and creates work no
        # earlier than its own priority — nothing beyond it may commit now
        barrier = min((p for p, _ in conflict_aborted), default=float("inf"))
        horizon = barrier  # earliest possible future work
        with prof.span("commit") if prof is not None else null:
            for prio, task in survivors:
                if prio > horizon:
                    order_aborted.append((prio, task))
                    continue
                new_work = self.operator.apply(task)
                for new_task in new_work:
                    new_prio = float(self.priority_of(new_task))
                    if new_prio < prio:
                        raise RuntimeEngineError(
                            f"operator created work at priority {new_prio} before "
                            f"its own task at {prio} (causality violation)"
                        )
                    self.workset.add(new_task, new_prio)
                    horizon = min(horizon, new_prio)
                committed.append((prio, task))
        return OrderedBatchOutcome(
            committed, conflict_aborted, order_aborted, barrier=barrier, horizon=horizon
        )

    def step(self) -> StepStats:
        """Execute one ordered speculative step."""
        before = len(self.workset)
        if before == 0:
            raise RuntimeEngineError("cannot step: work-set is empty")
        prof = self.profiler
        null = self._null_span
        with prof.step_span(self._step) if prof is not None else null:
            if self._seed is not None:
                # one substream per step: draws are a pure function of
                # (seed, step), never of earlier steps' retry history
                self.rng = substream(self._seed, "ordered-step", self._step)
            with prof.span("controller.decide") if prof is not None else null:
                requested = int(self.controller.propose())
            if requested < 1:
                raise RuntimeEngineError(
                    f"controller proposed m={requested}; allocations must be >= 1"
                )
            with prof.span("select") if prof is not None else null:
                batch = self.workset.take_earliest(requested)
                if self.recorder is not None:
                    self.recorder.emit(
                        "select",
                        step=self._step,
                        requested=requested,
                        taken=len(batch),
                        workset_before=before,
                    )
            outcome = self._resolve(batch)  # opens resolve/commit spans
            with prof.span("record") if prof is not None else null:
                for prio, task in outcome.conflict_aborted:
                    self.operator.on_abort(task)
                    self.workset.add(task, prio)
                for prio, task in outcome.order_aborted:
                    self.operator.on_abort(task)
                    self.workset.add(task, prio)
                self.conflict_aborts_total += len(outcome.conflict_aborted)
                self.order_aborts_total += len(outcome.order_aborted)
                stats = StepStats(
                    step=self._step,
                    requested=requested,
                    launched=outcome.launched,
                    committed=len(outcome.committed),
                    aborted=outcome.launched - len(outcome.committed),
                    workset_before=before,
                    workset_after=len(self.workset),
                )
                if self.recorder is not None:
                    position = {t.uid: i for i, (_, t) in enumerate(batch)}
                    finite = lambda x: None if x == float("inf") else float(x)  # noqa: E731
                    self.recorder.emit(
                        "step",
                        commit_positions=[position[t.uid] for _, t in outcome.committed],
                        abort_positions=sorted(
                            position[t.uid]
                            for _, t in outcome.conflict_aborted + outcome.order_aborted
                        ),
                        conflict_aborted=len(outcome.conflict_aborted),
                        order_aborted=len(outcome.order_aborted),
                        barrier=finite(outcome.barrier),
                        horizon=finite(outcome.horizon),
                        **stats.as_dict(),
                    )
                if self.metrics is not None:
                    self.metrics.counter("steps").inc()
                    self.metrics.counter("commits").inc(stats.committed)
                    self.metrics.counter("aborts").inc(stats.aborted)
                    self.metrics.counter("conflict_aborts").inc(len(outcome.conflict_aborted))
                    self.metrics.counter("order_aborts").inc(len(outcome.order_aborted))
                    self.metrics.counter("launched").inc(stats.launched)
                    self.metrics.histogram("conflict_ratio").observe(stats.conflict_ratio)
                    self.metrics.gauge("workset").set(stats.workset_after)
                    self.metrics.gauge("m").set(requested)
            self._step += 1
            with prof.span("controller.update") if prof is not None else null:
                self.controller.observe(stats.conflict_ratio, outcome.launched)
        self.result.append(stats)
        return stats

    def run(self, max_steps: int | None = None) -> RunResult:
        """Step until the work-set drains (or *max_steps*)."""
        if max_steps is not None and max_steps < 0:
            raise RuntimeEngineError(f"max_steps must be >= 0, got {max_steps}")
        while len(self.workset) > 0:
            if max_steps is not None and self._step >= max_steps:
                break
            self.step()
        if self.recorder is not None:
            self.recorder.emit(
                "run_end",
                step=self._step,
                steps=len(self.result),
                committed=self.result.total_committed,
                aborted=self.result.total_aborted,
                conflict_aborts=self.conflict_aborts_total,
                order_aborts=self.order_aborts_total,
                workset=len(self.workset),
            )
        return self.result
