"""Record/replay substrate for workload traces.

A *workload trace* captures what an irregular application actually did
during one engine run — the tasks it drew, the neighbourhoods they
declared, the commit sequence, the new tasks each commit created, and
the graph morphs it performed — into a versioned, canonical JSONL file.
The trace is then a **workload in its own right**:
:class:`TraceReplayWorkload` re-executes the recorded morph sequence
deterministically through any engine configuration, which is what makes
cross-cutting equivalence claims testable — the same recorded Boruvka
run replayed under ``select="workset"`` vs ``select="incremental"``, or
``shards=1`` vs ``shards=2``, must commit the same work.

Three layers:

:class:`WorkloadTrace`
    The in-memory trace and its JSONL serialisation (``VERSION`` = 1).
    Four record kinds, in file order: one ``wkheader`` (version, label,
    ordering requirement), one ``wktask`` per task ever seen (payload
    provenance, priority, parent, last-observed neighbourhood items),
    one ``wkcommit`` per commit **in commit order** (items, children,
    morph ops), and one ``wkend`` trailer whose ``fingerprint`` — a
    SHA-256 over the canonical commit table — guards against truncation
    and tampering.

:class:`WorkloadCapture`
    A transparent workload wrapper (same ``workset`` / ``operator`` /
    ``policy`` / ``make_engine`` protocol) that records the run it is
    part of.  Tasks are keyed by their process-unique ``uid`` and
    assigned dense trace ids in first-observation order; a
    :meth:`~repro.graph.ccgraph.CCGraph.set_morph_hook` observer
    attributes graph morphs to the committing task.  Workloads whose
    conflicts come from an explicit CC graph
    (:class:`~repro.runtime.conflict.ExplicitGraphPolicy`) are captured
    through an equivalent item-lock encoding: each task's items are its
    *incident conflict edges*, so two tasks' item sets intersect exactly
    when their nodes are adjacent — the same greedy commit/abort
    partition, but now recordable and replayable without the graph.

:class:`TraceReplayWorkload`
    Replays a trace.  Replay tasks carry the **trace id as payload**
    (plain ints — sharded-runtime compatible), conflicts come from a
    synthesised conflict graph with an edge wherever two recorded
    neighbourhoods intersected, and each replayed commit releases
    exactly the children the recorded commit created.  Root tasks
    (``parent`` = null) are seeded in trace-id order — the canonical
    order within a trace — so two replays of the same trace under
    bit-identical selection backends draw identically.

The obs layer is notified of both directions (``workload_capture`` /
``workload_replay`` events, see :mod:`repro.obs.events`) so a run's
provenance names the exact trace it recorded or replayed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import Counter, deque
from pathlib import Path

import numpy as np

from repro.errors import ObservabilityError, ReplayMismatchError
from repro.graph.ccgraph import CCGraph
from repro.runtime.conflict import ExplicitGraphPolicy, ItemLockPolicy
from repro.runtime.task import Operator, Task

__all__ = ["WorkloadTrace", "WorkloadCapture", "TraceReplayWorkload"]

#: trace format version; bump on any incompatible record-shape change
TRACE_VERSION = 1

_HEADER = "wkheader"
_TASK = "wktask"
_COMMIT = "wkcommit"
_END = "wkend"


def _canon_json(obj) -> str:
    """Canonical one-line JSON (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _canon_payload(payload):
    """JSON-safe provenance form of a task payload.

    Payloads are stored for provenance only (replay tasks carry trace
    ids, not payloads), so lossy fallbacks are fine: JSON-native values
    pass through, dataclasses (DES events) become dicts, anything else
    becomes its ``repr``.
    """
    try:
        json.dumps(payload)
        return payload
    except (TypeError, ValueError):
        pass
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        try:
            as_dict = dataclasses.asdict(payload)
            json.dumps(as_dict)
            return as_dict
        except (TypeError, ValueError):
            pass
    return repr(payload)


def _canon_item(item):
    """JSON-scalar form of one neighbourhood item.

    Replay only needs item *equality* (shared item ⇒ conflict), so
    non-scalar items collapse to their ``repr`` — stable within one
    trace, which is the only scope replay compares across.
    """
    if isinstance(item, (bool, int, float, str)):
        return item
    if isinstance(item, np.integer):
        return int(item)
    if isinstance(item, np.floating):
        return float(item)
    return repr(item)


def _canon_items(items) -> list:
    """Deduplicated, deterministically ordered item list."""
    canon = {_canon_item(i) for i in items}
    return sorted(canon, key=lambda x: (type(x).__name__, str(x)))


class WorkloadTrace:
    """One recorded workload: tasks, commit sequence, morph ops.

    Build incrementally via :meth:`add_task` / :meth:`add_commit`
    (normally done by :class:`WorkloadCapture`), serialise with
    :meth:`save` / :meth:`to_jsonl`, reload with :meth:`load` /
    :meth:`from_jsonl`.  Loading validates the record grammar, the dense
    task-id numbering, every cross-reference, and the trailer's
    fingerprint (raising
    :class:`~repro.errors.ReplayMismatchError` on a fingerprint or count
    mismatch — the trace was edited or mixed from two runs).
    """

    VERSION = TRACE_VERSION

    def __init__(self, label: str = "workload", requires_order: bool = False):
        self.label = str(label)
        self.requires_order = bool(requires_order)
        #: per-task records, index == trace id
        self.tasks: list[dict] = []
        #: commit records in engine commit order
        self.commits: list[dict] = []
        #: total aborts observed while recording (provenance only)
        self.aborts = 0

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def add_task(self, payload, *, priority=None, parent=None) -> int:
        """Register a task, returning its dense trace id."""
        tid = len(self.tasks)
        self.tasks.append(
            {
                "id": tid,
                "payload": _canon_payload(payload),
                "priority": None if priority is None else float(priority),
                "parent": None if parent is None else int(parent),
                "items": [],
            }
        )
        return tid

    def set_items(self, tid: int, items) -> None:
        """Record the (canonical) neighbourhood items of task *tid*."""
        self.tasks[tid]["items"] = list(items)

    def add_commit(self, tid: int, *, items, children, ops) -> None:
        """Append one commit (in commit order) with its morph ops."""
        self.commits.append(
            {
                "id": int(tid),
                "items": list(items),
                "children": [int(c) for c in children],
                "ops": [[op[0], *(int(a) for a in op[1:])] for op in ops],
            }
        )

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over the canonical commit table.

        Covers ids, items, children and morph ops of every commit in
        order — the replay-relevant content.  Task payload provenance is
        deliberately outside the hash (its ``repr`` fallback may vary
        across library versions without changing replay semantics).
        """
        digest = hashlib.sha256()
        for rec in self.commits:
            digest.update(_canon_json(rec).encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Canonical JSONL text of the whole trace."""
        lines = [
            _canon_json(
                {
                    "kind": _HEADER,
                    "version": self.VERSION,
                    "label": self.label,
                    "requires_order": self.requires_order,
                }
            )
        ]
        for rec in self.tasks:
            lines.append(_canon_json({"kind": _TASK, **rec}))
        for rec in self.commits:
            lines.append(_canon_json({"kind": _COMMIT, **rec}))
        lines.append(
            _canon_json(
                {
                    "kind": _END,
                    "tasks": len(self.tasks),
                    "commits": len(self.commits),
                    "aborts": self.aborts,
                    "fingerprint": self.fingerprint(),
                }
            )
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "WorkloadTrace":
        """Parse and validate a serialised trace."""
        records = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"workload trace line {lineno} is not JSON: {line[:80]!r}"
                ) from exc
            if not isinstance(rec, dict) or "kind" not in rec:
                raise ObservabilityError(
                    f"workload trace line {lineno} is not a trace record"
                )
            records.append(rec)
        if not records or records[0]["kind"] != _HEADER:
            raise ObservabilityError("workload trace must start with a wkheader record")
        header = records[0]
        version = header.get("version")
        if version != cls.VERSION:
            raise ObservabilityError(
                f"workload trace version {version!r} is not supported "
                f"(this build reads version {cls.VERSION})"
            )
        trace = cls(
            label=header.get("label", "workload"),
            requires_order=bool(header.get("requires_order", False)),
        )
        end = None
        for rec in records[1:]:
            kind = rec["kind"]
            if end is not None:
                raise ObservabilityError("workload trace has records after wkend")
            if kind == _TASK:
                if rec.get("id") != len(trace.tasks):
                    raise ObservabilityError(
                        f"wktask ids must be dense and ordered; expected "
                        f"{len(trace.tasks)}, got {rec.get('id')!r}"
                    )
                trace.tasks.append(
                    {
                        "id": int(rec["id"]),
                        "payload": rec.get("payload"),
                        "priority": rec.get("priority"),
                        "parent": rec.get("parent"),
                        "items": list(rec.get("items", [])),
                    }
                )
            elif kind == _COMMIT:
                tid = rec.get("id")
                if not isinstance(tid, int) or not 0 <= tid < len(trace.tasks):
                    raise ObservabilityError(
                        f"wkcommit references unknown task id {tid!r}"
                    )
                children = rec.get("children", [])
                for child in children:
                    if not isinstance(child, int) or not 0 <= child < len(trace.tasks):
                        raise ObservabilityError(
                            f"wkcommit for task {tid} references unknown "
                            f"child id {child!r}"
                        )
                trace.commits.append(
                    {
                        "id": tid,
                        "items": list(rec.get("items", [])),
                        "children": [int(c) for c in children],
                        "ops": [list(op) for op in rec.get("ops", [])],
                    }
                )
            elif kind == _END:
                end = rec
            elif kind == _HEADER:
                raise ObservabilityError("workload trace has a second wkheader")
            else:
                raise ObservabilityError(f"unknown workload trace record kind {kind!r}")
        if end is None:
            raise ObservabilityError(
                "workload trace is truncated (missing the wkend trailer)"
            )
        if end.get("tasks") != len(trace.tasks) or end.get("commits") != len(
            trace.commits
        ):
            raise ReplayMismatchError(
                f"workload trace trailer counts do not match the records: "
                f"trailer says {end.get('tasks')} tasks / {end.get('commits')} "
                f"commits, file has {len(trace.tasks)} / {len(trace.commits)}"
            )
        trace.aborts = int(end.get("aborts", 0))
        expected = end.get("fingerprint")
        actual = trace.fingerprint()
        if expected != actual:
            raise ReplayMismatchError(
                f"workload trace fingerprint mismatch: trailer has "
                f"{expected!r}, commit table hashes to {actual!r}"
            )
        return trace

    def save(self, path) -> None:
        """Write the canonical JSONL form to *path*."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        """Read and validate a trace file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(f"cannot read workload trace {path!r}: {exc}") from exc
        return cls.from_jsonl(text)

    def __repr__(self) -> str:
        return (
            f"WorkloadTrace(label={self.label!r}, tasks={len(self.tasks)}, "
            f"commits={len(self.commits)}, aborts={self.aborts})"
        )


def _edge_items(graph: CCGraph, node) -> list:
    """Item-lock encoding of explicit-graph conflicts: incident edges.

    Two nodes' incident-edge sets intersect iff the nodes are adjacent,
    so the greedy item-lock walk over these items partitions a batch
    exactly like :class:`ExplicitGraphPolicy` over the graph itself.
    """
    return [f"e:{min(node, v)}:{max(node, v)}" for v in graph.neighbors(node)]


class _CaptureOperator(Operator):
    """Operator shim that records draws, commits, children and aborts."""

    def __init__(self, capture: "WorkloadCapture"):
        self._cap = capture

    def neighborhood(self, task: Task):
        cap = self._cap
        tid = cap._register(task)
        if cap._edge_graph is not None:
            # explicit-graph conflicts, re-encoded as incident-edge items
            items = _edge_items(cap._edge_graph, task.payload)
            cap._items[tid] = _canon_items(items)
            return items
        items = cap._inner_op.neighborhood(task)
        if not isinstance(items, (list, tuple, set, frozenset)):
            items = tuple(items)  # materialise one-shot iterators
        cap._items[tid] = _canon_items(items)
        return items

    def apply(self, task: Task):
        cap = self._cap
        tid = cap._register(task)
        cap._ops_buffer = buffered = []
        try:
            created = cap._inner_op.apply(task)
        finally:
            cap._ops_buffer = None
        created = list(created) if created else []
        children = [cap._register(t, parent=tid) for t in created]
        cap.trace.add_commit(
            tid, items=cap._items.get(tid, []), children=children, ops=buffered
        )
        return created

    def apply_batch(self, tasks: "list[Task]"):
        # per-task walk so every commit gets its own morph-op attribution;
        # result-identical to the engine's batched path (whose contract is
        # exact equivalence with the per-task loop)
        new_tasks: list[Task] = []
        for task in tasks:
            created = self.apply(task)
            if created:
                new_tasks.extend(created)
        return new_tasks

    def on_abort(self, task: Task) -> None:
        cap = self._cap
        cap._register(task)
        cap.trace.aborts += 1
        cap._inner_op.on_abort(task)


class WorkloadCapture:
    """Wrap a workload so the run it powers is recorded as a trace.

    Speaks the full workload protocol (``workset`` / ``operator`` /
    ``policy`` / ``requires_order`` / ``priority_of`` /
    :meth:`make_engine`), delegating everything to the wrapped workload
    while the interposed :class:`_CaptureOperator` records.  After the
    run, :meth:`save` finalises and writes the trace.

    Capture keys tasks by their process-unique ``uid``; trace ids are
    dense in first-observation order, which for the initial work-set
    means first-draw order — canonical *within* the trace, which is the
    only scope replays compare across.
    """

    def __init__(self, workload, *, label: "str | None" = None):
        self.inner = workload
        self.requires_order = bool(getattr(workload, "requires_order", False))
        self.trace = WorkloadTrace(
            label=label if label is not None else type(workload).__name__,
            requires_order=self.requires_order,
        )
        self.workset = workload.workset
        self._inner_op = workload.operator
        inner_policy = getattr(workload, "policy", None)
        self._edge_graph = None
        if isinstance(inner_policy, ExplicitGraphPolicy):
            # record through the equivalent item-lock encoding (see
            # _edge_items) — ExplicitGraphPolicy never consults the
            # operator, so capturing under it would record nothing
            self._edge_graph = inner_policy.graph
            self.policy = ItemLockPolicy()
        else:
            self.policy = inner_policy
        self._ids: dict[int, int] = {}  # task.uid -> trace id
        self._items: dict[int, list] = {}  # trace id -> canonical items
        self._ops_buffer: "list | None" = None
        self.operator = _CaptureOperator(self)
        self._graph: "CCGraph | None" = None
        graph = getattr(workload, "graph", None)
        if isinstance(graph, CCGraph):
            graph.set_morph_hook(self._on_morph)
            self._graph = graph

    # ------------------------------------------------------------------
    def _register(self, task: Task, parent: "int | None" = None) -> int:
        tid = self._ids.get(task.uid)
        if tid is None:
            try:
                priority = float(self.priority_of(task))
            except (TypeError, ValueError):
                priority = None
            tid = self.trace.add_task(task.payload, priority=priority, parent=parent)
            self._ids[task.uid] = tid
        return tid

    def _on_morph(self, *op) -> None:
        if self._ops_buffer is not None:
            self._ops_buffer.append(op)
        # morphs outside a commit (workload construction, teardown) are
        # environment setup, not task effects — not recorded

    # ------------------------------------------------------------------
    # workload protocol
    # ------------------------------------------------------------------
    def priority_of(self, task: Task) -> float:
        inner = getattr(self.inner, "priority_of", None)
        if inner is not None:
            return inner(task)
        return float(task.payload)

    def make_engine(
        self,
        controller,
        *,
        seed=None,
        step_hook=None,
        cost_model=None,
        recorder=None,
        metrics=None,
        engine=None,
    ):
        """Wire the capture into the engine family the workload needs."""
        if self.requires_order:
            from repro.runtime.ordered import OrderedEngine

            return OrderedEngine(
                workset=self.workset,
                operator=self.operator,
                controller=controller,
                priority_of=self.priority_of,
                seed=seed,
                step_hook=step_hook,
                cost_model=cost_model,
                recorder=recorder,
                metrics=metrics,
                engine=engine,
            )
        from repro.runtime.engine import OptimisticEngine

        return OptimisticEngine(
            workset=self.workset,
            operator=self.operator,
            policy=self.policy,
            controller=controller,
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            engine=engine,
        )

    # ------------------------------------------------------------------
    def finalize(self) -> WorkloadTrace:
        """Seal the recording: fill per-task items, detach the morph hook.

        Idempotent; returns the finished :class:`WorkloadTrace` (also
        available as :attr:`trace`).
        """
        for tid, items in self._items.items():
            self.trace.set_items(tid, items)
        if self._graph is not None:
            self._graph.set_morph_hook(None)
            self._graph = None
        return self.trace

    def save(self, path) -> "WorkloadTrace":
        """Finalise the trace and write it to *path* (obs-notified)."""
        self.finalize().save(path)
        from repro.obs.events import WORKLOAD_CAPTURE
        from repro.obs.recorder import active_recorder

        recorder = active_recorder()
        if recorder is not None:
            recorder.emit(
                WORKLOAD_CAPTURE,
                0,
                path=str(path),
                label=self.trace.label,
                tasks=len(self.trace.tasks),
                commits=len(self.trace.commits),
                aborts=self.trace.aborts,
                fingerprint=self.trace.fingerprint(),
            )
        return self.trace


class _ReplayOperator(Operator):
    """Replays recorded commits: children out, everything else counted."""

    def __init__(self, workload: "TraceReplayWorkload"):
        self._wl = workload

    def neighborhood(self, task: Task):
        # recorded canonical items — used by item-lock style policies
        # (ordered/relaxed task loops); the explicit-graph policy built
        # by the workload encodes the same conflicts as edges
        return self._wl._items.get(task.payload, ())

    def apply(self, task: Task):
        wl = self._wl
        tid = task.payload
        wl.committed_ids.append(tid)
        queue = wl._children.get(tid)
        if not queue:
            # committed on replay more often than while recording (e.g.
            # the recording was cut by max_steps) — no effects known
            wl.unrecorded_commits += 1
            return []
        # stationary workloads commit the same task many times, each
        # occurrence with its own recorded children — consume in order
        children = queue.popleft()
        return [Task(payload=cid) for cid in children]

    def apply_batch(self, tasks: "list[Task]"):
        new_tasks: list[Task] = []
        for task in tasks:
            created = self.apply(task)
            if created:
                new_tasks.extend(created)
        return new_tasks


class TraceReplayWorkload:
    """Deterministic re-execution of a recorded workload trace.

    Replay tasks carry the trace id as payload (plain ints, so the
    sharded runtime's partition/two-phase-commit machinery applies
    unchanged); conflicts come from a synthesised conflict graph with an
    edge wherever two recorded neighbourhoods shared an item — the same
    relation the recording resolved, whichever policy it used.  Each
    replayed commit releases exactly the recorded children; commits the
    recording never saw are counted in :attr:`unrecorded_commits`
    instead of inventing effects.

    Use :meth:`load` (or ``RunConfig(workload="trace:<path>")``) for the
    file-based path; construct directly from a :class:`WorkloadTrace`
    for in-memory round-trips.
    """

    def __init__(self, trace: WorkloadTrace, *, workset=None):
        self.trace = trace
        self.requires_order = bool(trace.requires_order)
        if workset is None:
            if self.requires_order:
                from repro.runtime.policies import PriorityWorkset

                workset = PriorityWorkset()
            else:
                from repro.runtime.workset import RandomWorkset

                workset = RandomWorkset()
        self.workset = workset
        self._priority_seeding = hasattr(workset, "take_earliest")

        # conflict graph over trace ids: edge iff recorded items intersect
        graph = CCGraph()
        for _ in trace.tasks:
            graph.add_node()
        incidence: dict = {}
        for rec in trace.tasks:
            for item in rec["items"]:
                incidence.setdefault(item, []).append(rec["id"])
        for tids in incidence.values():
            for i, u in enumerate(tids):
                for v in tids[i + 1 :]:
                    if u != v:
                        graph.add_edge(u, v)
        self.graph = graph
        self.policy = ExplicitGraphPolicy(
            graph, csr_deltas=bool(getattr(workset, "incremental", False))
        )

        self._items = {rec["id"]: tuple(rec["items"]) for rec in trace.tasks}
        self._priorities = {rec["id"]: rec["priority"] for rec in trace.tasks}
        # per-id queues of children lists, one entry per recorded commit
        self._children: "dict[int, deque]" = {}
        for rec in trace.commits:
            self._children.setdefault(rec["id"], deque()).append(rec["children"])
        self._recorded_counts = Counter(rec["id"] for rec in trace.commits)
        self.committed_ids: list[int] = []
        self.unrecorded_commits = 0
        self.operator = _ReplayOperator(self)

        # roots (never created by a commit) seed the work-set in
        # trace-id order — the canonical seeding of this trace
        for rec in trace.tasks:
            if rec["parent"] is None:
                task = Task(payload=rec["id"])
                if self._priority_seeding:
                    workset.add(task, self.priority_of(task))
                else:
                    workset.add(task)

    # ------------------------------------------------------------------
    # workload protocol
    # ------------------------------------------------------------------
    def priority_of(self, task: Task) -> float:
        priority = self._priorities.get(task.payload)
        return float(priority) if priority is not None else float(task.payload)

    def make_engine(
        self,
        controller,
        *,
        seed=None,
        step_hook=None,
        cost_model=None,
        recorder=None,
        metrics=None,
        engine=None,
    ):
        """Wire the replay into the engine family the trace requires."""
        if self.requires_order:
            from repro.runtime.ordered import OrderedEngine

            return OrderedEngine(
                workset=self.workset,
                operator=self.operator,
                controller=controller,
                priority_of=self.priority_of,
                seed=seed,
                step_hook=step_hook,
                cost_model=cost_model,
                recorder=recorder,
                metrics=metrics,
                engine=engine,
            )
        from repro.runtime.engine import OptimisticEngine

        return OptimisticEngine(
            workset=self.workset,
            operator=self.operator,
            policy=self.policy,
            controller=controller,
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            engine=engine,
        )

    # ------------------------------------------------------------------
    def replay_complete(self) -> bool:
        """Whether the replay committed exactly the recorded commits.

        Compares commit *multisets* — the trace's commit order itself may
        legitimately differ across engine configurations (that is the
        point of replaying); what must agree is the committed work.
        """
        return (
            self.unrecorded_commits == 0
            and Counter(self.committed_ids) == self._recorded_counts
        )

    @classmethod
    def load(cls, path, *, workset=None) -> "TraceReplayWorkload":
        """Build a replay workload from a trace file (obs-notified)."""
        return cls.from_trace(WorkloadTrace.load(path), path=path, workset=workset)

    @classmethod
    def from_trace(
        cls, trace: WorkloadTrace, *, path=None, workset=None
    ) -> "TraceReplayWorkload":
        """Build a replay from an in-memory trace.

        *path* (when the trace came from a file) is recorded in the
        ``workload_replay`` obs event so a run's provenance names its
        source recording; purely in-memory round-trips emit nothing.
        """
        workload = cls(trace, workset=workset)
        if path is not None:
            from repro.obs.events import WORKLOAD_REPLAY
            from repro.obs.recorder import active_recorder

            recorder = active_recorder()
            if recorder is not None:
                recorder.emit(
                    WORKLOAD_REPLAY,
                    0,
                    path=str(path),
                    label=trace.label,
                    tasks=len(trace.tasks),
                    commits=len(trace.commits),
                    fingerprint=trace.fingerprint(),
                )
        return workload

    def __repr__(self) -> str:
        return (
            f"TraceReplayWorkload(label={self.trace.label!r}, "
            f"tasks={len(self.trace.tasks)}, "
            f"recorded_commits={len(self._children)}, "
            f"replayed={len(self.committed_ids)})"
        )
