"""Commit-order policies: the two engine variants as core plugins.

:class:`UnorderedCommitOrder` is the paper's §2 model — the batch is a
uniform draw from the work-set and the draw order *is* the commit order
``π_m``; a pluggable :class:`~repro.runtime.conflict.ConflictPolicy`
partitions it into committed/aborted tasks.

:class:`OrderedCommitOrder` is the §5 extension — tasks carry priorities
(virtual time), the batch is the ``m`` *earliest* pending tasks, and two
extra abort rules (*barrier* and *horizon*) guarantee the committed
sequence is globally chronological, hence equal to the sequential
execution.

Two *relaxed* policies interpolate between those extremes (Alistarh
et al.'s relaxed schedulers; Atos-style async GPU scheduling):

* :class:`RelaxedCommitOrder` — k-of-top priority relaxation: each batch
  entry is drawn uniformly from the ``k`` earliest pending tasks.
  ``k=1`` *is* the strict ordered policy (bit-identical, RNG
  trajectory included); ``k >= n`` recovers the §2 uniform-draw model in
  distribution — the theory bridge the relaxed conformance suite
  quantifies.
* :class:`AsyncCommitOrder` — fully asynchronous: tasks commit in
  arrival order subject to a bounded-staleness window, over an
  :class:`~repro.runtime.workset.ArrivalWorkset`.

Both policies plug into :class:`repro.runtime.core.Engine`; the
fast/reference kernel dispatch honours the engine's ``engine_mode`` so
byte-identical traces hold across both kernel paths.  The historical
:class:`~repro.runtime.ordered.PriorityWorkset` and
:class:`~repro.runtime.ordered.OrderedBatchOutcome` types live here now
(``repro.runtime.ordered`` re-exports them).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RuntimeEngineError, WorksetEmptyError
from repro.graph.partition import (
    partition_graph,
    two_phase_commit_mask,
    two_phase_commit_mask_fast,
)
from repro.runtime.core import OrderPolicy
from repro.runtime.kernels import greedy_lock_mask, sample_window_draws
from repro.runtime.task import Operator
from repro.utils.rng import ensure_rng, substream

if TYPE_CHECKING:
    from collections.abc import Callable

    from repro.runtime.conflict import ConflictPolicy
    from repro.runtime.task import Task

__all__ = [
    "PriorityWorkset",
    "OrderedBatchOutcome",
    "UnorderedCommitOrder",
    "OrderedCommitOrder",
    "RelaxedCommitOrder",
    "AsyncCommitOrder",
    "ShardedCommitOrder",
    "ASYNC_DEFAULT_WINDOW",
]

#: staleness window used when ``order="async"`` carries no explicit size
ASYNC_DEFAULT_WINDOW = 16


class PriorityWorkset:
    """Min-heap of ``(priority, tie, task)`` — earliest work first."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, "Task"]] = []
        self._ties = count()

    def add(self, task: "Task", priority: float) -> None:
        """Insert *task* at *priority* (smaller = earlier = more urgent)."""
        heapq.heappush(self._heap, (float(priority), next(self._ties), task))

    def take_earliest(self, m: int) -> "list[tuple[float, Task]]":
        """Remove the ``min(m, len)`` earliest tasks, in priority order."""
        if not self._heap:
            raise WorksetEmptyError("take from empty priority work-set")
        if m < 0:
            raise ValueError(f"cannot take {m} tasks")
        out = []
        for _ in range(min(m, len(self._heap))):
            prio, _, task = heapq.heappop(self._heap)
            out.append((prio, task))
        return out

    def take_window(
        self, m: int, window: int, rng
    ) -> "tuple[list[tuple[float, Task]], list[int]]":
        """Remove up to *m* tasks, each drawn from the ``window`` earliest.

        The k-of-top relaxed draw: every round picks uniformly among the
        ``min(window, pending)`` earliest remaining tasks, so a task can
        be overtaken by at most ``window - 1`` later-priority ones.
        Returns ``(batch, draws)`` where ``draws[i]`` is the in-window
        rank (0 = earliest) chosen at round ``i`` — the scheduling
        decision the relaxed policy records in its trace.

        ``window=1`` delegates to :meth:`take_earliest` and never touches
        *rng*, which is what makes depth-1 relaxation bit-identical to
        the strict ordered policy.  Draws are vectorised through
        :func:`~repro.runtime.kernels.sample_window_draws`; only the
        ``min(pending, m + window - 1)`` earliest heap entries are popped
        into a staging buffer, and unused ones are pushed back with their
        original tie-breakers, so the heap's FIFO-within-priority order
        is preserved.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if window == 1:
            batch = self.take_earliest(m)
            return batch, [0] * len(batch)
        if not self._heap:
            raise WorksetEmptyError("take from empty priority work-set")
        if m < 0:
            raise ValueError(f"cannot take {m} tasks")
        heap = self._heap
        pending = len(heap)
        k = min(m, pending)
        draws = sample_window_draws(pending, k, window, rng)
        # stage just enough of the heap head: after i removals the
        # window never reaches past entry m + window - 2 of the original
        # priority order, so depth entries always cover every draw
        depth = min(pending, k + window - 1)
        heappop = heapq.heappop
        buffer = [heappop(heap) for _ in range(depth)]
        # the draws only ever index the `window` earliest remaining
        # entries, so slide a window-sized head slice over the sorted
        # buffer instead of popping from its front: O(m * window)
        # element moves, not O(m * depth).  The staging cursor always
        # drains the whole buffer (depth <= k + window - 1), so the
        # only push-backs are the final window leftovers.
        draws_list: "list[int]" = draws.tolist()
        win = buffer[:window]
        nxt = len(win)
        pop = win.pop
        refill = win.append
        taken: "list[tuple[float, int, Task]]" = []
        take = taken.append
        for j in draws_list:
            take(pop(j))
            if nxt < depth:
                refill(buffer[nxt])
                nxt += 1
        for entry in win:  # at most window - 1 leftovers
            heapq.heappush(heap, entry)
        return [(prio, task) for prio, _, task in taken], draws_list

    def peek_priority(self) -> float:
        """Priority of the earliest pending task."""
        if not self._heap:
            raise WorksetEmptyError("peek into empty priority work-set")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class OrderedBatchOutcome:
    """Resolution of one ordered speculative batch.

    ``barrier`` is the priority of the earliest conflict-aborted task
    (``inf`` when none aborted); ``horizon`` is the final earliest-possible-
    future-work priority after all commits applied (it starts at the
    barrier and shrinks as committed tasks create new work).  Both are
    recorded for rollback-accounting diagnostics.
    """

    __slots__ = ("committed", "conflict_aborted", "order_aborted", "barrier", "horizon")

    def __init__(
        self,
        committed: "list[tuple[float, Task]]",
        conflict_aborted: "list[tuple[float, Task]]",
        order_aborted: "list[tuple[float, Task]]",
        barrier: float = float("inf"),
        horizon: float = float("inf"),
    ):
        self.committed = committed
        self.conflict_aborted = conflict_aborted
        self.order_aborted = order_aborted
        self.barrier = barrier
        self.horizon = horizon

    @property
    def launched(self) -> int:
        return len(self.committed) + len(self.conflict_aborted) + len(self.order_aborted)

    @property
    def conflict_ratio(self) -> float:
        """Total abort fraction (conflicts + order violations)."""
        n = self.launched
        if not n:
            return 0.0
        return (len(self.conflict_aborted) + len(self.order_aborted)) / n


class UnorderedCommitOrder(OrderPolicy):
    """Random commit order over a uniform-draw work-set (§2 model).

    Wraps a :class:`~repro.runtime.conflict.ConflictPolicy`; the trace's
    ``policy`` field keeps naming the conflict policy class, exactly as
    the pre-core :class:`~repro.runtime.engine.OptimisticEngine` did.
    """

    def __init__(self, conflict_policy: "ConflictPolicy") -> None:
        self.conflict_policy = conflict_policy

    def label(self) -> str:
        return type(self.conflict_policy).__name__

    def init_rng(self, seed) -> None:
        self.engine.rng = ensure_rng(seed)

    def select(self, requested: int) -> "list[Task]":
        eng = self.engine
        return eng.workset.take(requested, eng.rng)

    def execute(self, batch: "list[Task]"):
        eng = self.engine
        with eng.phase_span("resolve"):
            if eng.engine_mode == "fast":
                return self.conflict_policy.resolve_fast(batch, eng.operator)
            return self.conflict_policy.resolve(batch, eng.operator)

    def apply(self, outcome) -> None:
        # runs inside the core's "commit" span (commit_span_name default)
        eng = self.engine
        workset = eng.workset
        operator = eng.operator
        add_batch = getattr(workset, "add_batch", None)
        if add_batch is None:
            # reference work-sets: the historical per-task walk, verbatim
            for task in outcome.committed:
                new_tasks = operator.apply(task)
                if new_tasks:
                    workset.add_all(new_tasks)
            for task in outcome.aborted:
                operator.on_abort(task)
                workset.add(task)  # rolled back, retried later
            return
        # incremental work-sets: identical semantics, O(delta) inserts.
        # New tasks are created in the same order (apply_batch defaults
        # to the apply loop) and nothing reads the work-set mid-apply,
        # so one extend lands them in the exact slots the per-task walk
        # would have — the differential suite holds this to the bit.
        committed = outcome.committed
        if committed:
            apply_batch = getattr(operator, "apply_batch", None)
            if apply_batch is not None:
                new_tasks = apply_batch(committed)
            else:
                # duck-typed operators (for_each accepts any object with
                # neighborhood/apply) — same concatenation order as the
                # default apply_batch, so slots stay bit-identical
                new_tasks = []
                for task in committed:
                    created = operator.apply(task)
                    if created:
                        new_tasks.extend(created)
            if new_tasks:
                add_batch(new_tasks)
        aborted = outcome.aborted
        if aborted:
            # getattr, not attribute access: duck-typed operators without
            # on_abort fail at the call below (like the reference walk
            # would), not at this skip-the-default-no-op check
            if getattr(type(operator), "on_abort", None) is not Operator.on_abort:
                for task in aborted:
                    operator.on_abort(task)
            add_batch(aborted)  # rolled back, retried later

    def committed_tasks(self, outcome) -> "list[Task]":
        return outcome.committed

    def aborted_tasks(self, outcome) -> "list[Task]":
        return outcome.aborted

    def step_event_fields(self, batch: "list[Task]", outcome) -> dict:
        # commit order recorded as positions within the drawn batch:
        # deterministic under the seed, unlike process-global task uids.
        # Policies that resolve by slot hand the positions over directly;
        # otherwise fall back to a uid->position map.
        if outcome.commit_slots is not None:
            return {
                "commit_positions": outcome.commit_slots,
                "abort_positions": outcome.abort_slots,
            }
        position = {t.uid: i for i, t in enumerate(batch)}
        return {
            "commit_positions": [position[t.uid] for t in outcome.committed],
            "abort_positions": [position[t.uid] for t in outcome.aborted],
        }


class OrderedCommitOrder(OrderPolicy):
    """Priority commit order with barrier/horizon abort rules (§5).

    Commit rule per step, with the batch sorted by priority:

    1. walk the batch earliest-first; a task *conflict-aborts* if its
       neighbourhood intersects an earlier committed task's neighbourhood;
    2. the **barrier**: no survivor later than the earliest
       conflict-aborted task may commit — that aborted task will re-execute
       in a future step and may create work in their past (order-abort
       instead of implementing Time-Warp anti-message cascades);
    3. apply surviving tasks earliest-first; after each apply, any later
       not-yet-applied survivor whose priority exceeds the earliest
       priority just *created* is also **order-aborted**.

    Rules 2+3 together give the strong invariant the tests rely on:
    the global committed sequence is chronologically sorted, and equals
    the sequential execution of the same workload.

    **Per-step RNG substreams.**  Aborted tasks roll back into the
    work-set and retry in later steps, so how much randomness one step's
    operators consume depends on the whole retry history.  A single
    shared stream would therefore make per-step draws irreproducible from
    the recorded seed alone.  Instead ``engine.rng`` is re-derived at the
    top of every step as a pure function of ``(seed, step)`` — replaying
    any step in isolation sees exactly the draws of the original run,
    regardless of what earlier (re)executions consumed.
    """

    def __init__(
        self,
        priority_of: "Callable[[Task], float]",
        conflict_policy: "ConflictPolicy | None" = None,
    ) -> None:
        self.priority_of = priority_of
        #: optional :class:`~repro.runtime.conflict.ConflictPolicy`
        #: deciding the conflict phase; ``None`` keeps the historical
        #: greedy item-lock semantics over operator neighbourhoods.
        #: Graph runs pass their ``ExplicitGraphPolicy`` here so ordered
        #: and unordered engines detect the *same* conflicts — the
        #: precondition for the relaxed theory bridge.
        self.conflict_policy = conflict_policy
        self.conflict_aborts_total = 0
        self.order_aborts_total = 0
        self._seed: "int | None" = None

    def label(self) -> str:
        return "ordered"

    def init_rng(self, seed) -> None:
        # Seeds (ints / SeedSequence / None) get per-step substream
        # derivation; a caller-owned Generator cannot be re-derived, so it
        # is used as-is (draws then depend on prior consumption — pass a
        # seed when step-level reproducibility matters).
        if isinstance(seed, np.random.Generator):
            self._seed = None
            self.engine.rng = seed
        else:
            self._seed = seed if seed is not None else int(
                np.random.SeedSequence().generate_state(1)[0]
            )
            self.engine.rng = substream(self._seed, "ordered-step", 0)

    def begin_step(self) -> None:
        if self._seed is not None:
            # one substream per step: draws are a pure function of
            # (seed, step), never of earlier steps' retry history
            self.engine.rng = substream(self._seed, "ordered-step", self.engine._step)

    def select(self, requested: int) -> "list[tuple[float, Task]]":
        return self.engine.workset.take_earliest(requested)

    def execute(self, batch: "list[tuple[float, Task]]"):
        # route through the engine attribute so tests (and subclasses)
        # can swap the resolution step wholesale; policies driven by the
        # bare core Engine (no _resolve seam) resolve directly
        resolve = getattr(self.engine, "_resolve", None)
        if resolve is None:
            return self.resolve(batch)  # opens resolve/commit spans
        return resolve(batch)

    def commit_span_name(self) -> str:
        return "record"

    def apply(self, outcome) -> None:
        # runs inside the core's "record" span: committed operators were
        # already applied during the horizon walk; only aborts roll back
        eng = self.engine
        for prio, task in outcome.conflict_aborted:
            eng.operator.on_abort(task)
            eng.workset.add(task, prio)
        for prio, task in outcome.order_aborted:
            eng.operator.on_abort(task)
            eng.workset.add(task, prio)
        self.conflict_aborts_total += len(outcome.conflict_aborted)
        self.order_aborts_total += len(outcome.order_aborted)

    # -- resolution (the engine delegates its ``_resolve`` here) --------
    def _conflict_phase(
        self, batch: "list[tuple[float, Task]]"
    ) -> "tuple[list[tuple[float, Task]], list[tuple[float, Task]]]":
        """Greedy item-lock partition of *batch* into (survivors, aborted)."""
        eng = self.engine
        if self.conflict_policy is not None:
            # delegate to the pluggable policy (graph-edge semantics for
            # graph runs); positions map straight back because resolve
            # slots are ascending within the walked order
            tasks = [task for _, task in batch]
            if eng.engine_mode == "fast":
                outcome = self.conflict_policy.resolve_fast(tasks, eng.operator)
            else:
                outcome = self.conflict_policy.resolve(tasks, eng.operator)
            if outcome.commit_slots is not None:
                survivors = [batch[i] for i in outcome.commit_slots]
                aborted = [batch[i] for i in outcome.abort_slots]
                return survivors, aborted
            committed_uids = {task.uid for task in outcome.committed}
            survivors = [entry for entry in batch if entry[1].uid in committed_uids]
            aborted = [entry for entry in batch if entry[1].uid not in committed_uids]
            return survivors, aborted
        if eng.engine_mode == "fast":
            codes: dict = {}
            flat: list[int] = []
            ptr = np.zeros(len(batch) + 1, dtype=np.int64)
            for i, (_, task) in enumerate(batch):
                for item in set(eng.operator.neighborhood(task)):
                    flat.append(codes.setdefault(item, len(codes)))
                ptr[i + 1] = len(flat)
            mask = greedy_lock_mask(
                ptr, np.asarray(flat, dtype=np.int64), num_items=len(codes)
            )
            survivors = [entry for entry, ok in zip(batch, mask) if ok]
            aborted = [entry for entry, ok in zip(batch, mask) if not ok]
            return survivors, aborted
        held: set = set()
        survivors = []
        aborted = []
        for prio, task in batch:  # batch is already earliest-first
            items = set(eng.operator.neighborhood(task))
            if held.isdisjoint(items):
                held |= items
                survivors.append((prio, task))
            else:
                aborted.append((prio, task))
        return survivors, aborted

    def resolve(self, batch: "list[tuple[float, Task]]") -> OrderedBatchOutcome:
        """Conflict phase + barrier/horizon commit walk over *batch*."""
        eng = self.engine
        with eng.phase_span("resolve"):
            survivors, conflict_aborted = self._conflict_phase(batch)
        committed: "list[tuple[float, Task]]" = []
        order_aborted: "list[tuple[float, Task]]" = []
        # barrier: an aborted task re-executes later and creates work no
        # earlier than its own priority — nothing beyond it may commit now
        barrier = min((p for p, _ in conflict_aborted), default=float("inf"))
        horizon = barrier  # earliest possible future work
        with eng.phase_span("commit"):
            for prio, task in survivors:
                if prio > horizon:
                    order_aborted.append((prio, task))
                    continue
                new_work = eng.operator.apply(task)
                for new_task in new_work:
                    new_prio = float(self.priority_of(new_task))
                    if new_prio < prio:
                        raise RuntimeEngineError(
                            f"operator created work at priority {new_prio} before "
                            f"its own task at {prio} (causality violation)"
                        )
                    eng.workset.add(new_task, new_prio)
                    horizon = min(horizon, new_prio)
                committed.append((prio, task))
        return OrderedBatchOutcome(
            committed, conflict_aborted, order_aborted, barrier=barrier, horizon=horizon
        )

    def committed_tasks(self, outcome) -> "list[Task]":
        return [task for _, task in outcome.committed]

    def aborted_tasks(self, outcome) -> "list[Task]":
        return [
            task for _, task in outcome.conflict_aborted + outcome.order_aborted
        ]

    def step_event_fields(self, batch, outcome) -> dict:
        position = {t.uid: i for i, (_, t) in enumerate(batch)}
        finite = lambda x: None if x == float("inf") else float(x)  # noqa: E731
        return {
            "commit_positions": [position[t.uid] for _, t in outcome.committed],
            "abort_positions": sorted(
                position[t.uid]
                for _, t in outcome.conflict_aborted + outcome.order_aborted
            ),
            "conflict_aborted": len(outcome.conflict_aborted),
            "order_aborted": len(outcome.order_aborted),
            "barrier": finite(outcome.barrier),
            "horizon": finite(outcome.horizon),
        }

    def step_metrics(self, metrics, outcome) -> None:
        metrics.counter("conflict_aborts").inc(len(outcome.conflict_aborted))
        metrics.counter("order_aborts").inc(len(outcome.order_aborted))

    def run_end_fields(self) -> dict:
        return {
            "conflict_aborts": self.conflict_aborts_total,
            "order_aborts": self.order_aborts_total,
        }


class RelaxedCommitOrder(OrderedCommitOrder):
    """k-of-top priority relaxation of the ordered policy.

    Each batch entry is drawn uniformly from the ``k`` *earliest* pending
    tasks (via :meth:`PriorityWorkset.take_window`), so a task may be
    overtaken by at most ``k - 1`` later-priority tasks — the bounded
    rank error of Alistarh et al.'s relaxed priority schedulers.  The
    draw order is the commit order; conflicts resolve greedily along it
    exactly as in the strict policy.

    The two endpoints anchor the theory bridge the relaxed conformance
    suite (``tests/model/test_relaxed_conformance.py``) verifies:

    * ``k = 1`` — the window holds only the head, no randomness is
      consumed, and the policy **is** :class:`OrderedCommitOrder`:
      byte-identical traces, RNG trajectory included (``label()``
      reports ``"ordered"`` accordingly).
    * ``k >= n`` — the window always covers the whole work-set, the draw
      degenerates to the uniform ordered sample without replacement, and
      (with the same conflict policy) the commit distribution equals the
      paper's §2 ``π_m`` model.

    For ``k > 1`` the strict policy's barrier/horizon *order-abort* rules
    are deliberately dropped: bounded out-of-order commits are the point
    of relaxation, and re-executed or newly created earlier-priority work
    simply commits in a later round (staleness stays bounded by the
    window).  Conflict aborts and the barrier/horizon diagnostics are
    still reported, so the step-event schema matches the ordered engine's.

    Each windowed draw is emitted as an ``order_decision`` trace event
    (window size plus per-round in-window ranks), keeping relaxed traces
    replayable decision by decision.
    """

    def __init__(
        self,
        priority_of: "Callable[[Task], float]",
        k: int,
        conflict_policy: "ConflictPolicy | None" = None,
    ) -> None:
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            raise RuntimeEngineError(
                f"relaxation depth k must be an int >= 1, got {k!r}"
            )
        super().__init__(priority_of, conflict_policy=conflict_policy)
        self.k = k
        #: in-window ranks of the most recent batch draw (diagnostics)
        self.last_draws: "list[int]" = []

    def label(self) -> str:
        # depth 1 IS the strict ordered policy — label it as such so
        # run_start events (and the byte-identity acceptance gate) agree
        return "ordered" if self.k == 1 else f"relaxed:{self.k}"

    def select(self, requested: int) -> "list[tuple[float, Task]]":
        if self.k == 1:
            return super().select(requested)  # no RNG: strict head take
        eng = self.engine
        take_window = getattr(eng.workset, "take_window", None)
        if take_window is None:
            raise RuntimeEngineError(
                f"relaxed commit order needs a work-set with take_window(), "
                f"got {type(eng.workset).__name__}"
            )
        batch, draws = take_window(requested, self.k, eng.rng)
        self.last_draws = draws
        if eng.recorder is not None:
            eng.recorder.emit(
                "order_decision",
                step=eng.steps_executed,
                policy=self.label(),
                window=self.k,
                draws=draws,
            )
        return batch

    def resolve(self, batch: "list[tuple[float, Task]]") -> OrderedBatchOutcome:
        """Conflict phase + unconditional commit walk (no order aborts)."""
        if self.k == 1:
            return super().resolve(batch)
        eng = self.engine
        with eng.phase_span("resolve"):
            survivors, conflict_aborted = self._conflict_phase(batch)
        committed: "list[tuple[float, Task]]" = []
        # barrier/horizon are reported as diagnostics only: relaxation
        # tolerates bounded out-of-order commits instead of aborting them
        barrier = min((p for p, _ in conflict_aborted), default=float("inf"))
        horizon = barrier
        with eng.phase_span("commit"):
            for prio, task in survivors:
                for new_task in eng.operator.apply(task):
                    new_prio = float(self.priority_of(new_task))
                    eng.workset.add(new_task, new_prio)
                    horizon = min(horizon, new_prio)
                committed.append((prio, task))
        return OrderedBatchOutcome(
            committed, conflict_aborted, [], barrier=barrier, horizon=horizon
        )


class AsyncCommitOrder(UnorderedCommitOrder):
    """Fully asynchronous commit order with a bounded-staleness window.

    Models Atos-style asynchronous task scheduling: tasks commit in
    *arrival* order, except that each batch entry may be drawn from the
    oldest ``window`` pending tasks (an
    :class:`~repro.runtime.workset.ArrivalWorkset`), so stale work is
    overtaken by at most ``window - 1`` younger tasks.  Conflict
    resolution and roll-back semantics are inherited unchanged from
    :class:`UnorderedCommitOrder` — aborted tasks re-enter at the queue
    tail (asynchronous resubmission) — and the step-event schema is
    identical to the unordered engine's, so every trace consumer works
    on async runs unmodified.  Windowed draws with ``window > 1`` are
    additionally emitted as ``order_decision`` events.
    """

    def __init__(
        self,
        conflict_policy: "ConflictPolicy",
        window: int = ASYNC_DEFAULT_WINDOW,
    ) -> None:
        if isinstance(window, bool) or not isinstance(window, int) or window < 1:
            raise RuntimeEngineError(
                f"staleness window must be an int >= 1, got {window!r}"
            )
        super().__init__(conflict_policy)
        self.window = window
        #: in-window indices of the most recent batch draw (diagnostics)
        self.last_draws: "list[int]" = []

    def label(self) -> str:
        return f"async:{self.window}"

    def select(self, requested: int) -> "list[Task]":
        eng = self.engine
        take_window = getattr(eng.workset, "take_window", None)
        if take_window is None:
            raise RuntimeEngineError(
                f"async commit order needs a work-set with take_window(), "
                f"got {type(eng.workset).__name__}"
            )
        batch, draws = take_window(requested, self.window, eng.rng)
        self.last_draws = draws
        if eng.recorder is not None and self.window > 1:
            eng.recorder.emit(
                "order_decision",
                step=eng.steps_executed,
                policy=self.label(),
                window=self.window,
                draws=draws,
            )
        return batch


class ShardedCommitOrder(UnorderedCommitOrder):
    """Partitioned commit order with two-phase halo-exchange resolution.

    The batch is still one uniform draw from the *global* work-set — the
    paper's §2 commit order ``π_m`` and the RNG trajectory are untouched
    — but conflict resolution is partitioned: a deterministic edge-cut
    :class:`~repro.graph.partition.GraphPartition` splits the CC graph
    into ``shards`` shards, each shard resolves its slice of the batch
    greedily over intra-shard edges (phase 1), and locally committed
    boundary tasks then survive a single halo exchange over the cut
    edges (phase 2).  No two committed tasks of one round are adjacent —
    conflict-serializability is preserved — while a shard may abort
    boundary work the global greedy walk would have committed; those
    surplus ``halo_aborts`` are the price of bounded cross-shard
    staleness and are reported per step and per run.

    ``shards=1`` *is* the unordered policy: every edge is intra-shard,
    phase 1 is the plain greedy walk, phase 2 is a no-op — execution is
    delegated verbatim (label, RNG, events and all), keeping traces
    byte-identical to the historical engine.  Multi-shard rounds emit an
    ``order_decision`` event (per-shard launch/commit counts) and a
    ``halo_exchange`` event (committed nodes with their shards, halo
    aborts) so a trace alone certifies the serializability claim.

    An optional ``pool`` (see :mod:`repro.runtime.sharded`) offloads
    phase 1 to supervised per-shard worker processes; the policy's own
    in-process resolution is the byte-for-byte specification the pool is
    held to.
    """

    def __init__(
        self,
        conflict_policy: "ConflictPolicy",
        shards: int = 1,
        pool=None,
    ) -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise RuntimeEngineError(
                f"shard count must be an int >= 1, got {shards!r}"
            )
        super().__init__(conflict_policy)
        self.shards = shards
        self.pool = pool
        self._partition = None
        self.halo_aborts_total = 0
        #: per-shard launched/committed counts of the most recent round
        self.last_shard_stats: "dict | None" = None
        #: distributed-tracing context (duck-typed
        #: :class:`repro.obs.distributed.TraceContext`); when set, every
        #: multi-shard round draws one halo-exchange sequence number and
        #: stamps ``run_id``/``seq`` on its order events — strictly
        #: additive fields, absent (and byte-invisible) when unset
        self.trace_ctx = None

    def label(self) -> str:
        # one shard IS the unordered policy — label it as such so
        # run_start events (and the byte-identity gate) agree
        if self.shards == 1:
            return super().label()
        return f"sharded:{self.shards}"

    @property
    def partition(self):
        """The lazily built edge-cut partition (multi-shard only)."""
        if self._partition is None:
            graph = getattr(self.conflict_policy, "graph", None)
            if graph is None:
                raise RuntimeEngineError(
                    "sharded commit order needs a graph-backed conflict "
                    f"policy, got {type(self.conflict_policy).__name__}"
                )
            self._partition = partition_graph(graph, self.shards)
        return self._partition

    def execute(self, batch: "list[Task]"):
        if self.shards == 1:
            return super().execute(batch)
        eng = self.engine
        seq = None if self.trace_ctx is None else self.trace_ctx.next_seq()
        with eng.phase_span("resolve"):
            part = self.partition
            graph = self.conflict_policy.graph
            step = eng.steps_executed
            final = local = None
            if self.pool is not None:
                final, local = self.pool.resolve(
                    step, batch, part, graph, seq=seq
                )
            elif eng.engine_mode == "fast" and batch:
                payloads = np.asarray([task.payload for task in batch])
                masks = two_phase_commit_mask_fast(
                    graph.conflict_view(), part, payloads
                )
                if masks is not None:
                    final, local = masks
            if final is None:
                final, local = two_phase_commit_mask(
                    graph, part, [task.payload for task in batch]
                )
            outcome = self.conflict_policy._split_by_mask(batch, final)
        self._note_round(batch, part, final, local, seq=seq)
        return outcome

    def _note_round(self, batch, part, final, local, seq=None) -> None:
        """Account one multi-shard round and emit its trace events."""
        eng = self.engine
        payloads = np.asarray(
            [task.payload for task in batch] or [], dtype=np.int64
        )
        shard_by_pos = part.shard_of_array(payloads)
        launched = np.bincount(shard_by_pos, minlength=self.shards)
        committed = np.bincount(shard_by_pos[final], minlength=self.shards)
        halo_aborts = int(np.count_nonzero(local & ~final))
        self.halo_aborts_total += halo_aborts
        self.last_shard_stats = {
            "launched": [int(x) for x in launched],
            "committed": [int(x) for x in committed],
            "halo_aborts": halo_aborts,
        }
        if eng.recorder is not None:
            step = eng.steps_executed
            causal = {}
            if self.trace_ctx is not None:
                if self.trace_ctx.run_id is not None:
                    causal["run_id"] = self.trace_ctx.run_id
                if seq is not None:
                    causal["seq"] = int(seq)
            eng.recorder.emit(
                "order_decision",
                step=step,
                policy=self.label(),
                shards=self.shards,
                launched=self.last_shard_stats["launched"],
                committed=self.last_shard_stats["committed"],
                **causal,
            )
            eng.recorder.emit(
                "halo_exchange",
                step=step,
                policy=self.label(),
                local_commits=int(np.count_nonzero(local)),
                halo_aborts=halo_aborts,
                committed_nodes=[int(p) for p in payloads[final]],
                committed_shards=[int(s) for s in shard_by_pos[final]],
                **causal,
            )

    def step_metrics(self, metrics, outcome) -> None:
        if self.shards > 1 and self.last_shard_stats is not None:
            metrics.counter("halo_aborts").inc(
                self.last_shard_stats["halo_aborts"]
            )

    def run_end_fields(self) -> dict:
        if self.shards == 1:
            return super().run_end_fields()
        return {"halo_aborts": self.halo_aborts_total}
