"""Commit-order policies: the two engine variants as core plugins.

:class:`UnorderedCommitOrder` is the paper's §2 model — the batch is a
uniform draw from the work-set and the draw order *is* the commit order
``π_m``; a pluggable :class:`~repro.runtime.conflict.ConflictPolicy`
partitions it into committed/aborted tasks.

:class:`OrderedCommitOrder` is the §5 extension — tasks carry priorities
(virtual time), the batch is the ``m`` *earliest* pending tasks, and two
extra abort rules (*barrier* and *horizon*) guarantee the committed
sequence is globally chronological, hence equal to the sequential
execution.

Both policies plug into :class:`repro.runtime.core.Engine`; the
fast/reference kernel dispatch honours the engine's ``engine_mode`` so
byte-identical traces hold across both kernel paths.  The historical
:class:`~repro.runtime.ordered.PriorityWorkset` and
:class:`~repro.runtime.ordered.OrderedBatchOutcome` types live here now
(``repro.runtime.ordered`` re-exports them).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RuntimeEngineError, WorksetEmptyError
from repro.runtime.core import OrderPolicy
from repro.runtime.kernels import greedy_lock_mask
from repro.runtime.task import Operator
from repro.utils.rng import ensure_rng, substream

if TYPE_CHECKING:
    from collections.abc import Callable

    from repro.runtime.conflict import ConflictPolicy
    from repro.runtime.task import Task

__all__ = [
    "PriorityWorkset",
    "OrderedBatchOutcome",
    "UnorderedCommitOrder",
    "OrderedCommitOrder",
]


class PriorityWorkset:
    """Min-heap of ``(priority, tie, task)`` — earliest work first."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, "Task"]] = []
        self._ties = count()

    def add(self, task: "Task", priority: float) -> None:
        """Insert *task* at *priority* (smaller = earlier = more urgent)."""
        heapq.heappush(self._heap, (float(priority), next(self._ties), task))

    def take_earliest(self, m: int) -> "list[tuple[float, Task]]":
        """Remove the ``min(m, len)`` earliest tasks, in priority order."""
        if not self._heap:
            raise WorksetEmptyError("take from empty priority work-set")
        if m < 0:
            raise ValueError(f"cannot take {m} tasks")
        out = []
        for _ in range(min(m, len(self._heap))):
            prio, _, task = heapq.heappop(self._heap)
            out.append((prio, task))
        return out

    def peek_priority(self) -> float:
        """Priority of the earliest pending task."""
        if not self._heap:
            raise WorksetEmptyError("peek into empty priority work-set")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class OrderedBatchOutcome:
    """Resolution of one ordered speculative batch.

    ``barrier`` is the priority of the earliest conflict-aborted task
    (``inf`` when none aborted); ``horizon`` is the final earliest-possible-
    future-work priority after all commits applied (it starts at the
    barrier and shrinks as committed tasks create new work).  Both are
    recorded for rollback-accounting diagnostics.
    """

    __slots__ = ("committed", "conflict_aborted", "order_aborted", "barrier", "horizon")

    def __init__(
        self,
        committed: "list[tuple[float, Task]]",
        conflict_aborted: "list[tuple[float, Task]]",
        order_aborted: "list[tuple[float, Task]]",
        barrier: float = float("inf"),
        horizon: float = float("inf"),
    ):
        self.committed = committed
        self.conflict_aborted = conflict_aborted
        self.order_aborted = order_aborted
        self.barrier = barrier
        self.horizon = horizon

    @property
    def launched(self) -> int:
        return len(self.committed) + len(self.conflict_aborted) + len(self.order_aborted)

    @property
    def conflict_ratio(self) -> float:
        """Total abort fraction (conflicts + order violations)."""
        n = self.launched
        if not n:
            return 0.0
        return (len(self.conflict_aborted) + len(self.order_aborted)) / n


class UnorderedCommitOrder(OrderPolicy):
    """Random commit order over a uniform-draw work-set (§2 model).

    Wraps a :class:`~repro.runtime.conflict.ConflictPolicy`; the trace's
    ``policy`` field keeps naming the conflict policy class, exactly as
    the pre-core :class:`~repro.runtime.engine.OptimisticEngine` did.
    """

    def __init__(self, conflict_policy: "ConflictPolicy") -> None:
        self.conflict_policy = conflict_policy

    def label(self) -> str:
        return type(self.conflict_policy).__name__

    def init_rng(self, seed) -> None:
        self.engine.rng = ensure_rng(seed)

    def select(self, requested: int) -> "list[Task]":
        eng = self.engine
        return eng.workset.take(requested, eng.rng)

    def execute(self, batch: "list[Task]"):
        eng = self.engine
        with eng.phase_span("resolve"):
            if eng.engine_mode == "fast":
                return self.conflict_policy.resolve_fast(batch, eng.operator)
            return self.conflict_policy.resolve(batch, eng.operator)

    def apply(self, outcome) -> None:
        # runs inside the core's "commit" span (commit_span_name default)
        eng = self.engine
        workset = eng.workset
        operator = eng.operator
        add_batch = getattr(workset, "add_batch", None)
        if add_batch is None:
            # reference work-sets: the historical per-task walk, verbatim
            for task in outcome.committed:
                new_tasks = operator.apply(task)
                if new_tasks:
                    workset.add_all(new_tasks)
            for task in outcome.aborted:
                operator.on_abort(task)
                workset.add(task)  # rolled back, retried later
            return
        # incremental work-sets: identical semantics, O(delta) inserts.
        # New tasks are created in the same order (apply_batch defaults
        # to the apply loop) and nothing reads the work-set mid-apply,
        # so one extend lands them in the exact slots the per-task walk
        # would have — the differential suite holds this to the bit.
        committed = outcome.committed
        if committed:
            apply_batch = getattr(operator, "apply_batch", None)
            if apply_batch is not None:
                new_tasks = apply_batch(committed)
            else:
                # duck-typed operators (for_each accepts any object with
                # neighborhood/apply) — same concatenation order as the
                # default apply_batch, so slots stay bit-identical
                new_tasks = []
                for task in committed:
                    created = operator.apply(task)
                    if created:
                        new_tasks.extend(created)
            if new_tasks:
                add_batch(new_tasks)
        aborted = outcome.aborted
        if aborted:
            # getattr, not attribute access: duck-typed operators without
            # on_abort fail at the call below (like the reference walk
            # would), not at this skip-the-default-no-op check
            if getattr(type(operator), "on_abort", None) is not Operator.on_abort:
                for task in aborted:
                    operator.on_abort(task)
            add_batch(aborted)  # rolled back, retried later

    def committed_tasks(self, outcome) -> "list[Task]":
        return outcome.committed

    def aborted_tasks(self, outcome) -> "list[Task]":
        return outcome.aborted

    def step_event_fields(self, batch: "list[Task]", outcome) -> dict:
        # commit order recorded as positions within the drawn batch:
        # deterministic under the seed, unlike process-global task uids.
        # Policies that resolve by slot hand the positions over directly;
        # otherwise fall back to a uid->position map.
        if outcome.commit_slots is not None:
            return {
                "commit_positions": outcome.commit_slots,
                "abort_positions": outcome.abort_slots,
            }
        position = {t.uid: i for i, t in enumerate(batch)}
        return {
            "commit_positions": [position[t.uid] for t in outcome.committed],
            "abort_positions": [position[t.uid] for t in outcome.aborted],
        }


class OrderedCommitOrder(OrderPolicy):
    """Priority commit order with barrier/horizon abort rules (§5).

    Commit rule per step, with the batch sorted by priority:

    1. walk the batch earliest-first; a task *conflict-aborts* if its
       neighbourhood intersects an earlier committed task's neighbourhood;
    2. the **barrier**: no survivor later than the earliest
       conflict-aborted task may commit — that aborted task will re-execute
       in a future step and may create work in their past (order-abort
       instead of implementing Time-Warp anti-message cascades);
    3. apply surviving tasks earliest-first; after each apply, any later
       not-yet-applied survivor whose priority exceeds the earliest
       priority just *created* is also **order-aborted**.

    Rules 2+3 together give the strong invariant the tests rely on:
    the global committed sequence is chronologically sorted, and equals
    the sequential execution of the same workload.

    **Per-step RNG substreams.**  Aborted tasks roll back into the
    work-set and retry in later steps, so how much randomness one step's
    operators consume depends on the whole retry history.  A single
    shared stream would therefore make per-step draws irreproducible from
    the recorded seed alone.  Instead ``engine.rng`` is re-derived at the
    top of every step as a pure function of ``(seed, step)`` — replaying
    any step in isolation sees exactly the draws of the original run,
    regardless of what earlier (re)executions consumed.
    """

    def __init__(self, priority_of: "Callable[[Task], float]") -> None:
        self.priority_of = priority_of
        self.conflict_aborts_total = 0
        self.order_aborts_total = 0
        self._seed: "int | None" = None

    def label(self) -> str:
        return "ordered"

    def init_rng(self, seed) -> None:
        # Seeds (ints / SeedSequence / None) get per-step substream
        # derivation; a caller-owned Generator cannot be re-derived, so it
        # is used as-is (draws then depend on prior consumption — pass a
        # seed when step-level reproducibility matters).
        if isinstance(seed, np.random.Generator):
            self._seed = None
            self.engine.rng = seed
        else:
            self._seed = seed if seed is not None else int(
                np.random.SeedSequence().generate_state(1)[0]
            )
            self.engine.rng = substream(self._seed, "ordered-step", 0)

    def begin_step(self) -> None:
        if self._seed is not None:
            # one substream per step: draws are a pure function of
            # (seed, step), never of earlier steps' retry history
            self.engine.rng = substream(self._seed, "ordered-step", self.engine._step)

    def select(self, requested: int) -> "list[tuple[float, Task]]":
        return self.engine.workset.take_earliest(requested)

    def execute(self, batch: "list[tuple[float, Task]]"):
        # route through the engine attribute so tests (and subclasses)
        # can swap the resolution step wholesale
        return self.engine._resolve(batch)  # opens resolve/commit spans

    def commit_span_name(self) -> str:
        return "record"

    def apply(self, outcome) -> None:
        # runs inside the core's "record" span: committed operators were
        # already applied during the horizon walk; only aborts roll back
        eng = self.engine
        for prio, task in outcome.conflict_aborted:
            eng.operator.on_abort(task)
            eng.workset.add(task, prio)
        for prio, task in outcome.order_aborted:
            eng.operator.on_abort(task)
            eng.workset.add(task, prio)
        self.conflict_aborts_total += len(outcome.conflict_aborted)
        self.order_aborts_total += len(outcome.order_aborted)

    # -- resolution (the engine delegates its ``_resolve`` here) --------
    def _conflict_phase(
        self, batch: "list[tuple[float, Task]]"
    ) -> "tuple[list[tuple[float, Task]], list[tuple[float, Task]]]":
        """Greedy item-lock partition of *batch* into (survivors, aborted)."""
        eng = self.engine
        if eng.engine_mode == "fast":
            codes: dict = {}
            flat: list[int] = []
            ptr = np.zeros(len(batch) + 1, dtype=np.int64)
            for i, (_, task) in enumerate(batch):
                for item in set(eng.operator.neighborhood(task)):
                    flat.append(codes.setdefault(item, len(codes)))
                ptr[i + 1] = len(flat)
            mask = greedy_lock_mask(
                ptr, np.asarray(flat, dtype=np.int64), num_items=len(codes)
            )
            survivors = [entry for entry, ok in zip(batch, mask) if ok]
            aborted = [entry for entry, ok in zip(batch, mask) if not ok]
            return survivors, aborted
        held: set = set()
        survivors = []
        aborted = []
        for prio, task in batch:  # batch is already earliest-first
            items = set(eng.operator.neighborhood(task))
            if held.isdisjoint(items):
                held |= items
                survivors.append((prio, task))
            else:
                aborted.append((prio, task))
        return survivors, aborted

    def resolve(self, batch: "list[tuple[float, Task]]") -> OrderedBatchOutcome:
        """Conflict phase + barrier/horizon commit walk over *batch*."""
        eng = self.engine
        with eng.phase_span("resolve"):
            survivors, conflict_aborted = self._conflict_phase(batch)
        committed: "list[tuple[float, Task]]" = []
        order_aborted: "list[tuple[float, Task]]" = []
        # barrier: an aborted task re-executes later and creates work no
        # earlier than its own priority — nothing beyond it may commit now
        barrier = min((p for p, _ in conflict_aborted), default=float("inf"))
        horizon = barrier  # earliest possible future work
        with eng.phase_span("commit"):
            for prio, task in survivors:
                if prio > horizon:
                    order_aborted.append((prio, task))
                    continue
                new_work = eng.operator.apply(task)
                for new_task in new_work:
                    new_prio = float(self.priority_of(new_task))
                    if new_prio < prio:
                        raise RuntimeEngineError(
                            f"operator created work at priority {new_prio} before "
                            f"its own task at {prio} (causality violation)"
                        )
                    eng.workset.add(new_task, new_prio)
                    horizon = min(horizon, new_prio)
                committed.append((prio, task))
        return OrderedBatchOutcome(
            committed, conflict_aborted, order_aborted, barrier=barrier, horizon=horizon
        )

    def committed_tasks(self, outcome) -> "list[Task]":
        return [task for _, task in outcome.committed]

    def aborted_tasks(self, outcome) -> "list[Task]":
        return [
            task for _, task in outcome.conflict_aborted + outcome.order_aborted
        ]

    def step_event_fields(self, batch, outcome) -> dict:
        position = {t.uid: i for i, (_, t) in enumerate(batch)}
        finite = lambda x: None if x == float("inf") else float(x)  # noqa: E731
        return {
            "commit_positions": [position[t.uid] for _, t in outcome.committed],
            "abort_positions": sorted(
                position[t.uid]
                for _, t in outcome.conflict_aborted + outcome.order_aborted
            ),
            "conflict_aborted": len(outcome.conflict_aborted),
            "order_aborted": len(outcome.order_aborted),
            "barrier": finite(outcome.barrier),
            "horizon": finite(outcome.horizon),
        }

    def step_metrics(self, metrics, outcome) -> None:
        metrics.counter("conflict_aborts").inc(len(outcome.conflict_aborted))
        metrics.counter("order_aborts").inc(len(outcome.order_aborted))

    def run_end_fields(self) -> dict:
        return {
            "conflict_aborts": self.conflict_aborts_total,
            "order_aborts": self.order_aborts_total,
        }
