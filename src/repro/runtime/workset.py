"""Unordered work-set implementations.

The paper treats only *unordered* algorithms: any pending task may execute
at any time, so the work-set is a bag.  The scheduler model picks active
tasks **uniformly at random** (§2); :class:`RandomWorkset` implements that
with O(1) swap-removal.  FIFO/LIFO variants are provided for scheduling-
policy comparisons (they bias which conflicts materialise, a knob the
ablation benchmarks exercise).  :class:`ArrivalWorkset` adds the
bounded-staleness queue behind the asynchronous commit-order policy:
arrival order with a uniform draw over the oldest ``window`` entries.
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

from repro.errors import WorksetEmptyError
from repro.runtime.kernels import sample_window_draws
from repro.runtime.task import Task

__all__ = ["Workset", "RandomWorkset", "FifoWorkset", "LifoWorkset", "ArrivalWorkset"]


class Workset(abc.ABC):
    """A bag of pending tasks supporting batched removal."""

    @abc.abstractmethod
    def add(self, task: Task) -> None:
        """Insert one task."""

    @abc.abstractmethod
    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        """Remove and return up to *count* tasks (policy-defined order).

        The returned order is the speculative *commit order* of the batch.
        Returns fewer than *count* tasks when the set is nearly empty and
        raises :class:`WorksetEmptyError` when it is empty.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of pending tasks."""

    def add_all(self, tasks: "list[Task] | tuple[Task, ...]") -> None:
        """Insert many tasks."""
        for t in tasks:
            self.add(t)

    def __bool__(self) -> bool:
        return len(self) > 0


class RandomWorkset(Workset):
    """Uniformly random batched removal (the paper's scheduler model).

    Backing store is an array-backed list with swap-removal: removing a
    random element is O(1) and the batch order is a uniform ordered sample
    without replacement — exactly the ``π_m`` prefix distribution.
    """

    def __init__(self) -> None:
        self._items: list[Task] = []

    def add(self, task: Task) -> None:
        self._items.append(task)

    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        if not self._items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        batch: list[Task] = []
        items = self._items
        for _ in range(min(count, len(items))):
            j = int(rng.integers(0, len(items)))
            items[j], items[-1] = items[-1], items[j]
            batch.append(items.pop())
        return batch

    def __len__(self) -> int:
        return len(self._items)


class FifoWorkset(Workset):
    """First-in-first-out removal (breadth-first-ish scheduling)."""

    def __init__(self) -> None:
        self._items: deque[Task] = deque()

    def add(self, task: Task) -> None:
        self._items.append(task)

    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        if not self._items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        return [self._items.popleft() for _ in range(min(count, len(self._items)))]

    def __len__(self) -> int:
        return len(self._items)


class ArrivalWorkset(Workset):
    """Arrival-order queue with a bounded-staleness selection window.

    Backs the fully asynchronous commit-order policy
    (:class:`~repro.runtime.policies.AsyncCommitOrder`, modelling
    Atos-style async task scheduling): tasks are kept in arrival order
    and each batch entry is drawn uniformly from the *oldest*
    ``window`` pending tasks, so no task can be overtaken by more than
    ``window - 1`` younger ones.  ``window=1`` degenerates to strict
    FIFO and consumes no randomness; ``window >= len`` degenerates to
    the uniform ``π_m`` draw of :class:`RandomWorkset` (in
    distribution).

    Aborted tasks re-enter through :meth:`add` and therefore rejoin at
    the *tail* — asynchronous resubmission, not priority restoration.
    """

    def __init__(self) -> None:
        self._items: deque[Task] = deque()

    def add(self, task: Task) -> None:
        self._items.append(task)

    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        """Strict arrival-order removal (the ``window=1`` special case)."""
        batch, _ = self.take_window(count, 1, rng)
        return batch

    def take_window(
        self, count: int, window: int, rng: np.random.Generator
    ) -> "tuple[list[Task], list[int]]":
        """Remove up to *count* tasks, each drawn from the head window.

        Returns ``(batch, draws)`` where ``draws[i]`` is the in-window
        index (0 = oldest pending) task ``i`` was taken from — the
        policy's per-step scheduling decision, recorded in traces so
        runs stay replayable.  ``window=1`` never touches *rng*.  The
        queue is a deque, so each removal costs the in-window offset
        (two short rotations), never a shift of the whole backlog.
        """
        if not self._items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        items = self._items
        k = min(count, len(items))
        if window == 1:
            return [items.popleft() for _ in range(k)], [0] * k
        draws = sample_window_draws(len(items), k, window, rng)
        batch: list[Task] = []
        for j in draws:
            j = int(j)
            items.rotate(-j)
            batch.append(items.popleft())
            items.rotate(j)
        return batch, [int(j) for j in draws]

    def __len__(self) -> int:
        return len(self._items)


class LifoWorkset(Workset):
    """Last-in-first-out removal (depth-first-ish, locality-friendly)."""

    def __init__(self) -> None:
        self._items: list[Task] = []

    def add(self, task: Task) -> None:
        self._items.append(task)

    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        if not self._items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        return [self._items.pop() for _ in range(min(count, len(self._items)))]

    def __len__(self) -> int:
        return len(self._items)
