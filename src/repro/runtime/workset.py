"""Unordered work-set implementations.

The paper treats only *unordered* algorithms: any pending task may execute
at any time, so the work-set is a bag.  The scheduler model picks active
tasks **uniformly at random** (§2); :class:`RandomWorkset` implements that
with O(1) swap-removal.  FIFO/LIFO variants are provided for scheduling-
policy comparisons (they bias which conflicts materialise, a knob the
ablation benchmarks exercise).
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

from repro.errors import WorksetEmptyError
from repro.runtime.task import Task

__all__ = ["Workset", "RandomWorkset", "FifoWorkset", "LifoWorkset"]


class Workset(abc.ABC):
    """A bag of pending tasks supporting batched removal."""

    @abc.abstractmethod
    def add(self, task: Task) -> None:
        """Insert one task."""

    @abc.abstractmethod
    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        """Remove and return up to *count* tasks (policy-defined order).

        The returned order is the speculative *commit order* of the batch.
        Returns fewer than *count* tasks when the set is nearly empty and
        raises :class:`WorksetEmptyError` when it is empty.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of pending tasks."""

    def add_all(self, tasks: "list[Task] | tuple[Task, ...]") -> None:
        """Insert many tasks."""
        for t in tasks:
            self.add(t)

    def __bool__(self) -> bool:
        return len(self) > 0


class RandomWorkset(Workset):
    """Uniformly random batched removal (the paper's scheduler model).

    Backing store is an array-backed list with swap-removal: removing a
    random element is O(1) and the batch order is a uniform ordered sample
    without replacement — exactly the ``π_m`` prefix distribution.
    """

    def __init__(self) -> None:
        self._items: list[Task] = []

    def add(self, task: Task) -> None:
        self._items.append(task)

    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        if not self._items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        batch: list[Task] = []
        items = self._items
        for _ in range(min(count, len(items))):
            j = int(rng.integers(0, len(items)))
            items[j], items[-1] = items[-1], items[j]
            batch.append(items.pop())
        return batch

    def __len__(self) -> int:
        return len(self._items)


class FifoWorkset(Workset):
    """First-in-first-out removal (breadth-first-ish scheduling)."""

    def __init__(self) -> None:
        self._items: deque[Task] = deque()

    def add(self, task: Task) -> None:
        self._items.append(task)

    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        if not self._items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        return [self._items.popleft() for _ in range(min(count, len(self._items)))]

    def __len__(self) -> int:
        return len(self._items)


class LifoWorkset(Workset):
    """Last-in-first-out removal (depth-first-ish, locality-friendly)."""

    def __init__(self) -> None:
        self._items: list[Task] = []

    def add(self, task: Task) -> None:
        self._items.append(task)

    def take(self, count: int, rng: np.random.Generator) -> list[Task]:
        if not self._items:
            raise WorksetEmptyError("take() from empty work-set")
        if count < 0:
            raise ValueError(f"cannot take {count} tasks")
        return [self._items.pop() for _ in range(min(count, len(self._items)))]

    def __len__(self) -> int:
        return len(self._items)
