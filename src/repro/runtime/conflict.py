"""Conflict-detection policies.

Given a speculative batch in commit order, a policy decides who commits and
who aborts under the paper's semantics: walking the batch in order, a task
commits iff it does not conflict with any *already committed* task of the
batch (an earlier task that itself aborted does not block later ones).

Two policies cover the two ways conflicts are specified:

* :class:`ItemLockPolicy` — Galois-style: tasks declare neighbourhoods of
  abstract data items (via the operator); a task conflicts with another iff
  their neighbourhoods intersect.  Commit-order lock acquisition realises
  the greedy-independent-set semantics without ever materialising the CC
  graph.
* :class:`ExplicitGraphPolicy` — model-style: conflicts are the edges of an
  explicit :class:`~repro.graph.CCGraph` whose nodes are the task payloads
  (used by synthetic CC-graph workloads and by the analytic experiments).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

from repro.errors import ConflictDetectionError
from repro.graph.ccgraph import CCGraph
from repro.runtime.task import Operator, Task

__all__ = ["ConflictPolicy", "ItemLockPolicy", "ExplicitGraphPolicy", "BatchOutcome"]


class BatchOutcome:
    """Result of conflict resolution for one speculative batch."""

    __slots__ = ("committed", "aborted")

    def __init__(self, committed: list[Task], aborted: list[Task]):
        self.committed = committed
        self.aborted = aborted

    @property
    def launched(self) -> int:
        return len(self.committed) + len(self.aborted)

    @property
    def conflict_ratio(self) -> float:
        """``r = aborts / launched`` (0 for an empty batch)."""
        n = self.launched
        return len(self.aborted) / n if n else 0.0

    def __repr__(self) -> str:
        return (
            f"BatchOutcome(committed={len(self.committed)}, "
            f"aborted={len(self.aborted)})"
        )


class ConflictPolicy(abc.ABC):
    """Resolves one speculative batch into committed and aborted tasks."""

    @abc.abstractmethod
    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Partition *batch* (in commit order) into committed / aborted."""


class ItemLockPolicy(ConflictPolicy):
    """Commit-order acquisition of abstract data-item locks.

    Walking the batch in order, each task attempts to mark every item of
    its neighbourhood; if any item is already held by a *committed* task of
    this batch, the task aborts and holds nothing.  Locks live only for the
    duration of one batch (the paper's steps are synchronous rounds).
    """

    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        held: set = set()
        committed: list[Task] = []
        aborted: list[Task] = []
        seen: set[int] = set()
        for task in batch:
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            items = set(operator.neighborhood(task))
            if held.isdisjoint(items):
                held |= items
                committed.append(task)
            else:
                aborted.append(task)
        return BatchOutcome(committed, aborted)


class ExplicitGraphPolicy(ConflictPolicy):
    """Conflicts given by edges of an explicit CC graph over payloads.

    Task payloads must be node ids of *graph*.  A task commits iff none of
    its graph neighbours belongs to an earlier committed task of the batch
    — the definition of §2.1 verbatim.
    """

    def __init__(self, graph: CCGraph):
        self._graph = graph

    @property
    def graph(self) -> CCGraph:
        return self._graph

    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        committed_nodes: set[int] = set()
        committed: list[Task] = []
        aborted: list[Task] = []
        seen: set[int] = set()
        for task in batch:
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            node = task.payload
            if not isinstance(node, int) or node not in self._graph:
                raise ConflictDetectionError(
                    f"task payload {node!r} is not a live node of the CC graph"
                )
            if committed_nodes.isdisjoint(self._graph.neighbors(node)):
                committed_nodes.add(node)
                committed.append(task)
            else:
                aborted.append(task)
        return BatchOutcome(committed, aborted)
