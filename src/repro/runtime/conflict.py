"""Conflict-detection policies.

Given a speculative batch in commit order, a policy decides who commits and
who aborts under the paper's semantics: walking the batch in order, a task
commits iff it does not conflict with any *already committed* task of the
batch (an earlier task that itself aborted does not block later ones).

Two policies cover the two ways conflicts are specified:

* :class:`ItemLockPolicy` — Galois-style: tasks declare neighbourhoods of
  abstract data items (via the operator); a task conflicts with another iff
  their neighbourhoods intersect.  Commit-order lock acquisition realises
  the greedy-independent-set semantics without ever materialising the CC
  graph.
* :class:`ExplicitGraphPolicy` — model-style: conflicts are the edges of an
  explicit :class:`~repro.graph.CCGraph` whose nodes are the task payloads
  (used by synthetic CC-graph workloads and by the analytic experiments).

Each policy also exposes :meth:`~ConflictPolicy.resolve_fast`, the
array-form resolution used when an engine runs with ``engine="fast"``: the
batch's commit/abort partition is computed by the vectorised kernels of
:mod:`repro.runtime.kernels` instead of per-task neighbour scans.  The
fast path is bit-identical to :meth:`~ConflictPolicy.resolve` (the
differential test suite enforces it); the base-class default simply falls
back to the reference walk so custom policies stay correct under either
engine mode.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from operator import itemgetter as _itemgetter

import numpy as np

from repro.errors import ConflictDetectionError
from repro.graph.ccgraph import CCGraph
from repro.runtime.kernels import greedy_commit_mask_from_slots, greedy_lock_mask
from repro.runtime.task import Operator, Task

__all__ = ["ConflictPolicy", "ItemLockPolicy", "ExplicitGraphPolicy", "BatchOutcome"]


class BatchOutcome:
    """Result of conflict resolution for one speculative batch.

    ``commit_slots`` / ``abort_slots`` optionally carry the batch
    positions (ascending) of the two partitions when the policy computed
    them anyway — mask-based fast paths do — sparing the engine a
    uid→position rebuild when it records the step.  ``None`` means the
    policy did not track positions; consumers must fall back.
    """

    __slots__ = ("committed", "aborted", "commit_slots", "abort_slots")

    def __init__(
        self,
        committed: list[Task],
        aborted: list[Task],
        commit_slots: "list[int] | None" = None,
        abort_slots: "list[int] | None" = None,
    ):
        self.committed = committed
        self.aborted = aborted
        self.commit_slots = commit_slots
        self.abort_slots = abort_slots

    @property
    def launched(self) -> int:
        return len(self.committed) + len(self.aborted)

    @property
    def conflict_ratio(self) -> float:
        """``r = aborts / launched`` (0 for an empty batch)."""
        n = self.launched
        return len(self.aborted) / n if n else 0.0

    def __repr__(self) -> str:
        return (
            f"BatchOutcome(committed={len(self.committed)}, "
            f"aborted={len(self.aborted)})"
        )


class ConflictPolicy(abc.ABC):
    """Resolves one speculative batch into committed and aborted tasks."""

    @abc.abstractmethod
    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Partition *batch* (in commit order) into committed / aborted."""

    def resolve_fast(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Vectorised resolution; must equal :meth:`resolve` bit for bit.

        Policies without an array formulation inherit this fallback to the
        reference walk, so ``engine="fast"`` is always safe to request.
        """
        return self.resolve(batch, operator)

    @staticmethod
    def _take(batch: Sequence[Task], idx: np.ndarray) -> list[Task]:
        """Gather ``batch`` rows at *idx* (C-speed via itemgetter)."""
        if idx.size == 0:
            return []
        if idx.size == 1:
            return [batch[int(idx[0])]]
        return list(_itemgetter(*idx.tolist())(batch))

    @classmethod
    def _split_by_mask(cls, batch: Sequence[Task], mask: np.ndarray) -> BatchOutcome:
        """Partition *batch* by a commit mask, preserving batch order."""
        commit_idx = np.flatnonzero(mask)
        abort_idx = np.flatnonzero(np.logical_not(mask))
        # flatnonzero yields ascending positions — identical to the
        # uid->position walk the engine would otherwise rebuild per step
        return BatchOutcome(
            cls._take(batch, commit_idx),
            cls._take(batch, abort_idx),
            commit_slots=commit_idx.tolist(),
            abort_slots=abort_idx.tolist(),
        )


class ItemLockPolicy(ConflictPolicy):
    """Commit-order acquisition of abstract data-item locks.

    Walking the batch in order, each task attempts to mark every item of
    its neighbourhood; if any item is already held by a *committed* task of
    this batch, the task aborts and holds nothing.  Locks live only for the
    duration of one batch (the paper's steps are synchronous rounds).
    """

    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        held: set = set()
        committed: list[Task] = []
        aborted: list[Task] = []
        seen: set[int] = set()
        for task in batch:
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            items = set(operator.neighborhood(task))
            if held.isdisjoint(items):
                held |= items
                committed.append(task)
            else:
                aborted.append(task)
        return BatchOutcome(committed, aborted)

    def resolve_fast(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Array-form lock resolution via :func:`greedy_lock_mask`.

        Neighbourhoods are still gathered per task (the operator API is
        inherently scalar), but items are densified once and the whole
        commit/abort partition falls out of one fixed-point iteration.
        """
        codes: dict = {}
        flat: list[int] = []
        ptr = np.zeros(len(batch) + 1, dtype=np.int64)
        seen: set[int] = set()
        for i, task in enumerate(batch):
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            for item in set(operator.neighborhood(task)):
                flat.append(codes.setdefault(item, len(codes)))
            ptr[i + 1] = len(flat)
        mask = greedy_lock_mask(
            ptr, np.asarray(flat, dtype=np.int64), num_items=len(codes)
        )
        return self._split_by_mask(batch, mask)


class ExplicitGraphPolicy(ConflictPolicy):
    """Conflicts given by edges of an explicit CC graph over payloads.

    Task payloads must be node ids of *graph*.  A task commits iff none of
    its graph neighbours belongs to an earlier committed task of the batch
    — the definition of §2.1 verbatim.
    """

    def __init__(self, graph: CCGraph):
        self._graph = graph

    @property
    def graph(self) -> CCGraph:
        return self._graph

    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        committed_nodes: set[int] = set()
        committed: list[Task] = []
        aborted: list[Task] = []
        seen: set[int] = set()
        for task in batch:
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            node = task.payload
            if not isinstance(node, int) or node not in self._graph:
                raise ConflictDetectionError(
                    f"task payload {node!r} is not a live node of the CC graph"
                )
            if committed_nodes.isdisjoint(self._graph.neighbors(node)):
                committed_nodes.add(node)
                committed.append(task)
            else:
                aborted.append(task)
        return BatchOutcome(committed, aborted)

    def resolve_fast(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Vectorised resolution via :func:`greedy_commit_mask_from_slots`.

        Uses the graph's memoised CSR view (:meth:`CCGraph.csr`) and its
        cached edge list, so on stationary workloads no per-step graph
        indexing happens at all: validate payloads in bulk, project the
        edge endpoints onto commit slots, run the kernel.

        Degenerate batches — non-int payloads, dead nodes, duplicate
        payloads (hence duplicate tasks; uids are process-unique) — fall
        back to the reference walk, which reproduces the reference
        behaviour exactly, errors included.
        """
        m = len(batch)
        if m == 0:
            return BatchOutcome([], [])
        snapshot = self._graph.csr()
        n = snapshot.num_nodes
        payloads = np.asarray([task.payload for task in batch])
        if payloads.dtype.kind != "i":  # floats/bools/objects: let resolve() rule
            return self.resolve(batch, operator)
        if snapshot.ids_dense:
            if int(payloads.min()) < 0 or int(payloads.max()) >= n:
                return self.resolve(batch, operator)  # dead node: exact error
            idx = payloads.astype(np.int64, copy=False)
        else:
            index = snapshot.index_of
            try:
                idx = np.fromiter(
                    (index[p] for p in payloads.tolist()), dtype=np.int64, count=m
                )
            except KeyError:
                return self.resolve(batch, operator)
        pos = np.full(n, -1, dtype=np.int64)
        pos[idx] = np.arange(m, dtype=np.int64)
        if int(np.count_nonzero(pos >= 0)) != m:
            return self.resolve(batch, operator)  # duplicate payload nodes
        u, v = snapshot.edge_list
        pu = pos[u]
        pv = pos[v]
        if m != n:  # full-graph batches have every edge in play: skip filter
            both = np.flatnonzero((pu >= 0) & (pv >= 0))
            pu = pu[both]
            pv = pv[both]
        mask = greedy_commit_mask_from_slots(
            np.maximum(pu, pv), np.minimum(pu, pv), m, checked=False
        )
        return self._split_by_mask(batch, mask)
