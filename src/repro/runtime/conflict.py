"""Conflict-detection policies.

Given a speculative batch in commit order, a policy decides who commits and
who aborts under the paper's semantics: walking the batch in order, a task
commits iff it does not conflict with any *already committed* task of the
batch (an earlier task that itself aborted does not block later ones).

Two policies cover the two ways conflicts are specified:

* :class:`ItemLockPolicy` — Galois-style: tasks declare neighbourhoods of
  abstract data items (via the operator); a task conflicts with another iff
  their neighbourhoods intersect.  Commit-order lock acquisition realises
  the greedy-independent-set semantics without ever materialising the CC
  graph.
* :class:`ExplicitGraphPolicy` — model-style: conflicts are the edges of an
  explicit :class:`~repro.graph.CCGraph` whose nodes are the task payloads
  (used by synthetic CC-graph workloads and by the analytic experiments).

Each policy also exposes :meth:`~ConflictPolicy.resolve_fast`, the
array-form resolution used when an engine runs with ``engine="fast"``: the
batch's commit/abort partition is computed by the vectorised kernels of
:mod:`repro.runtime.kernels` instead of per-task neighbour scans.  The
fast path is bit-identical to :meth:`~ConflictPolicy.resolve` (the
differential test suite enforces it); the base-class default simply falls
back to the reference walk so custom policies stay correct under either
engine mode.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from operator import itemgetter as _itemgetter

import numpy as np

from repro.errors import ConflictDetectionError
from repro.graph.ccgraph import CCGraph
from repro.runtime.kernels import greedy_commit_mask_from_slots, greedy_lock_mask
from repro.runtime.task import Operator, Task

__all__ = ["ConflictPolicy", "ItemLockPolicy", "ExplicitGraphPolicy", "BatchOutcome"]


class BatchOutcome:
    """Result of conflict resolution for one speculative batch.

    ``commit_slots`` / ``abort_slots`` optionally carry the batch
    positions (ascending) of the two partitions when the policy computed
    them anyway — mask-based fast paths do — sparing the engine a
    uid→position rebuild when it records the step.  ``None`` means the
    policy did not track positions; consumers must fall back.  Index
    arrays are accepted as-is and materialised into lists only on first
    access (runs without a recorder never read them).
    """

    __slots__ = ("committed", "aborted", "_commit_slots", "_abort_slots")

    def __init__(
        self,
        committed: list[Task],
        aborted: list[Task],
        commit_slots: "list[int] | np.ndarray | None" = None,
        abort_slots: "list[int] | np.ndarray | None" = None,
    ):
        self.committed = committed
        self.aborted = aborted
        self._commit_slots = commit_slots
        self._abort_slots = abort_slots

    @property
    def commit_slots(self) -> "list[int] | None":
        slots = self._commit_slots
        if slots is not None and not isinstance(slots, list):
            slots = self._commit_slots = slots.tolist()
        return slots

    @property
    def abort_slots(self) -> "list[int] | None":
        slots = self._abort_slots
        if slots is not None and not isinstance(slots, list):
            slots = self._abort_slots = slots.tolist()
        return slots

    @property
    def launched(self) -> int:
        return len(self.committed) + len(self.aborted)

    @property
    def conflict_ratio(self) -> float:
        """``r = aborts / launched`` (0 for an empty batch)."""
        n = self.launched
        return len(self.aborted) / n if n else 0.0

    def __repr__(self) -> str:
        return (
            f"BatchOutcome(committed={len(self.committed)}, "
            f"aborted={len(self.aborted)})"
        )


class ConflictPolicy(abc.ABC):
    """Resolves one speculative batch into committed and aborted tasks."""

    @abc.abstractmethod
    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Partition *batch* (in commit order) into committed / aborted."""

    def resolve_fast(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Vectorised resolution; must equal :meth:`resolve` bit for bit.

        Policies without an array formulation inherit this fallback to the
        reference walk, so ``engine="fast"`` is always safe to request.
        """
        return self.resolve(batch, operator)

    @staticmethod
    def _take(batch: Sequence[Task], idx: np.ndarray) -> list[Task]:
        """Gather ``batch`` rows at *idx* (C-speed via itemgetter)."""
        if idx.size == 0:
            return []
        if idx.size == 1:
            return [batch[int(idx[0])]]
        return list(_itemgetter(*idx.tolist())(batch))

    @classmethod
    def _split_by_mask(cls, batch: Sequence[Task], mask: np.ndarray) -> BatchOutcome:
        """Partition *batch* by a commit mask, preserving batch order."""
        commit_idx = np.flatnonzero(mask)
        abort_idx = np.flatnonzero(np.logical_not(mask))
        # flatnonzero yields ascending positions — identical to the
        # uid->position walk the engine would otherwise rebuild per step
        return BatchOutcome(
            cls._take(batch, commit_idx),
            cls._take(batch, abort_idx),
            commit_slots=commit_idx,
            abort_slots=abort_idx,
        )


class ItemLockPolicy(ConflictPolicy):
    """Commit-order acquisition of abstract data-item locks.

    Walking the batch in order, each task attempts to mark every item of
    its neighbourhood; if any item is already held by a *committed* task of
    this batch, the task aborts and holds nothing.  Locks live only for the
    duration of one batch (the paper's steps are synchronous rounds).
    """

    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        held: set = set()
        committed: list[Task] = []
        aborted: list[Task] = []
        seen: set[int] = set()
        for task in batch:
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            items = set(operator.neighborhood(task))
            if held.isdisjoint(items):
                held |= items
                committed.append(task)
            else:
                aborted.append(task)
        return BatchOutcome(committed, aborted)

    def resolve_fast(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Array-form lock resolution via :func:`greedy_lock_mask`.

        Neighbourhoods are still gathered per task (the operator API is
        inherently scalar), but items are densified once and the whole
        commit/abort partition falls out of one fixed-point iteration.
        """
        codes: dict = {}
        flat: list[int] = []
        ptr = np.zeros(len(batch) + 1, dtype=np.int64)
        seen: set[int] = set()
        for i, task in enumerate(batch):
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            for item in set(operator.neighborhood(task)):
                flat.append(codes.setdefault(item, len(codes)))
            ptr[i + 1] = len(flat)
        mask = greedy_lock_mask(
            ptr, np.asarray(flat, dtype=np.int64), num_items=len(codes)
        )
        return self._split_by_mask(batch, mask)


class ExplicitGraphPolicy(ConflictPolicy):
    """Conflicts given by edges of an explicit CC graph over payloads.

    Task payloads must be node ids of *graph*.  A task commits iff none of
    its graph neighbours belongs to an earlier committed task of the batch
    — the definition of §2.1 verbatim.

    ``csr_deltas=True`` switches the fast path from the memoised
    full-snapshot CSR (:meth:`CCGraph.csr`, invalidated by any mutation)
    to the incrementally-maintained
    :class:`~repro.graph.ccgraph.ConflictDeltaView`, which absorbs the
    morphs of commits and new work in O(delta).  Resolution results are
    identical either way; the flag only moves where the projection state
    comes from.  Workloads set it when their work-set advertises
    ``incremental`` maintenance (see
    :class:`~repro.runtime.active_set.ActiveSet`).
    """

    def __init__(self, graph: CCGraph, *, csr_deltas: bool = False):
        self._graph = graph
        self._csr_deltas = bool(csr_deltas)

    @property
    def graph(self) -> CCGraph:
        return self._graph

    def resolve(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        committed_nodes: set[int] = set()
        committed: list[Task] = []
        aborted: list[Task] = []
        seen: set[int] = set()
        for task in batch:
            if task.uid in seen:
                raise ConflictDetectionError(f"task {task.uid} appears twice in batch")
            seen.add(task.uid)
            node = task.payload
            if not isinstance(node, int) or node not in self._graph:
                raise ConflictDetectionError(
                    f"task payload {node!r} is not a live node of the CC graph"
                )
            if committed_nodes.isdisjoint(self._graph.neighbors(node)):
                committed_nodes.add(node)
                committed.append(task)
            else:
                aborted.append(task)
        return BatchOutcome(committed, aborted)

    def resolve_fast(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Vectorised resolution via :func:`greedy_commit_mask_from_slots`.

        Uses the graph's memoised CSR view (:meth:`CCGraph.csr`) and its
        cached edge list, so on stationary workloads no per-step graph
        indexing happens at all: validate payloads in bulk, project the
        edge endpoints onto commit slots, run the kernel.

        Degenerate batches — non-int payloads, dead nodes, duplicate
        payloads (hence duplicate tasks; uids are process-unique) — fall
        back to the reference walk, which reproduces the reference
        behaviour exactly, errors included.
        """
        m = len(batch)
        if m == 0:
            return BatchOutcome([], [])
        if self._csr_deltas:
            return self._resolve_fast_delta(batch, operator)
        snapshot = self._graph.csr()
        n = snapshot.num_nodes
        payloads = np.asarray([task.payload for task in batch])
        if payloads.dtype.kind != "i":  # floats/bools/objects: let resolve() rule
            return self.resolve(batch, operator)
        if snapshot.ids_dense:
            if int(payloads.min()) < 0 or int(payloads.max()) >= n:
                return self.resolve(batch, operator)  # dead node: exact error
            idx = payloads.astype(np.int64, copy=False)
        else:
            index = snapshot.index_of
            try:
                idx = np.fromiter(
                    (index[p] for p in payloads.tolist()), dtype=np.int64, count=m
                )
            except KeyError:
                return self.resolve(batch, operator)
        pos = np.full(n, -1, dtype=np.int64)
        pos[idx] = np.arange(m, dtype=np.int64)
        if int(np.count_nonzero(pos >= 0)) != m:
            return self.resolve(batch, operator)  # duplicate payload nodes
        u, v = snapshot.edge_list
        pu = pos[u]
        pv = pos[v]
        if m != n:  # full-graph batches have every edge in play: skip filter
            both = np.flatnonzero((pu >= 0) & (pv >= 0))
            pu = pu[both]
            pv = pv[both]
        mask = greedy_commit_mask_from_slots(
            np.maximum(pu, pv), np.minimum(pu, pv), m, checked=False
        )
        return self._split_by_mask(batch, mask)

    def _resolve_fast_delta(self, batch: Sequence[Task], operator: Operator) -> BatchOutcome:
        """Fast resolution over the incremental conflict view.

        Identical to the snapshot-based fast path except the id → slot
        projection and edge arrays come from
        :meth:`CCGraph.conflict_view`, so a morphing graph costs O(delta)
        per step instead of a snapshot rebuild.  The same degenerate
        batches (non-int payloads, dead nodes, duplicates) fall back to
        the reference walk; stale edges are filtered out by the live-slot
        mask exactly like out-of-batch edges.
        """
        m = len(batch)
        view = self._graph.conflict_view()
        payloads = np.asarray([task.payload for task in batch])
        if payloads.dtype.kind != "i":  # floats/bools/objects: let resolve() rule
            return self.resolve(batch, operator)
        idx = view.project(payloads)
        if idx is None:
            return self.resolve(batch, operator)  # dead/unknown node: exact error
        n = view.num_slots
        pos = np.full(n, -1, dtype=np.int64)
        pos[idx] = np.arange(m, dtype=np.int64)
        if int(np.count_nonzero(pos >= 0)) != m:
            return self.resolve(batch, operator)  # duplicate payload nodes
        u, v = view.edge_arrays()
        pu = pos[u]
        pv = pos[v]
        both = np.flatnonzero((pu >= 0) & (pv >= 0))
        pu = pu[both]
        pv = pv[both]
        mask = greedy_commit_mask_from_slots(
            np.maximum(pu, pv), np.minimum(pu, pv), m, checked=False
        )
        return self._split_by_mask(batch, mask)
