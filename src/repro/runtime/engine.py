"""The optimistic parallelization engine (unordered commit order).

Discrete-time simulator of a Galois-style speculative runtime, following
the paper's model (§2) exactly:

1. the controller proposes an allocation ``m_t``;
2. ``min(m_t, |workset|)`` tasks are drawn from the work-set (the draw
   order is the commit order ``π_m``);
3. the conflict policy partitions the batch into committed and aborted
   tasks (greedy-independent-set semantics);
4. committed tasks run their operator, possibly creating new tasks
   (graph morphs); aborted tasks are rolled back into the work-set;
5. the controller observes the realised conflict ratio ``r_t``.

All tasks take unit time (the paper's assumption), so one loop iteration
is one "temporal step" and ``m_t`` is the number of processors in use.

The step pipeline itself lives in :mod:`repro.runtime.core`;
:class:`OptimisticEngine` is the core :class:`~repro.runtime.core.Engine`
bound to the :class:`~repro.runtime.policies.UnorderedCommitOrder`
policy, keeping its historical constructor signature.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.runtime.conflict import ConflictPolicy
from repro.runtime.core import ENGINE_ENV_VAR, Engine, resolve_engine_mode
from repro.runtime.policies import UnorderedCommitOrder
from repro.runtime.stats import StepStats
from repro.runtime.task import Operator
from repro.runtime.workset import Workset

if TYPE_CHECKING:  # avoid runtime<->control import cycle; engine only types it
    from repro.control.base import Controller

__all__ = ["OptimisticEngine", "CCEngine", "resolve_engine_mode", "ENGINE_ENV_VAR"]


class OptimisticEngine(Engine):
    """Binds work-set, operator, conflict policy and controller.

    Parameters
    ----------
    workset, operator, policy:
        The workload: pending tasks, their semantics, and how conflicts
        among a speculative batch are detected.
    controller:
        Decides ``m_t`` each step from past observations (any
        :class:`~repro.control.base.Controller`).
    seed:
        RNG seed / generator for task selection.
    step_hook:
        Optional callable invoked as ``step_hook(engine, stats)`` after
        every step — used by the experiments to capture CC-graph snapshots
        or inject workload phase changes.
    cost_model:
        Optional :class:`~repro.runtime.costs.CostModel` pricing commits
        and aborts; totals accumulate in :attr:`costs`.  Defaults to the
        paper's unit costs.
    recorder, metrics, profiler:
        Optional :class:`~repro.obs.TraceRecorder` /
        :class:`~repro.obs.MetricsRegistry` /
        :class:`~repro.obs.SpanProfiler`.  When omitted, the engine
        attaches to the process-wide active recorder/registry/profiler if
        one is set (see :func:`repro.obs.recording`,
        :func:`repro.obs.profiling`), else records nothing.
    engine:
        ``"reference"`` (per-task Python walk) or ``"fast"`` (vectorised
        kernels, see :mod:`repro.runtime.kernels`).  ``None`` defers to
        the ``REPRO_ENGINE`` environment variable.  The two paths are
        bit-identical — same seeds give the same commits, aborts, and
        observability traces.
    """

    def __init__(
        self,
        workset: Workset,
        operator: Operator,
        policy: ConflictPolicy,
        controller: "Controller",
        seed=None,
        step_hook: "Callable[[OptimisticEngine, StepStats], None] | None" = None,
        cost_model=None,
        recorder=None,
        metrics=None,
        profiler=None,
        engine: "str | None" = None,
    ) -> None:
        self.policy = policy
        super().__init__(
            workset,
            operator,
            controller,
            UnorderedCommitOrder(policy),
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            profiler=profiler,
            engine=engine,
        )


class CCEngine(OptimisticEngine):
    """Deprecated pre-rename alias of :class:`OptimisticEngine`.

    Kept so code written against the original class name keeps running;
    instantiation raises a :class:`DeprecationWarning`.  New code should
    construct :class:`OptimisticEngine` (or go through
    :func:`repro.api.run` with a :class:`repro.config.RunConfig`).
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "CCEngine is deprecated; use OptimisticEngine "
            "(or repro.api.run with a RunConfig)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
