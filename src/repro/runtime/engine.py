"""The optimistic parallelization engine.

Discrete-time simulator of a Galois-style speculative runtime, following
the paper's model (§2) exactly:

1. the controller proposes an allocation ``m_t``;
2. ``min(m_t, |workset|)`` tasks are drawn from the work-set (the draw
   order is the commit order ``π_m``);
3. the conflict policy partitions the batch into committed and aborted
   tasks (greedy-independent-set semantics);
4. committed tasks run their operator, possibly creating new tasks
   (graph morphs); aborted tasks are rolled back into the work-set;
5. the controller observes the realised conflict ratio ``r_t``.

All tasks take unit time (the paper's assumption), so one loop iteration
is one "temporal step" and ``m_t`` is the number of processors in use.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RuntimeEngineError

if TYPE_CHECKING:  # avoid runtime<->control import cycle; engine only types it
    from repro.control.base import Controller
from repro.runtime.conflict import ConflictPolicy
from repro.runtime.stats import RunResult, StepStats
from repro.runtime.task import Operator, Task
from repro.runtime.workset import Workset
from repro.utils.rng import ensure_rng

__all__ = ["OptimisticEngine", "resolve_engine_mode"]

#: environment variable selecting the default conflict-resolution path
ENGINE_ENV_VAR = "REPRO_ENGINE"
_ENGINE_MODES = ("reference", "fast")


def resolve_engine_mode(engine: "str | None") -> str:
    """Normalise an ``engine=`` argument against the ``REPRO_ENGINE`` env var.

    ``None`` defers to the environment (default ``"reference"``); anything
    else must be ``"reference"`` or ``"fast"``.  Both engines accept the
    same workloads and produce bit-identical results — ``"fast"`` resolves
    conflicts with the vectorised kernels of :mod:`repro.runtime.kernels`.
    """
    mode = engine if engine is not None else os.environ.get(ENGINE_ENV_VAR, "reference")
    mode = str(mode).strip().lower() or "reference"
    if mode not in _ENGINE_MODES:
        raise RuntimeEngineError(
            f"unknown engine mode {mode!r}; expected one of {_ENGINE_MODES}"
        )
    return mode


class OptimisticEngine:
    """Binds work-set, operator, conflict policy and controller.

    Parameters
    ----------
    workset, operator, policy:
        The workload: pending tasks, their semantics, and how conflicts
        among a speculative batch are detected.
    controller:
        Decides ``m_t`` each step from past observations (any
        :class:`~repro.control.base.Controller`).
    seed:
        RNG seed / generator for task selection.
    step_hook:
        Optional callable invoked as ``step_hook(engine, stats)`` after
        every step — used by the experiments to capture CC-graph snapshots
        or inject workload phase changes.
    cost_model:
        Optional :class:`~repro.runtime.costs.CostModel` pricing commits
        and aborts; totals accumulate in :attr:`costs`.  Defaults to the
        paper's unit costs.
    recorder, metrics, profiler:
        Optional :class:`~repro.obs.TraceRecorder` /
        :class:`~repro.obs.MetricsRegistry` /
        :class:`~repro.obs.SpanProfiler`.  When omitted, the engine
        attaches to the process-wide active recorder/registry/profiler if
        one is set (see :func:`repro.obs.recording`,
        :func:`repro.obs.profiling`), else records nothing.
    engine:
        ``"reference"`` (per-task Python walk) or ``"fast"`` (vectorised
        kernels, see :mod:`repro.runtime.kernels`).  ``None`` defers to
        the ``REPRO_ENGINE`` environment variable.  The two paths are
        bit-identical — same seeds give the same commits, aborts, and
        observability traces.
    """

    def __init__(
        self,
        workset: Workset,
        operator: Operator,
        policy: ConflictPolicy,
        controller: "Controller",
        seed=None,
        step_hook: "Callable[[OptimisticEngine, StepStats], None] | None" = None,
        cost_model=None,
        recorder=None,
        metrics=None,
        profiler=None,
        engine: "str | None" = None,
    ) -> None:
        from repro.obs.metrics import active_metrics
        from repro.obs.recorder import active_recorder, describe_seed
        from repro.obs.spans import NULL_SPAN, active_profiler
        from repro.runtime.costs import CostTotals, UnitCostModel

        self.workset = workset
        self.operator = operator
        self.policy = policy
        self.controller = controller
        self.engine_mode = resolve_engine_mode(engine)
        self.rng: np.random.Generator = ensure_rng(seed)
        self.step_hook = step_hook
        self.cost_model = cost_model or UnitCostModel()
        self.costs = CostTotals()
        self.result = RunResult()
        # per-task abort counts: starvation diagnostics (optimistic
        # runtimes can in principle retry one unlucky task forever)
        self.retry_counts: dict[int, int] = {}
        self._step = 0
        self.recorder = recorder if recorder is not None else active_recorder()
        registry = metrics if metrics is not None else active_metrics()
        self.metrics = None if registry is None else registry.scope("engine")
        self.profiler = profiler if profiler is not None else active_profiler()
        # stashed no-op span: the disabled path costs one None test plus
        # entering this shared stateless context manager per phase
        self._null_span = NULL_SPAN
        if self.recorder is not None or self.metrics is not None:
            controller.bind_observability(
                self.recorder,
                None if registry is None else registry.scope("controller"),
            )
        if self.recorder is not None:
            self.recorder.emit(
                "run_start",
                step=self._step,
                engine=type(self).__name__,
                policy=type(policy).__name__,
                seed=describe_seed(seed),
                workset_size=len(workset),
                controller=controller.describe(),
            )

    # ------------------------------------------------------------------
    def step(self) -> StepStats:
        """Execute one temporal step; raises if the work-set is empty."""
        before = len(self.workset)
        if before == 0:
            raise RuntimeEngineError("cannot step: work-set is empty")
        prof = self.profiler
        null = self._null_span
        with prof.step_span(self._step) if prof is not None else null:
            with prof.span("controller.decide") if prof is not None else null:
                requested = int(self.controller.propose())
            if requested < 1:
                raise RuntimeEngineError(
                    f"controller proposed m={requested}; allocations must be >= 1"
                )
            with prof.span("select") if prof is not None else null:
                batch = self.workset.take(requested, self.rng)
                if self.recorder is not None:
                    self.recorder.emit(
                        "select",
                        step=self._step,
                        requested=requested,
                        taken=len(batch),
                        workset_before=before,
                    )
            with prof.span("resolve") if prof is not None else null:
                if self.engine_mode == "fast":
                    outcome = self.policy.resolve_fast(batch, self.operator)
                else:
                    outcome = self.policy.resolve(batch, self.operator)
            with prof.span("commit") if prof is not None else null:
                for task in outcome.committed:
                    new_tasks = self.operator.apply(task)
                    if new_tasks:
                        self.workset.add_all(new_tasks)
                for task in outcome.aborted:
                    self.operator.on_abort(task)
                    self.retry_counts[task.uid] = self.retry_counts.get(task.uid, 0) + 1
                    self.workset.add(task)  # rolled back, retried later
                for task in outcome.committed:
                    self.retry_counts.pop(task.uid, None)  # made it; stop tracking
                self.cost_model.charge(self.costs, outcome.committed, outcome.aborted)
                stats = StepStats(
                    step=self._step,
                    requested=requested,
                    launched=outcome.launched,
                    committed=len(outcome.committed),
                    aborted=len(outcome.aborted),
                    workset_before=before,
                    workset_after=len(self.workset),
                )
                if self.recorder is not None:
                    # commit order recorded as positions within the drawn
                    # batch: deterministic under the seed, unlike
                    # process-global task uids.  Policies that resolve by
                    # slot hand the positions over directly; otherwise fall
                    # back to a uid->position map.
                    if outcome.commit_slots is not None:
                        commit_positions = outcome.commit_slots
                        abort_positions = outcome.abort_slots
                    else:
                        position = {t.uid: i for i, t in enumerate(batch)}
                        commit_positions = [position[t.uid] for t in outcome.committed]
                        abort_positions = [position[t.uid] for t in outcome.aborted]
                    self.recorder.emit(
                        "step",
                        commit_positions=commit_positions,
                        abort_positions=abort_positions,
                        **stats.as_dict(),
                    )
                if self.metrics is not None:
                    self.metrics.counter("steps").inc()
                    self.metrics.counter("commits").inc(stats.committed)
                    self.metrics.counter("aborts").inc(stats.aborted)
                    self.metrics.counter("launched").inc(stats.launched)
                    self.metrics.histogram("conflict_ratio").observe(stats.conflict_ratio)
                    self.metrics.gauge("workset").set(stats.workset_after)
                    self.metrics.gauge("m").set(requested)
            self._step += 1
            with prof.span("controller.update") if prof is not None else null:
                self.controller.observe(stats.conflict_ratio, outcome.launched)
        self.result.append(stats)
        if self.step_hook is not None:
            self.step_hook(self, stats)
        return stats

    def run(self, max_steps: int | None = None) -> RunResult:
        """Step until the work-set drains (or *max_steps* is reached)."""
        if max_steps is not None and max_steps < 0:
            raise RuntimeEngineError(f"max_steps must be >= 0, got {max_steps}")
        while len(self.workset) > 0:
            if max_steps is not None and self._step >= max_steps:
                break
            self.step()
        if self.recorder is not None:
            self.recorder.emit(
                "run_end",
                step=self._step,
                steps=len(self.result),
                committed=self.result.total_committed,
                aborted=self.result.total_aborted,
                workset=len(self.workset),
            )
        return self.result

    @property
    def steps_executed(self) -> int:
        return self._step

    def max_pending_retries(self) -> int:
        """Largest abort count among tasks that have not yet committed.

        A starvation indicator: with the random-permutation scheduler each
        pending task eventually wins its conflicts w.p. 1, but heavy
        contention shows up here long before it shows in the ratios.
        """
        return max(self.retry_counts.values(), default=0)
