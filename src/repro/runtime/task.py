"""Task and operator abstractions of the optimistic runtime.

A *task* is one unit of speculative work (one work-set iteration in the
amorphous-data-parallelism formulation).  An *operator* gives tasks their
semantics:

* :meth:`Operator.neighborhood` — the set of abstract *data items* the task
  will touch.  Two concurrently launched tasks conflict iff their
  neighbourhoods intersect; this is how Galois-style runtimes detect
  conflicts without knowing the CC graph up front.
* :meth:`Operator.apply` — executed once the task commits; returns newly
  created tasks (graph morphs may create more work, e.g. new bad
  triangles).

Tasks carry opaque payloads owned by the application; the runtime never
inspects them.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from itertools import count

__all__ = ["Task", "Operator", "CallbackOperator"]

_task_ids = count()


@dataclass(frozen=True)
class Task:
    """One speculative unit of work.

    ``uid`` is process-unique and assigned automatically; ``payload`` is the
    application's task state (a graph node id, a triangle, a component, …).
    """

    payload: object
    uid: int = field(default_factory=lambda: next(_task_ids))

    def __repr__(self) -> str:
        return f"Task(uid={self.uid}, payload={self.payload!r})"


class Operator(abc.ABC):
    """Application semantics for tasks (see module docstring)."""

    @abc.abstractmethod
    def neighborhood(self, task: Task) -> Iterable[Hashable]:
        """Data items *task* will read or write.

        Must be computable **before** :meth:`apply` — the runtime acquires
        the items speculatively, in commit order, to detect conflicts.
        Returning an empty iterable means the task conflicts with nothing.
        """

    @abc.abstractmethod
    def apply(self, task: Task) -> list[Task]:
        """Commit *task*, mutating application state; return new tasks.

        Only called for tasks that won their conflicts, so the application
        state is consistent at entry.  Must be deterministic given the
        state (the runtime may replay aborted tasks at later steps).
        """

    def apply_batch(self, tasks: "list[Task]") -> list[Task]:
        """Commit *tasks* in order; return every new task, in creation order.

        The default loops :meth:`apply` and flattens the results, so it
        is exactly equivalent to the engine's per-task commit walk.
        Operators with a cheaper bulk formulation (e.g. a workload whose
        commit effect is uniform across the batch) may override it, but
        must preserve that equivalence bit for bit — the incremental
        selection backend routes commits through here and the
        differential suite compares its traces against the per-task
        path.
        """
        new_tasks: list[Task] = []
        for task in tasks:
            created = self.apply(task)
            if created:
                new_tasks.extend(created)
        return new_tasks

    def on_abort(self, task: Task) -> None:
        """Hook invoked when *task* aborts (for rollback accounting).

        Speculative state is discarded by construction (``apply`` never ran),
        so the default is a no-op; applications override it to count
        rollback cost.
        """


class CallbackOperator(Operator):
    """Adapter building an :class:`Operator` from two callables.

    Convenient for synthetic workloads and tests::

        op = CallbackOperator(
            neighborhood=lambda t: {t.payload},
            apply=lambda t: [],
        )
    """

    def __init__(self, neighborhood, apply, on_abort=None):
        self._neighborhood = neighborhood
        self._apply = apply
        self._on_abort = on_abort

    def neighborhood(self, task: Task) -> Iterable[Hashable]:
        return self._neighborhood(task)

    def apply(self, task: Task) -> list[Task]:
        return self._apply(task)

    def on_abort(self, task: Task) -> None:
        if self._on_abort is not None:
            self._on_abort(task)
