"""Task cost models — relaxing the paper's unit-cost assumption.

§2 assumes "the time taken to process conflicting and non-conflicting
nodes is the same", while §2.1 concedes that "for some algorithms the
roll-back work can be quite resource-consuming".  A :class:`CostModel`
prices each commit and each abort; the engine accumulates the totals so
the COSTS experiment can ask how the optimal target ρ* shifts when
rollbacks stop being free.

The temporal structure (one batch per step) is unchanged — costs are an
accounting overlay, in units of "task executions".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeEngineError
from repro.runtime.task import Task

__all__ = ["CostModel", "UnitCostModel", "ScaledAbortCostModel", "CostTotals"]


@dataclass
class CostTotals:
    """Accumulated execution cost of a run, in task-execution units."""

    commit_cost: float = 0.0
    abort_cost: float = 0.0

    @property
    def total(self) -> float:
        return self.commit_cost + self.abort_cost

    @property
    def wasted_fraction(self) -> float:
        """Cost-weighted waste: abort cost over total cost."""
        return self.abort_cost / self.total if self.total else 0.0


class CostModel:
    """Prices one committed / aborted execution of a task.

    Subclass and override; both methods default to the paper's unit cost.
    """

    def commit_cost(self, task: Task) -> float:
        """Cost of executing *task* to commit."""
        return 1.0

    def abort_cost(self, task: Task) -> float:
        """Cost of executing *task* speculatively and rolling it back."""
        return 1.0

    def charge(self, totals: CostTotals, committed: list[Task], aborted: list[Task]) -> None:
        """Accumulate one batch into *totals*."""
        for task in committed:
            totals.commit_cost += self.commit_cost(task)
        for task in aborted:
            totals.abort_cost += self.abort_cost(task)


class UnitCostModel(CostModel):
    """The paper's assumption: commits and aborts both cost 1."""

    def charge(self, totals: CostTotals, committed: list[Task], aborted: list[Task]) -> None:
        """Batched unit charging: two additions instead of two task walks.

        Exact — integer-valued float accumulation is associative below
        2**53 — but only when the per-task prices really are the unit
        defaults; a subclass that overrides one falls back to the walk.
        """
        cls = type(self)
        if cls.commit_cost is CostModel.commit_cost and cls.abort_cost is CostModel.abort_cost:
            totals.commit_cost += float(len(committed))
            totals.abort_cost += float(len(aborted))
        else:
            super().charge(totals, committed, aborted)


class ScaledAbortCostModel(CostModel):
    """Aborts cost ``abort_factor`` × a unit commit.

    ``abort_factor > 1`` models expensive rollback (undo logs, cache
    pollution); ``< 1`` models early conflict detection that kills
    speculation before much work is done.
    """

    def __init__(self, abort_factor: float):
        if abort_factor < 0:
            raise RuntimeEngineError(
                f"abort cost factor must be >= 0, got {abort_factor}"
            )
        self.abort_factor = float(abort_factor)

    def abort_cost(self, task: Task) -> float:
        return self.abort_factor
