"""Ready-made CC-graph workloads for the engine.

Three ways of turning a :class:`~repro.graph.CCGraph` into an engine
workload, matching the evaluation setups of §4:

* :class:`ReplayGraphWorkload` — **stationary**: tasks are drawn from the
  full graph every step and always returned, so the environment's
  ``r̄(m)`` never changes.  This is the §4.1 validation setup ("a random CC
  graph of fixed average degree is taken and the controller runs on it"):
  the controller faces a fixed unknown curve and must converge to ``μ``.
* :class:`ConsumingGraphWorkload` — committed nodes leave the graph, so
  parallelism grows as conflicts disappear (the draining end-game of a real
  run).
* :class:`RegeneratingGraphWorkload` — committed nodes are replaced by
  fresh nodes wired to ``d`` random survivors; ``n`` and ``d`` stay roughly
  constant, giving a *dynamic but statistically stationary* environment —
  the closest synthetic analogue of a long-running irregular application
  in steady state.

Each workload exposes ``workset``, ``operator`` and ``policy`` and a
:meth:`build_engine` convenience.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RuntimeEngineError

if TYPE_CHECKING:  # avoid runtime<->control import cycle
    from repro.control.base import Controller
from repro.graph.ccgraph import CCGraph
from repro.runtime.active_set import ActiveSet
from repro.runtime.conflict import ConflictPolicy, ExplicitGraphPolicy
from repro.runtime.core import resolve_select_backend
from repro.runtime.engine import OptimisticEngine
from repro.runtime.task import Operator, Task
from repro.runtime.workset import RandomWorkset, Workset
from repro.utils.rng import ensure_rng

__all__ = [
    "GraphWorkloadBase",
    "ReplayGraphWorkload",
    "ConsumingGraphWorkload",
    "RegeneratingGraphWorkload",
]


class _GraphOperator(Operator):
    """Operator whose commit effect is delegated to the owning workload."""

    def __init__(self, workload: "GraphWorkloadBase"):
        self._workload = workload

    def neighborhood(self, task: Task):
        return self._workload.graph.neighbors(task.payload)

    def apply(self, task: Task) -> list[Task]:
        return self._workload.on_commit(task)

    def apply_batch(self, tasks: "list[Task]") -> list[Task]:
        return self._workload.on_commit_batch(tasks)


class GraphWorkloadBase:
    """Common plumbing: graph, work-set, explicit-graph conflict policy.

    The work-set comes from the selection backend: ``select=`` names a
    built-in backend (``"workset"`` for the reference
    :class:`~repro.runtime.workset.RandomWorkset`, ``"incremental"`` for
    the dense :class:`~repro.runtime.active_set.ActiveSet`; ``None``
    defers to the ``REPRO_SELECT`` environment variable), or pass a
    ready-made instance via ``workset=`` (how registry-named third-party
    backends arrive).  Backends advertising ``incremental`` maintenance
    also switch the conflict policy onto memoised CSR deltas.  Both
    built-ins are bit-identical under the same seed, so the choice is
    purely a performance knob.
    """

    def __init__(
        self,
        graph: CCGraph,
        *,
        select: "str | None" = None,
        workset: "Workset | None" = None,
    ):
        if workset is not None and select is not None:
            raise RuntimeEngineError("pass select= or workset=, not both")
        if workset is None:
            mode = resolve_select_backend(select)
            workset = ActiveSet() if mode == "incremental" else RandomWorkset()
        self.graph = graph
        self.operator: Operator = _GraphOperator(self)
        self.policy: ConflictPolicy = ExplicitGraphPolicy(
            graph, csr_deltas=bool(getattr(workset, "incremental", False))
        )
        self.workset: Workset = workset
        tasks = [Task(payload=node) for node in graph.nodes()]
        if hasattr(workset, "take_earliest"):
            # priority work-set (ordered/relaxed commit orders): the node
            # id is the canonical graph priority — smaller id = earlier
            for task in tasks:
                workset.add(task, float(task.payload))
        else:
            workset.add_all(tasks)

    def on_commit(self, task: Task) -> list[Task]:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def on_commit_batch(self, tasks: "list[Task]") -> list[Task]:
        """Commit *tasks* in order; return all new tasks in creation order.

        Default loops :meth:`on_commit`; subclasses whose commit effect
        is uniform may override it, preserving exact equivalence (the
        batched path must stay bit-identical to the per-task walk).
        """
        new_tasks: list[Task] = []
        for task in tasks:
            created = self.on_commit(task)
            if created:
                new_tasks.extend(created)
        return new_tasks

    def make_engine(
        self,
        controller: "Controller",
        *,
        seed=None,
        step_hook=None,
        cost_model=None,
        recorder=None,
        metrics=None,
        engine: "str | None" = None,
    ) -> OptimisticEngine:
        """Alias of :meth:`build_engine` matching the workload protocol
        the app layer speaks (``repro.apps.base.AppWorkload``)."""
        return self.build_engine(
            controller,
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            engine=engine,
        )

    def build_engine(
        self,
        controller: "Controller",
        seed=None,
        step_hook=None,
        cost_model=None,
        recorder=None,
        metrics=None,
        engine: "str | None" = None,
    ) -> OptimisticEngine:
        """Wire this workload and *controller* into an engine."""
        return OptimisticEngine(
            workset=self.workset,
            operator=self.operator,
            policy=self.policy,
            controller=controller,
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            engine=engine,
        )


class ReplayGraphWorkload(GraphWorkloadBase):
    """Stationary workload: committed tasks are re-enqueued, graph untouched.

    The engine never drains; cap runs with ``max_steps``.
    """

    def on_commit(self, task: Task) -> list[Task]:
        return [task]  # straight back into the work-set

    def on_commit_batch(self, tasks: "list[Task]") -> list[Task]:
        return list(tasks)  # all straight back, in commit order


class ConsumingGraphWorkload(GraphWorkloadBase):
    """Draining workload: a committed node is removed from the CC graph."""

    def on_commit(self, task: Task) -> list[Task]:
        self.graph.remove_node(task.payload)
        return []


class RegeneratingGraphWorkload(GraphWorkloadBase):
    """Steady-state workload: each commit is replaced by a fresh task.

    The committed node is removed and a new node inserted with edges to
    ``target_degree`` uniformly random survivors, so both ``n`` and the
    average degree stay approximately constant while the topology churns.
    """

    def __init__(
        self,
        graph: CCGraph,
        target_degree: int,
        seed=None,
        *,
        select: "str | None" = None,
        workset: "Workset | None" = None,
    ):
        if target_degree < 0:
            raise RuntimeEngineError(f"target degree must be >= 0, got {target_degree}")
        super().__init__(graph, select=select, workset=workset)
        self.target_degree = target_degree
        self._rng: np.random.Generator = ensure_rng(seed)

    def on_commit(self, task: Task) -> list[Task]:
        g = self.graph
        g.remove_node(task.payload)
        new = g.add_node()
        candidates = [u for u in g.nodes() if u != new]
        if candidates:
            k = min(self.target_degree, len(candidates))
            picks = self._rng.choice(len(candidates), size=k, replace=False)
            for i in picks:
                g.add_edge(new, candidates[int(i)])
        return [Task(payload=new)]
