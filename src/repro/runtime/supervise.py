"""Supervised child processes: spawn, watch, harvest, escalate.

The process-supervision primitives that used to live inside the sweep
harness (:mod:`repro.experiments.parallel`), extracted so the sharded
runtime (:mod:`repro.runtime.sharded`) can reuse them without reaching
up the layer stack.  Two shapes are provided:

* :class:`SupervisedProcess` — a **one-shot** worker: spawn, run one
  payload, report once over a pipe, exit.  The sweep harness runs every
  isolated attempt through one of these.
* :class:`PersistentWorker` — a **long-lived** request/response worker:
  the parent sends one command per round and waits (with an optional
  deadline) for the reply.  The shard runtime keeps one per shard.

Both share the same liveness contract: the parent holds only the read
end of the child→parent pipe, so a worker that dies without reporting —
``os._exit``, SIGKILL, OOM — surfaces as EOF rather than a hang, and
:meth:`terminate` escalates ``terminate → kill`` for stubborn children.
Workers are daemonic: an abandoned supervisor never leaks processes.
"""

from __future__ import annotations

import multiprocessing
import time

__all__ = ["mp_context", "SupervisedProcess", "PersistentWorker"]


def mp_context():
    """The platform's best start method: ``fork`` when available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _terminate(proc) -> None:
    if proc.is_alive():
        proc.terminate()
        proc.join(1.0)
        if proc.is_alive():  # pragma: no cover - stubborn worker
            proc.kill()
            proc.join(1.0)


class SupervisedProcess:
    """One supervised one-shot attempt: a child process plus its pipe.

    ``target(conn, payload)`` runs in the child and must send exactly one
    report — by convention ``{"ok": True, "result": ...}`` or
    ``{"ok": False, "error": ...}`` — before closing the connection.
    """

    def __init__(self, target, payload, timeout: "float | None", ctx=None):
        ctx = ctx or mp_context()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        self.conn = recv_conn
        self.proc = ctx.Process(target=target, args=(send_conn, payload), daemon=True)
        self.started = time.monotonic()
        self.proc.start()
        send_conn.close()  # parent keeps only the read end, so EOF == dead worker
        self.deadline = None if timeout is None else self.started + timeout

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def terminate(self) -> None:
        _terminate(self.proc)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def harvest(self) -> "tuple[str, object, dict | None]":
        """Collect the attempt's verdict: (status, result|message, spans).

        ``spans`` is the worker's span-profiler snapshot when the worker
        shipped one (``None`` otherwise, and always for crashed workers —
        a dead worker ships nothing).
        """
        try:
            message = self.conn.recv()
        except (EOFError, OSError):
            self.proc.join(5.0)
            code = self.proc.exitcode
            self.conn.close()
            return (
                "crash",
                f"worker died before reporting a result (exit code {code})",
                None,
            )
        self.proc.join(5.0)
        self.conn.close()
        spans = message.get("spans")
        if message.get("ok"):
            return "ok", message["result"], spans
        return "error", str(message.get("error", "unknown worker error")), spans


class PersistentWorker:
    """One supervised long-lived worker serving request/response rounds.

    ``target(conn, payload)`` runs in the child with a duplex-by-pairs
    connection: it should loop ``recv() → handle → send()`` until EOF or
    a sentinel command.  Parent-side, :meth:`request` implements one
    round with crash (EOF) and deadline detection; the caller decides
    whether to respawn on failure.
    """

    def __init__(self, target, payload, ctx=None):
        ctx = ctx or mp_context()
        self._ctx = ctx
        up_recv, up_send = ctx.Pipe(duplex=False)  # child -> parent
        down_recv, down_send = ctx.Pipe(duplex=False)  # parent -> child
        self.proc = ctx.Process(
            target=target, args=((down_recv, up_send), payload), daemon=True
        )
        self.proc.start()
        # parent drops the child-held ends: child death then reads as EOF
        up_send.close()
        down_recv.close()
        self._recv = up_recv
        self._send = down_send

    def post(self, message) -> bool:
        """Send one command without waiting; ``False`` if the pipe is dead."""
        try:
            self._send.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def collect(self, timeout: "float | None" = None) -> "tuple[str, object]":
        """Wait for one reply: returns (status, reply|description).

        ``status`` is ``"ok"`` (reply received), ``"crash"`` (the worker
        died before replying) or ``"timeout"`` (no reply inside
        *timeout* seconds).  On crash/timeout the worker is terminated
        and this handle must not be reused.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = None if deadline is None else max(0.0, deadline - time.monotonic())
            if self._recv.poll(wait):
                try:
                    return "ok", self._recv.recv()
                except (EOFError, OSError):
                    self.proc.join(5.0)
                    code = self.proc.exitcode
                    self.close()
                    return "crash", f"worker died before replying (exit code {code})"
            if deadline is not None and time.monotonic() >= deadline:
                self.close()
                return "timeout", f"no reply within {timeout:g}s"

    def request(
        self, message, timeout: "float | None" = None
    ) -> "tuple[str, object]":
        """One command round-trip: :meth:`post` then :meth:`collect`."""
        if not self.post(message):
            self.close()
            return "crash", f"worker died (exit code {self.proc.exitcode})"
        return self.collect(timeout)

    def close(self) -> None:
        """Terminate the worker (escalating) and drop both pipe ends."""
        _terminate(self.proc)
        for conn in (self._recv, self._send):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
