"""Optimistic parallelization runtime: tasks, work-sets, conflicts, engine."""

from repro.runtime.active_set import ActiveSet
from repro.runtime.conflict import (
    BatchOutcome,
    ConflictPolicy,
    ExplicitGraphPolicy,
    ItemLockPolicy,
)
from repro.runtime.costs import (
    CostModel,
    CostTotals,
    ScaledAbortCostModel,
    UnitCostModel,
)
from repro.runtime.core import (
    Engine,
    OrderPolicy,
    resolve_engine_mode,
    resolve_select_backend,
)
from repro.runtime.engine import CCEngine, OptimisticEngine
from repro.runtime.ordered import OrderedBatchOutcome, OrderedEngine, PriorityWorkset
from repro.runtime.policies import (
    ASYNC_DEFAULT_WINDOW,
    AsyncCommitOrder,
    OrderedCommitOrder,
    RelaxedCommitOrder,
    ShardedCommitOrder,
    UnorderedCommitOrder,
)
from repro.runtime.recording import RunRecorder, diff_runs, load_run, save_run
from repro.runtime.sharded import ShardPool, run_sharded
from repro.runtime.supervise import PersistentWorker, SupervisedProcess, mp_context
from repro.runtime.stats import RunResult, StepStats
from repro.runtime.task import CallbackOperator, Operator, Task
from repro.runtime.threads import ThreadedSpeculativeExecutor
from repro.runtime.wktrace import (
    TraceReplayWorkload,
    WorkloadCapture,
    WorkloadTrace,
)
from repro.runtime.workloads import (
    ConsumingGraphWorkload,
    GraphWorkloadBase,
    RegeneratingGraphWorkload,
    ReplayGraphWorkload,
)
from repro.runtime.workset import (
    ArrivalWorkset,
    FifoWorkset,
    LifoWorkset,
    RandomWorkset,
    Workset,
)

__all__ = [
    "ActiveSet",
    "CostModel",
    "CostTotals",
    "ScaledAbortCostModel",
    "UnitCostModel",
    "BatchOutcome",
    "ConflictPolicy",
    "ExplicitGraphPolicy",
    "ItemLockPolicy",
    "Engine",
    "OrderPolicy",
    "resolve_engine_mode",
    "resolve_select_backend",
    "CCEngine",
    "OptimisticEngine",
    "OrderedBatchOutcome",
    "OrderedCommitOrder",
    "OrderedEngine",
    "PriorityWorkset",
    "RelaxedCommitOrder",
    "AsyncCommitOrder",
    "ASYNC_DEFAULT_WINDOW",
    "ShardedCommitOrder",
    "UnorderedCommitOrder",
    "ShardPool",
    "run_sharded",
    "PersistentWorker",
    "SupervisedProcess",
    "mp_context",
    "RunRecorder",
    "diff_runs",
    "load_run",
    "save_run",
    "RunResult",
    "StepStats",
    "CallbackOperator",
    "Operator",
    "Task",
    "ThreadedSpeculativeExecutor",
    "TraceReplayWorkload",
    "WorkloadCapture",
    "WorkloadTrace",
    "ConsumingGraphWorkload",
    "GraphWorkloadBase",
    "RegeneratingGraphWorkload",
    "ReplayGraphWorkload",
    "ArrivalWorkset",
    "FifoWorkset",
    "LifoWorkset",
    "RandomWorkset",
    "Workset",
]
