"""The single step-pipeline core shared by every engine.

The paper's model is one discrete-time loop — the controller proposes an
allocation ``m_t``, a batch is drawn from the work-set, conflicts are
resolved, survivors commit, and the controller observes the realised
conflict ratio ``r_t``.  Historically that loop existed twice
(``runtime/engine.py`` and ``runtime/ordered.py``) and the two copies had
to be edited in lockstep.  This module is the one copy:

* :class:`Engine` owns the pipeline — phase spans, trace events, metric
  counters, cost accounting, retry tracking, and the controller
  hand-shake are emitted here and nowhere else;
* :class:`OrderPolicy` is the plugin seam — *what order the batch is
  drawn and committed in* (uniform-random vs priority order with
  barrier/horizon rules) is the only thing an engine variant supplies.

The concrete policies live in :mod:`repro.runtime.policies`;
:class:`~repro.runtime.engine.OptimisticEngine` and
:class:`~repro.runtime.ordered.OrderedEngine` are thin subclasses that
pick a policy and keep their historical constructor signatures.

Pipeline contract (one ``step()``)::

    controller.decide  ->  order.select  ->  order.execute  ->  order.apply
         (span)              (span)         (policy spans)      + bookkeeping
                                                               (core-owned span)

``order.execute`` resolves the batch into an outcome and owns the phase
spans of resolution; ``order.apply`` mutates the work-set (applying
committed operators or rolling back aborts) and runs — together with
everything downstream: retry counts, cost model, step stats, the
``step`` trace event, and metric counters — inside one core-opened span
named by :meth:`OrderPolicy.commit_span_name`, so timing attribution is
identical to the pre-core engines.  ``controller.observe`` follows in
its own ``controller.update`` span.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import Counter
from typing import TYPE_CHECKING

from repro.errors import RuntimeEngineError
from repro.runtime.stats import RunResult, StepStats

if TYPE_CHECKING:  # avoid runtime<->control import cycle; core only types it
    from repro.control.base import Controller
    from repro.runtime.task import Task

__all__ = [
    "Engine",
    "OrderPolicy",
    "resolve_engine_mode",
    "resolve_select_backend",
    "ENGINE_ENV_VAR",
    "SELECT_ENV_VAR",
]

#: environment variable selecting the default conflict-resolution path
ENGINE_ENV_VAR = "REPRO_ENGINE"
_ENGINE_MODES = ("reference", "fast")

#: environment variable selecting the default work-set selection backend
SELECT_ENV_VAR = "REPRO_SELECT"
_SELECT_MODES = ("workset", "incremental")


def resolve_engine_mode(engine: "str | None") -> str:
    """Normalise an ``engine=`` argument against the ``REPRO_ENGINE`` env var.

    ``None`` defers to the environment (default ``"reference"``); anything
    else must be ``"reference"`` or ``"fast"``.  Both engines accept the
    same workloads and produce bit-identical results — ``"fast"`` resolves
    conflicts with the vectorised kernels of :mod:`repro.runtime.kernels`.
    """
    mode = engine if engine is not None else os.environ.get(ENGINE_ENV_VAR, "reference")
    mode = str(mode).strip().lower() or "reference"
    if mode not in _ENGINE_MODES:
        raise RuntimeEngineError(
            f"unknown engine mode {mode!r}; expected one of {_ENGINE_MODES}"
        )
    return mode


def resolve_select_backend(select: "str | None") -> str:
    """Normalise a ``select=`` argument against the ``REPRO_SELECT`` env var.

    ``None`` defers to the environment (default ``"workset"``); anything
    else must be ``"workset"`` (the reference
    :class:`~repro.runtime.workset.RandomWorkset`) or ``"incremental"``
    (the dense :class:`~repro.runtime.active_set.ActiveSet`).  Both
    backends draw the same uniform ``π_m`` prefixes and are bit-identical
    under the same seed, so either may serve any workload on either
    engine mode.  Third-party backends registered under
    ``"select-backend"`` in :mod:`repro.registry` are addressed by their
    registry name through :class:`repro.config.RunConfig` instead of this
    resolver.
    """
    mode = select if select is not None else os.environ.get(SELECT_ENV_VAR, "workset")
    mode = str(mode).strip().lower() or "workset"
    if mode not in _SELECT_MODES:
        raise RuntimeEngineError(
            f"unknown select backend {mode!r}; expected one of {_SELECT_MODES}"
        )
    return mode


class OrderPolicy(ABC):
    """Commit-order plugin: everything engine variants disagree about.

    A policy is bound to exactly one :class:`Engine` (:meth:`bind`) and
    from then on reaches the work-set, operator, RNG, profiler and
    engine mode through ``self.engine``.  The core calls the hooks in a
    fixed sequence per step::

        begin_step -> select -> execute -> apply
                   -> (committed|aborted)_tasks
                   -> step_event_fields -> step_metrics

    :meth:`execute` only *resolves* the batch into an outcome;
    :meth:`apply` must be *transactional*: when it returns, committed
    operators have been applied (new work enqueued) and aborted tasks
    have been rolled back into the work-set, so the core's
    ``workset_after`` stat is exact.  The core wraps :meth:`apply` and
    all downstream bookkeeping in a span named by
    :meth:`commit_span_name`.
    """

    engine: "Engine"

    def bind(self, engine: "Engine") -> None:
        """Attach the policy to its engine (called once, from ``__init__``)."""
        self.engine = engine

    @abstractmethod
    def label(self) -> str:
        """Value of the ``policy`` field in the ``run_start`` trace event."""

    @abstractmethod
    def init_rng(self, seed) -> None:
        """Install ``engine.rng`` from the constructor *seed*."""

    def begin_step(self) -> None:
        """Hook at the top of every step (e.g. per-step RNG substreams)."""

    @abstractmethod
    def select(self, requested: int) -> list:
        """Draw ``min(requested, |workset|)`` entries in commit order."""

    @abstractmethod
    def execute(self, batch: list):
        """Resolve *batch* into an outcome (no work-set mutation of aborts).

        Opens its own resolution phase spans via
        ``self.engine.phase_span`` so timing attribution stays identical
        to the pre-core engines.  Work-set mutation that belongs to the
        commit/record phase happens in :meth:`apply`.
        """

    @abstractmethod
    def apply(self, outcome) -> None:
        """Apply the outcome to the work-set: commits applied, aborts
        rolled back (plus any policy-local abort accounting).  The core
        calls this inside the :meth:`commit_span_name` span."""

    def commit_span_name(self) -> str:
        """Name of the core-opened span wrapping :meth:`apply` and the
        step bookkeeping (``"commit"`` historically for the unordered
        engine, ``"record"`` for the ordered one)."""
        return "commit"

    @abstractmethod
    def committed_tasks(self, outcome) -> "list[Task]":
        """The outcome's committed tasks (bare, without priorities)."""

    @abstractmethod
    def aborted_tasks(self, outcome) -> "list[Task]":
        """Every aborted task of the outcome, regardless of abort kind."""

    @abstractmethod
    def step_event_fields(self, batch: list, outcome) -> dict:
        """Policy-specific fields of the ``step`` trace event."""

    def step_metrics(self, metrics, outcome) -> None:
        """Extra per-step counters (emitted between ``aborts`` and
        ``launched`` to preserve the historical registry ordering)."""

    def run_end_fields(self) -> dict:
        """Policy-specific fields of the ``run_end`` trace event."""
        return {}


class Engine:
    """The step-pipeline core: one loop, pluggable commit order.

    Parameters
    ----------
    workset, operator:
        The workload: pending tasks and their semantics.  The work-set
        type must match the policy (:class:`~repro.runtime.workset.Workset`
        for unordered, :class:`~repro.runtime.policies.PriorityWorkset`
        for ordered).
    controller:
        Decides ``m_t`` each step from past observations (any
        :class:`~repro.control.base.Controller`).
    order:
        The :class:`OrderPolicy` implementing batch draw and commit
        order.
    seed:
        RNG seed / generator; interpretation is policy-specific (the
        ordered policy derives per-step substreams from it).
    step_hook:
        Optional callable invoked as ``step_hook(engine, stats)`` after
        every step.
    cost_model:
        Optional :class:`~repro.runtime.costs.CostModel` pricing commits
        and aborts; totals accumulate in :attr:`costs`.  Defaults to the
        paper's unit costs.
    recorder, metrics, profiler:
        Optional :class:`~repro.obs.TraceRecorder` /
        :class:`~repro.obs.MetricsRegistry` /
        :class:`~repro.obs.SpanProfiler`.  When omitted, the engine
        attaches to the process-wide active ones if set (see
        :func:`repro.obs.recording`, :func:`repro.obs.profiling`), else
        records nothing.
    engine:
        ``"reference"`` (per-task Python walk) or ``"fast"`` (vectorised
        kernels, see :mod:`repro.runtime.kernels`).  ``None`` defers to
        the ``REPRO_ENGINE`` environment variable.  The two paths are
        bit-identical — same seeds give the same commits, aborts, and
        observability traces.
    """

    def __init__(
        self,
        workset,
        operator,
        controller: "Controller",
        order: OrderPolicy,
        *,
        seed=None,
        step_hook=None,
        cost_model=None,
        recorder=None,
        metrics=None,
        profiler=None,
        engine: "str | None" = None,
    ) -> None:
        from repro.obs.metrics import active_metrics
        from repro.obs.recorder import active_recorder, describe_seed
        from repro.obs.spans import NULL_SPAN, active_profiler
        from repro.runtime.costs import CostTotals, UnitCostModel

        if not isinstance(order, OrderPolicy):
            raise RuntimeEngineError(
                f"order must be an OrderPolicy, got {type(order).__name__}"
            )
        self.workset = workset
        self.operator = operator
        self.controller = controller
        self.order = order
        self.engine_mode = resolve_engine_mode(engine)
        self.step_hook = step_hook
        self.cost_model = cost_model or UnitCostModel()
        self.costs = CostTotals()
        self.result = RunResult()
        # per-task abort counts: starvation diagnostics (optimistic
        # runtimes can in principle retry one unlucky task forever);
        # a Counter so batched increments run at C speed
        self.retry_counts: Counter[int] = Counter()
        self._step = 0
        self.recorder = recorder if recorder is not None else active_recorder()
        registry = metrics if metrics is not None else active_metrics()
        self.metrics = None if registry is None else registry.scope("engine")
        self.profiler = profiler if profiler is not None else active_profiler()
        # stashed no-op span: the disabled path costs one None test plus
        # entering this shared stateless context manager per phase
        self._null_span = NULL_SPAN
        order.bind(self)
        order.init_rng(seed)
        if self.recorder is not None or self.metrics is not None:
            controller.bind_observability(
                self.recorder,
                None if registry is None else registry.scope("controller"),
            )
        if self.recorder is not None:
            self.recorder.emit(
                "run_start",
                step=self._step,
                engine=type(self).__name__,
                policy=order.label(),
                seed=describe_seed(seed),
                workset_size=len(workset),
                controller=controller.describe(),
            )

    # ------------------------------------------------------------------
    def phase_span(self, name: str):
        """A profiler span for one pipeline phase (no-op when disabled)."""
        prof = self.profiler
        return prof.span(name) if prof is not None else self._null_span

    def step(self) -> StepStats:
        """Execute one temporal step; raises if the work-set is empty."""
        before = len(self.workset)
        if before == 0:
            raise RuntimeEngineError("cannot step: work-set is empty")
        prof = self.profiler
        null = self._null_span
        order = self.order
        with prof.step_span(self._step) if prof is not None else null:
            order.begin_step()
            with prof.span("controller.decide") if prof is not None else null:
                requested = int(self.controller.propose())
            if requested < 1:
                raise RuntimeEngineError(
                    f"controller proposed m={requested}; allocations must be >= 1"
                )
            with prof.span("select") if prof is not None else null:
                batch = order.select(requested)
                if self.recorder is not None:
                    self.recorder.emit(
                        "select",
                        step=self._step,
                        requested=requested,
                        taken=len(batch),
                        workset_before=before,
                    )
            outcome = order.execute(batch)  # opens the policy's resolve spans
            with prof.span(order.commit_span_name()) if prof is not None else null:
                order.apply(outcome)
                committed = order.committed_tasks(outcome)
                aborted = order.aborted_tasks(outcome)
                retries = self.retry_counts
                if aborted:
                    retries.update([task.uid for task in aborted])
                for task in committed:
                    retries.pop(task.uid, None)  # made it; stop tracking
                self.cost_model.charge(self.costs, committed, aborted)
                stats = StepStats(
                    step=self._step,
                    requested=requested,
                    launched=outcome.launched,
                    committed=len(committed),
                    aborted=len(aborted),
                    workset_before=before,
                    workset_after=len(self.workset),
                )
                if self.recorder is not None:
                    self.recorder.emit(
                        "step",
                        **order.step_event_fields(batch, outcome),
                        **stats.as_dict(),
                    )
                if self.metrics is not None:
                    self.metrics.counter("steps").inc()
                    self.metrics.counter("commits").inc(stats.committed)
                    self.metrics.counter("aborts").inc(stats.aborted)
                    order.step_metrics(self.metrics, outcome)
                    self.metrics.counter("launched").inc(stats.launched)
                    self.metrics.histogram("conflict_ratio").observe(
                        stats.conflict_ratio
                    )
                    self.metrics.gauge("workset").set(stats.workset_after)
                    self.metrics.gauge("m").set(requested)
            self._step += 1
            with prof.span("controller.update") if prof is not None else null:
                self.controller.observe(stats.conflict_ratio, outcome.launched)
        self.result.append(stats)
        if self.step_hook is not None:
            self.step_hook(self, stats)
        return stats

    def run(self, max_steps: int | None = None) -> RunResult:
        """Step until the work-set drains (or *max_steps* is reached)."""
        if max_steps is not None and max_steps < 0:
            raise RuntimeEngineError(f"max_steps must be >= 0, got {max_steps}")
        while len(self.workset) > 0:
            if max_steps is not None and self._step >= max_steps:
                break
            self.step()
        if self.recorder is not None:
            self.recorder.emit(
                "run_end",
                step=self._step,
                steps=len(self.result),
                committed=self.result.total_committed,
                aborted=self.result.total_aborted,
                **self.order.run_end_fields(),
                workset=len(self.workset),
            )
        return self.result

    @property
    def steps_executed(self) -> int:
        return self._step

    def max_pending_retries(self) -> int:
        """Largest abort count among tasks that have not yet committed.

        A starvation indicator: with the random-permutation scheduler each
        pending task eventually wins its conflicts w.p. 1, but heavy
        contention shows up here long before it shows in the ratios.
        """
        return max(self.retry_counts.values(), default=0)
