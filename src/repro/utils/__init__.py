"""Shared utilities: RNG plumbing, finite differences, statistics, rendering."""

from repro.utils.finite_diff import (
    binomial_difference,
    forward_difference,
    forward_difference_array,
    is_convex,
    is_nondecreasing,
)
from repro.utils.rng import ensure_rng, random_permutation, random_prefix, spawn
from repro.utils.stats import MeanCI, RunningStats, hypergeom_miss_probability, mean_ci
from repro.utils.svgplot import LinePlot
from repro.utils.tables import format_series, format_table, sparkline
from repro.utils.timing import StageTimer, Timer

__all__ = [
    "binomial_difference",
    "forward_difference",
    "forward_difference_array",
    "is_convex",
    "is_nondecreasing",
    "ensure_rng",
    "random_permutation",
    "random_prefix",
    "spawn",
    "MeanCI",
    "RunningStats",
    "hypergeom_miss_probability",
    "mean_ci",
    "LinePlot",
    "format_series",
    "format_table",
    "sparkline",
    "StageTimer",
    "Timer",
]
