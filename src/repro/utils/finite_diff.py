"""Finite differences (discrete derivatives) as used throughout §3.

The paper defines the *i*-th forward finite difference recursively::

    Δ⁰_f(k) = f(k)
    Δⁱ_f(k) = Δ^{i-1}_f(k+1) − Δ^{i-1}_f(k)

We provide both a functional form operating on callables and a vectorised
form operating on sampled arrays, plus the standard binomial expansion

    Δⁱ_f(k) = Σ_{j=0}^{i} (-1)^{i-j} C(i, j) f(k + j)

which the tests cross-check against the recursive definition.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy.special import comb

__all__ = [
    "forward_difference",
    "forward_difference_array",
    "binomial_difference",
    "is_nondecreasing",
    "is_convex",
]


def forward_difference(f: Callable[[int], float], k: int, order: int = 1) -> float:
    """Evaluate ``Δ^order_f(k)`` by the recursive definition.

    ``order=0`` returns ``f(k)`` itself.  The recursion is expanded
    iteratively (each level needs one more point to the right), so the
    callable is evaluated at ``k, k+1, ..., k+order`` exactly once each.
    """
    if order < 0:
        raise ValueError(f"difference order must be >= 0, got {order}")
    values = np.array([f(k + j) for j in range(order + 1)], dtype=float)
    for _ in range(order):
        values = np.diff(values)
    return float(values[0])


def forward_difference_array(values: np.ndarray, order: int = 1) -> np.ndarray:
    """Vectorised ``Δ^order`` over a sampled array ``values[k] = f(k)``.

    Returns an array of length ``max(len(values) − order, 0)`` — empty when
    there are too few samples, which makes downstream "all(...)" style
    predicates vacuously true on short inputs.
    """
    if order < 0:
        raise ValueError(f"difference order must be >= 0, got {order}")
    arr = np.asarray(values, dtype=float)
    if order >= arr.shape[0]:
        return np.empty(0, dtype=float)
    return np.diff(arr, n=order) if order else arr.copy()


def binomial_difference(f: Callable[[int], float], k: int, order: int = 1) -> float:
    """Evaluate ``Δ^order_f(k)`` via the binomial expansion (closed form)."""
    if order < 0:
        raise ValueError(f"difference order must be >= 0, got {order}")
    total = 0.0
    for j in range(order + 1):
        total += (-1) ** (order - j) * comb(order, j, exact=True) * f(k + j)
    return float(total)


def is_nondecreasing(values: np.ndarray, atol: float = 0.0) -> bool:
    """True iff the sampled sequence is non-decreasing up to tolerance."""
    diffs = forward_difference_array(values, 1)
    return bool(np.all(diffs >= -atol)) if diffs.size else True


def is_convex(values: np.ndarray, atol: float = 0.0) -> bool:
    """True iff the sampled sequence is (discretely) convex up to tolerance."""
    if len(values) < 3:
        return True
    second = forward_difference_array(values, 2)
    return bool(np.all(second >= -atol))
