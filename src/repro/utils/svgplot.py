"""Dependency-free SVG line charts for the regenerated figures.

The benchmark harness runs headless with no plotting stack, yet the
paper's artefacts are *figures*.  This small renderer produces clean SVG
line charts (axes, 1–2–5 ticks, grid, legend, optional log-x) from pure
string assembly, so ``bench_reports/fig2.svg`` etc. can be opened in any
browser.  It is deliberately minimal — polylines only, no markers beyond
small circles — but fully tested (the output parses as XML and the
geometry lands inside the axes box).
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.errors import ReproError

__all__ = ["LinePlot"]

# colour-blind-safe categorical palette (Okabe–Ito)
_PALETTE = [
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#000000",
]


def _nice_ticks(lo: float, hi: float, target: int = 6) -> list[float]:
    """~*target* ticks on a 1–2–5 progression covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(target - 1, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * mag
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * span:
        ticks.append(round(t, 12))
        t += step
    return ticks or [lo, hi]


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


class LinePlot:
    """A single-axes line chart assembled into an SVG string."""

    def __init__(
        self,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
        width: int = 640,
        height: int = 400,
        log_x: bool = False,
    ) -> None:
        if width < 100 or height < 80:
            raise ReproError(f"canvas {width}×{height} too small to draw axes")
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.log_x = log_x
        self._series: list[tuple[str, list[float], list[float], str, bool]] = []

    # ------------------------------------------------------------------
    def add_series(
        self,
        name: str,
        xs,
        ys,
        color: str | None = None,
        dashed: bool = False,
    ) -> None:
        """Add one polyline; colours cycle through a fixed palette."""
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ReproError(f"series {name!r}: {len(xs)} x vs {len(ys)} y values")
        if not xs:
            raise ReproError(f"series {name!r} is empty")
        if self.log_x and min(xs) <= 0:
            raise ReproError(f"series {name!r} has non-positive x on a log axis")
        color = color or _PALETTE[len(self._series) % len(_PALETTE)]
        self._series.append((name, xs, ys, color, dashed))

    # ------------------------------------------------------------------
    def _x_transform(self, x: float) -> float:
        return math.log10(x) if self.log_x else x

    def render(self) -> str:
        """Assemble the SVG document."""
        if not self._series:
            raise ReproError("plot has no series")
        margin_l, margin_r, margin_t, margin_b = 62, 16, 34, 46
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b

        tx = self._x_transform
        all_x = [tx(x) for _, xs, _, _, _ in self._series for x in xs]
        all_y = [y for _, _, ys, _, _ in self._series for y in ys]
        x_lo, x_hi = min(all_x), max(all_x)
        y_lo, y_hi = min(all_y), max(all_y)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        y_pad = 0.05 * (y_hi - y_lo)
        y_lo -= y_pad
        y_hi += y_pad

        def px(x: float) -> float:
            return margin_l + (tx(x) - x_lo) / (x_hi - x_lo) * plot_w

        def py(y: float) -> float:
            return margin_t + (y_hi - y) / (y_hi - y_lo) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        if self.title:
            parts.append(
                f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
                f'font-size="14">{_escape(self.title)}</text>'
            )

        # ticks + grid
        if self.log_x:
            lo_exp = math.floor(x_lo)
            hi_exp = math.ceil(x_hi)
            x_ticks = [10.0**e for e in range(int(lo_exp), int(hi_exp) + 1)]
            x_ticks = [t for t in x_ticks if x_lo - 1e-9 <= math.log10(t) <= x_hi + 1e-9]
        else:
            x_ticks = _nice_ticks(x_lo, x_hi)
        y_ticks = _nice_ticks(y_lo, y_hi)
        for t in x_ticks:
            xpix = margin_l + ((math.log10(t) if self.log_x else t) - x_lo) / (x_hi - x_lo) * plot_w
            parts.append(
                f'<line x1="{xpix:.1f}" y1="{margin_t}" x2="{xpix:.1f}" '
                f'y2="{margin_t + plot_h}" stroke="#ddd"/>'
            )
            parts.append(
                f'<text x="{xpix:.1f}" y="{margin_t + plot_h + 16}" '
                f'text-anchor="middle">{_fmt(t)}</text>'
            )
        for t in y_ticks:
            ypix = py(t)
            parts.append(
                f'<line x1="{margin_l}" y1="{ypix:.1f}" x2="{margin_l + plot_w}" '
                f'y2="{ypix:.1f}" stroke="#ddd"/>'
            )
            parts.append(
                f'<text x="{margin_l - 6}" y="{ypix + 4:.1f}" '
                f'text-anchor="end">{_fmt(t)}</text>'
            )
        # axes box
        parts.append(
            f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
            f'height="{plot_h}" fill="none" stroke="#333"/>'
        )
        if self.xlabel:
            parts.append(
                f'<text x="{margin_l + plot_w / 2}" y="{self.height - 8}" '
                f'text-anchor="middle">{_escape(self.xlabel)}</text>'
            )
        if self.ylabel:
            cy = margin_t + plot_h / 2
            parts.append(
                f'<text x="14" y="{cy}" text-anchor="middle" '
                f'transform="rotate(-90 14 {cy})">{_escape(self.ylabel)}</text>'
            )

        # series
        for name, xs, ys, color, dashed in self._series:
            pts = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys))
            dash = ' stroke-dasharray="6 4"' if dashed else ""
            parts.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                f'stroke-width="1.8"{dash}/>'
            )
        # legend
        for i, (name, _, _, color, dashed) in enumerate(self._series):
            ly = margin_t + 10 + 16 * i
            lx = margin_l + 10
            dash = ' stroke-dasharray="6 4"' if dashed else ""
            parts.append(
                f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
                f'stroke="{color}" stroke-width="1.8"{dash}/>'
            )
            parts.append(
                f'<text x="{lx + 28}" y="{ly + 4}">{_escape(name)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: "str | Path") -> None:
        """Render and write to *path*."""
        Path(path).write_text(self.render(), encoding="utf-8")


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
