"""Plain-text rendering of experiment output (tables and line series).

The benchmark harness regenerates each figure of the paper as data; since we
run headless, figures are emitted as aligned ASCII tables plus a coarse
unicode sparkline so the *shape* of each curve is visible directly in test
and benchmark logs.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _fmt_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = ".4g",
) -> str:
    """Render rows as a fixed-width table with a separator under the header."""
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Map a numeric series onto unicode block characters (8 levels)."""
    vals = [v for v in values if not math.isnan(v)]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    out = []
    for v in values:
        if math.isnan(v):
            out.append(" ")
            continue
        level = 0 if span == 0 else int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    max_points: int = 24,
    float_fmt: str = ".4g",
) -> str:
    """Render one named curve: sparkline plus a subsampled (x, y) listing."""
    if len(xs) != len(ys):
        raise ValueError(f"series '{name}': {len(xs)} x-values vs {len(ys)} y-values")
    if not xs:
        return f"{name}: (empty)"
    stride = max(1, math.ceil(len(xs) / max_points))
    idx = list(range(0, len(xs), stride))
    if idx[-1] != len(xs) - 1:
        idx.append(len(xs) - 1)
    pts = ", ".join(
        f"({_fmt_cell(float(xs[i]), float_fmt)}, {_fmt_cell(float(ys[i]), float_fmt)})"
        for i in idx
    )
    return f"{name}: {sparkline(list(ys))}\n  {pts}"
