"""Streaming statistics and confidence intervals for Monte-Carlo estimation.

Monte-Carlo estimates of the conflict ratio and of expected maximal
independent-set sizes drive both the analytic validation and the experiment
harness, so we need numerically stable streaming moments (Welford) and
normal-approximation confidence intervals with sane behaviour at tiny sample
counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RunningStats", "MeanCI", "mean_ci", "hypergeom_miss_probability"]


class RunningStats:
    """Welford streaming mean/variance accumulator.

    Supports scalar pushes and bulk array pushes; merging two accumulators
    (parallel reduction) uses the Chan et al. pairwise-update formula.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def push(self, x: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def push_many(self, xs: np.ndarray) -> None:
        """Add a batch of observations (vectorised via merge)."""
        arr = np.asarray(xs, dtype=float).ravel()
        if arr.size == 0:
            return
        other = RunningStats()
        other.count = int(arr.size)
        other._mean = float(arr.mean())
        other._m2 = float(((arr - other._mean) ** 2).sum())
        other.min = float(arr.min())
        other.max = float(arr.max())
        self.merge(other)

    def merge(self, other: "RunningStats") -> None:
        """Fold *other* into this accumulator."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN below two observations)."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        s = self.std
        return s / math.sqrt(self.count) if s == s and self.count else math.nan

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


@dataclass(frozen=True)
class MeanCI:
    """A mean with a symmetric normal-approximation confidence interval."""

    mean: float
    half_width: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when *value* falls inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.5g} ± {self.half_width:.3g} (n={self.count})"


def mean_ci(samples: np.ndarray, z: float = 2.576) -> MeanCI:
    """Mean with ``z``-sigma CI (default z≈99% normal quantile).

    With fewer than two samples the half-width is infinite, which makes
    accidental under-sampling loudly visible in assertions rather than
    silently passing.
    """
    arr = np.asarray(samples, dtype=float).ravel()
    n = arr.size
    if n == 0:
        return MeanCI(math.nan, math.inf, 0)
    if n == 1:
        return MeanCI(float(arr[0]), math.inf, 1)
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    return MeanCI(float(arr.mean()), z * sem, n)


def hypergeom_miss_probability(n: int, block: int, m: int) -> float:
    """P[a fixed block of ``block`` nodes is untouched by an m-sample].

    Drawing ``m`` nodes without replacement from ``n``, the probability that
    none land in a distinguished block of size ``block`` is the hypergeometric
    tail the paper evaluates in Thm. 3 (Eq. 26)::

        Π_{i=1}^{m} (n - block + 1 - i) / (n + 1 - i)

    Computed in log space to stay finite for large ``n``.
    """
    if not 0 <= block <= n:
        raise ValueError(f"block size {block} out of range [0, {n}]")
    if not 0 <= m <= n:
        raise ValueError(f"sample size {m} out of range [0, {n}]")
    if m > n - block:
        return 0.0
    if m == 0 or block == 0:
        return 1.0
    i = np.arange(1, m + 1, dtype=float)
    num = n - block + 1.0 - i
    den = n + 1.0 - i
    return float(np.exp(np.log(num).sum() - np.log(den).sum()))
