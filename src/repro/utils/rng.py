"""Reproducible random-number-generator plumbing.

All stochastic code in :mod:`repro` draws from :class:`numpy.random.Generator`
instances that are threaded explicitly through the call tree (never module
globals), so that every simulation, Monte-Carlo estimate and controller run is
reproducible from a single integer seed.  This module centralises the few
idioms we need:

* :func:`ensure_rng` — accept ``None`` / int seed / existing ``Generator``.
* :func:`spawn` — derive ``n`` statistically independent child generators,
  used to give each Monte-Carlo replica or parallel worker its own stream.
* :func:`random_prefix` — sample a uniform random ``m``-prefix of a
  permutation of ``n`` items, the core sampling primitive of the paper's
  scheduler model (§2).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["ensure_rng", "spawn", "random_prefix", "random_permutation"]

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed: "int | np.random.Generator | np.random.SeedSequence | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``Generator`` instances are passed through unchanged so callers can share
    a stream; anything else is fed to :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Uses the generator's underlying bit generator ``spawn`` support (PCG64
    etc.), falling back to seeding children from fresh 64-bit draws when the
    bit generator cannot spawn (e.g. legacy generators).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    try:
        return [np.random.Generator(bg) for bg in rng.bit_generator.spawn(n)]
    except (AttributeError, TypeError):  # pragma: no cover - legacy numpy
        seeds = rng.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]


def random_permutation(items: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Return a uniform random permutation of *items* as an int64 array."""
    arr = np.asarray(items, dtype=np.int64)
    return rng.permutation(arr)


def random_prefix(items: Sequence[int], m: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a uniformly random ordered ``m``-prefix of a permutation.

    This realises the paper's ``π_m``: the scheduler draws ``m`` distinct
    nodes uniformly at random and the order of the draw is the commit order.
    Equivalent to taking the first ``m`` entries of a uniform permutation of
    *items*, but only O(m) memory is touched beyond the input copy.
    """
    arr = np.asarray(items, dtype=np.int64)
    n = arr.shape[0]
    if not 0 <= m <= n:
        raise ValueError(f"prefix length m={m} out of range [0, {n}]")
    if m == 0:
        return np.empty(0, dtype=np.int64)
    # choice without replacement preserves draw order uniformity.
    idx = rng.choice(n, size=m, replace=False)
    return arr[idx]
