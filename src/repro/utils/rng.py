"""Reproducible random-number-generator plumbing.

All stochastic code in :mod:`repro` draws from :class:`numpy.random.Generator`
instances that are threaded explicitly through the call tree (never module
globals), so that every simulation, Monte-Carlo estimate and controller run is
reproducible from a single integer seed.  This module centralises the few
idioms we need:

* :func:`ensure_rng` — accept ``None`` / int seed / existing ``Generator``.
* :func:`spawn` — derive ``n`` statistically independent child generators,
  used to give each Monte-Carlo replica or parallel worker its own stream.
* :func:`derive_seed` / :func:`substream` — *keyed* substream derivation:
  a child seed/generator that is a pure function of ``(base seed, key
  path)``, independent of how much randomness anything else consumed.
  The ordered engine keys one substream per step, and the parallel sweep
  harness keys one per run config, so results never depend on scheduling
  or retry history.
* :func:`random_prefix` — sample a uniform random ``m``-prefix of a
  permutation of ``n`` items, the core sampling primitive of the paper's
  scheduler model (§2).
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

import numpy as np

__all__ = [
    "ensure_rng",
    "spawn",
    "derive_seed",
    "derive_jitter",
    "substream",
    "random_prefix",
    "random_permutation",
]

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed: "int | np.random.Generator | np.random.SeedSequence | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``Generator`` instances are passed through unchanged so callers can share
    a stream; anything else is fed to :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Uses the generator's underlying bit generator ``spawn`` support (PCG64
    etc.), falling back to seeding children from fresh 64-bit draws when the
    bit generator cannot spawn (e.g. legacy generators).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    try:
        return [np.random.Generator(bg) for bg in rng.bit_generator.spawn(n)]
    except (AttributeError, TypeError):  # pragma: no cover - legacy numpy
        seeds = rng.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]


def _key_part_to_entropy(part: "int | str") -> int:
    """Stable *positive* integer entropy for one key-path element.

    Strings hash via SHA-256 so the mapping is stable across processes
    and Python hash randomisation.  Integers map to odd values and
    strings to even ones, so ``3`` and ``"3"`` are distinct key parts;
    every part is nonzero because SeedSequence's entropy pool absorbs
    trailing zeros — ``(0, "a")`` and ``(0, "a", 0)`` must not collide.
    """
    if isinstance(part, (int, np.integer)):
        return (int(part) % (1 << 62)) * 2 + 1
    digest = hashlib.sha256(str(part).encode("utf-8")).digest()
    return (int.from_bytes(digest[:8], "little") % (1 << 62)) * 2 + 2


def _seed_sequence_for(seed: "int | np.random.SeedSequence | None", key: tuple) -> np.random.SeedSequence:
    """Build the :class:`~numpy.random.SeedSequence` for ``(seed, *key)``."""
    if isinstance(seed, np.random.SeedSequence):
        base = seed.entropy if seed.entropy is not None else 0
    else:
        base = seed if seed is not None else 0
    if isinstance(base, (int, np.integer)):
        entropy = [int(base) % (1 << 63)]
    else:
        entropy = list(base)
    entropy.extend(_key_part_to_entropy(part) for part in key)
    return np.random.SeedSequence(entropy)


def derive_seed(seed: "int | np.random.SeedSequence | None", *key: "int | str") -> int:
    """Deterministic 64-bit child seed for ``(seed, *key)``.

    The derivation is *keyed*, not sequential: the result depends only on
    the base seed and the key path (ints and strings), never on how many
    seeds were derived before.  Use it to hand stable seeds to parallel
    workers, per-step substreams, or cached run configs::

        derive_seed(0, "fig2", 3)   # always the same child seed
    """
    return int(_seed_sequence_for(seed, key).generate_state(1, np.uint64)[0])


def derive_jitter(seed: "int | np.random.SeedSequence | None", *key: "int | str") -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by ``(seed, *key)``.

    The sweep harness uses this to jitter retry back-off delays: the
    jitter for attempt ``k`` of a config is a pure function of the
    config's seed and ``k``, so an interrupted-and-resumed sweep retries
    on exactly the schedule the uninterrupted sweep would have used.
    """
    return float(substream(seed, *key).random())


def substream(seed: "int | np.random.SeedSequence | None", *key: "int | str") -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` keyed by ``(seed, *key)``.

    Statistically independent across distinct key paths (SeedSequence
    entropy mixing) and reproducible regardless of draw counts elsewhere.
    """
    return np.random.default_rng(_seed_sequence_for(seed, key))


def random_permutation(items: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Return a uniform random permutation of *items* as an int64 array."""
    arr = np.asarray(items, dtype=np.int64)
    return rng.permutation(arr)


def random_prefix(items: Sequence[int], m: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a uniformly random ordered ``m``-prefix of a permutation.

    This realises the paper's ``π_m``: the scheduler draws ``m`` distinct
    nodes uniformly at random and the order of the draw is the commit order.
    Equivalent to taking the first ``m`` entries of a uniform permutation of
    *items*, but only O(m) memory is touched beyond the input copy.
    """
    arr = np.asarray(items, dtype=np.int64)
    n = arr.shape[0]
    if not 0 <= m <= n:
        raise ValueError(f"prefix length m={m} out of range [0, {n}]")
    if m == 0:
        return np.empty(0, dtype=np.int64)
    # choice without replacement preserves draw order uniformity.
    idx = rng.choice(n, size=m, replace=False)
    return arr[idx]
