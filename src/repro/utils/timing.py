"""Lightweight wall-clock timing helpers for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "StageTimer"]


@dataclass
class Timer:
    """Context-manager stopwatch; ``elapsed`` holds seconds after exit."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class StageTimer:
    """Accumulate named stage durations across a multi-phase run."""

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        """Time one execution of stage *name* (re-entrant across calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + dt
            self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds spent in *name* so far."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of completed executions of *name*."""
        return self._counts.get(name, 0)

    def report(self) -> dict[str, float]:
        """Snapshot of stage totals, sorted by descending cost."""
        return dict(sorted(self._totals.items(), key=lambda kv: -kv[1]))
