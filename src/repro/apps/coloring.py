"""Greedy graph colouring / maximal-independent-set as a work-set app.

The simplest amorphous-data-parallel kernel: each task colours one node
with the smallest colour unused by its neighbours.  Two adjacent nodes
must not commit in the same batch (they would race on the shared edge),
so the conflict neighbourhood is the closed neighbourhood of the node —
making the *application's* conflict graph literally equal to the input
graph, the cleanest instantiation of the paper's CC-graph model on a real
computation.

A by-product of the first batch is a maximal independent set (every
committed node of round one is independent by construction), which the
tests cross-check against :func:`repro.model.committed_set` semantics.
"""

from __future__ import annotations

from repro.apps.base import AppWorkload
from repro.errors import ApplicationError
from repro.graph.ccgraph import CCGraph
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import Operator, Task

__all__ = ["GreedyColoring", "independent_set_via_coloring"]


class GreedyColoring(AppWorkload, Operator):
    """Colour *graph* greedily under optimistic parallelism.

    Task payloads are node ids; :attr:`colors` maps node → colour once the
    run drains.  The colouring is proper by construction: a node reads its
    neighbours' colours only in a batch where no neighbour commits.
    """

    def __init__(self, graph: CCGraph, *, workset=None):
        self.graph = graph
        self.colors: dict[int, int] = {}
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        self.recolor_attempts = 0
        for node in graph.nodes():
            self._seed_task(Task(payload=node))

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        node = task.payload
        if node in self.colors:
            return ()
        return {node} | set(self.graph.neighbors(node))

    def apply(self, task: Task) -> list[Task]:
        node = task.payload
        if node in self.colors:
            self.recolor_attempts += 1
            return []
        used = {
            self.colors[v] for v in self.graph.neighbors(node) if v in self.colors
        }
        color = 0
        while color in used:
            color += 1
        self.colors[node] = color
        return []

    # ------------------------------------------------------------------
    def is_proper(self) -> bool:
        """Every edge bicoloured; every node coloured."""
        if set(self.colors) != set(self.graph.nodes()):
            return False
        return all(self.colors[u] != self.colors[v] for u, v in self.graph.edges())

    def num_colors(self) -> int:
        if not self.colors:
            return 0
        return max(self.colors.values()) + 1

    def check_brooks_bound(self) -> bool:
        """Greedy never exceeds Δ + 1 colours."""
        if not self.colors:
            return True
        max_deg = max((self.graph.degree(u) for u in self.graph), default=0)
        return self.num_colors() <= max_deg + 1


def independent_set_via_coloring(graph: CCGraph, controller, seed=None) -> set[int]:
    """Independent set: colour the graph, then take the largest colour class."""
    app = GreedyColoring(graph)
    app.make_engine(controller, seed=seed).run()
    if not app.colors:
        return set()
    classes: dict[int, set[int]] = {}
    for node, c in app.colors.items():
        classes.setdefault(c, set()).add(node)
    best = max(classes.values(), key=len)
    for u in best:
        if not best.isdisjoint(graph.neighbors(u)):
            raise ApplicationError("colour class is not independent")
    return best
