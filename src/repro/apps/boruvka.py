"""Borůvka's minimum-spanning-tree algorithm as a work-set application.

One of the Galois workloads the paper cites [6]: each task takes a
component, finds its lightest outgoing edge, and contracts it.  Two tasks
conflict when they touch the same component — the classic irregular
conflict pattern whose density *shrinks* as components merge (few big
components ⇒ little parallelism), giving the controller a workload whose
available parallelism decays over time.

Implementation: union–find for components plus a per-component map of the
lightest edge to each neighbouring component (merged small-into-large on
contraction, so total maintenance cost is O(E log V)).  Conflict
neighbourhood of a task = its component root and the partner component's
root, the two items the contraction mutates.

Correctness oracle: with distinct edge weights the MST is unique, so the
test suite checks the total weight against an independent Kruskal
implementation (:func:`kruskal_weight`).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.apps.base import AppWorkload
from repro.errors import ApplicationError
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import Operator, Task
from repro.utils.rng import ensure_rng

__all__ = ["WeightedGraph", "random_weighted_graph", "BoruvkaMST", "kruskal_weight"]

Edge = tuple[int, int, float]


class WeightedGraph:
    """Minimal undirected weighted graph (adjacency dict of dicts)."""

    def __init__(self, num_nodes: int):
        if num_nodes < 0:
            raise ApplicationError(f"negative node count {num_nodes}")
        self.num_nodes = num_nodes
        self._adj: list[dict[int, float]] = [dict() for _ in range(num_nodes)]
        self.num_edges = 0

    def add_edge(self, u: int, v: int, w: float) -> None:
        if u == v:
            raise ApplicationError(f"self-loop on {u}")
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ApplicationError(f"edge ({u}, {v}) outside node range")
        if v not in self._adj[u]:
            self.num_edges += 1
        self._adj[u][v] = w
        self._adj[v][u] = w

    def edges(self) -> list[Edge]:
        return [
            (u, v, w)
            for u in range(self.num_nodes)
            for v, w in self._adj[u].items()
            if u < v
        ]

    def neighbors(self, u: int) -> dict[int, float]:
        return self._adj[u]


def random_weighted_graph(n: int, avg_degree: float, seed=None) -> WeightedGraph:
    """Connected-ish G(n, M) with distinct uniform edge weights.

    A random spanning tree is laid first so Borůvka always runs to a single
    component; remaining edges are uniform pairs.  Weights are distinct
    with probability one, making the MST unique.
    """
    rng = ensure_rng(seed)
    if n < 1:
        raise ApplicationError(f"need n >= 1, got {n}")
    g = WeightedGraph(n)
    order = rng.permutation(n)
    for i in range(1, n):
        u = int(order[i])
        v = int(order[int(rng.integers(0, i))])
        g.add_edge(u, v, float(rng.random()))
    target_edges = int(round(n * avg_degree / 2.0))
    attempts = 0
    while g.num_edges < target_edges and attempts < 50 * target_edges:
        attempts += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v and v not in g.neighbors(u):
            g.add_edge(u, v, float(rng.random()))
    return g


def kruskal_weight(graph: WeightedGraph) -> float:
    """Total MST (forest) weight by Kruskal's algorithm — the test oracle."""
    parent = list(range(graph.num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    total = 0.0
    for u, v, w in sorted(graph.edges(), key=lambda e: e[2]):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            total += w
    return total


class BoruvkaMST(AppWorkload, Operator):
    """Borůvka contraction as engine tasks (payload = component root)."""

    def __init__(self, graph: WeightedGraph, *, workset=None):
        self.graph = graph
        n = graph.num_nodes
        self._parent = list(range(n))
        self._rank = [0] * n
        # lightest edge from each component to each neighbouring component:
        # root -> {other_root: (w, u, v)}
        self._comp_edges: list[dict[int, Edge]] = [dict() for _ in range(n)]
        for u in range(n):
            for v, w in graph.neighbors(u).items():
                best = self._comp_edges[u].get(v)
                if best is None or w < best[2]:
                    self._comp_edges[u][v] = (u, v, w)
        self.mst_edges: list[Edge] = []
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        self.stale_commits = 0
        for u in range(n):
            if self._comp_edges[u]:
                self._seed_task(Task(payload=u))

    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Union–find root with path halving."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def _lightest(self, root: int) -> Edge | None:
        """Lightest live outgoing edge of component *root* (lazy cleanup)."""
        edges = self._comp_edges[root]
        best: Edge | None = None
        dead: list[int] = []
        for other, e in edges.items():
            if self.find(other) == root:
                dead.append(other)  # edge became internal after past merges
                continue
            if best is None or e[2] < best[2]:
                best = e
        for other in dead:
            del edges[other]
        return best

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        root = self.find(task.payload)
        if root != task.payload:
            return ()  # stale: this component was absorbed already
        e = self._lightest(root)
        if e is None:
            return ()
        return (root, self.find(e[1] if self.find(e[0]) == root else e[0]))

    def apply(self, task: Task) -> list[Task]:
        root = self.find(task.payload)
        if root != task.payload:
            self.stale_commits += 1
            return []
        e = self._lightest(root)
        if e is None:
            return []  # spanning complete for this component
        u, v, w = e
        other = self.find(v) if self.find(u) == root else self.find(u)
        if other == root:  # raced internal edge; retry via fresh task
            return [Task(payload=root)]
        self.mst_edges.append((u, v, w))
        merged = self._union(root, other)
        return [Task(payload=merged)] if self._comp_edges[merged] else []

    def _union(self, a: int, b: int) -> int:
        """Merge components *a*, *b*; returns the surviving root."""
        if self._rank[a] < self._rank[b]:
            a, b = b, a
        self._parent[b] = a
        if self._rank[a] == self._rank[b]:
            self._rank[a] += 1
        # fold b's lightest-edge table into a's, keeping minima
        ea, eb = self._comp_edges[a], self._comp_edges[b]
        if len(eb) > len(ea):  # merge the smaller table
            ea, eb = eb, ea
            self._comp_edges[a] = ea
        for other, edge in eb.items():
            if self.find(other) == a:
                continue
            cur = ea.get(other)
            if cur is None or edge[2] < cur[2]:
                ea[other] = edge
        self._comp_edges[b] = dict()
        ea.pop(a, None)
        ea.pop(b, None)
        return a

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        return float(sum(w for _, _, w in self.mst_edges))

    def num_components(self) -> int:
        return sum(1 for x in range(self.graph.num_nodes) if self.find(x) == x)
