"""Parallel discrete-event simulation of a queueing network (ordered app).

The canonical *ordered* irregular algorithm the paper's §5 points to:
events carry timestamps and must commit chronologically.  The model is a
closed queueing network:

* ``num_stations`` stations on a random strongly-connected topology, each
  with its own exponential service rate;
* ``num_jobs`` jobs circulate (closed network); processing the departure
  of a job at station *s* routes it to a neighbour and schedules the next
  departure at ``t + Exp(rate)``;
* two events conflict iff they touch the same station (shared queue
  state);
* commits must be chronological — the ordered engine's barrier/horizon
  rules roll back speculation that ran ahead of (possibly re-created)
  earlier work.

Each job's event chain draws its randomness from a key ``(seed, job,
hop)``, so the set of events is a pure function of the seed — independent
of speculation and rollback order.  That gives a sharp oracle: the
optimistic committed history must equal the strictly sequential execution
(:func:`sequential_history`) event for event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppWorkload
from repro.errors import ApplicationError
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.policies import PriorityWorkset
from repro.runtime.task import Operator, Task
from repro.utils.rng import ensure_rng

__all__ = ["QueueingNetwork", "DiscreteEventSimulation", "sequential_history"]


@dataclass(frozen=True)
class Event:
    """Departure of *job* (on its *hop*-th move) from *station* at *time*."""

    time: float
    station: int
    job: int
    hop: int


class QueueingNetwork:
    """Static topology + per-station exponential service rates."""

    def __init__(self, num_stations: int, avg_degree: float = 3.0, seed=None):
        if num_stations < 2:
            raise ApplicationError(f"need at least 2 stations, got {num_stations}")
        rng = ensure_rng(seed)
        self.num_stations = num_stations
        self.rates = 0.5 + rng.random(num_stations)  # service rates in [0.5, 1.5)
        # ring + random chords: strongly connected, irregular degrees
        self.neighbors: list[list[int]] = [
            [(s + 1) % num_stations] for s in range(num_stations)
        ]
        extra = int(max(avg_degree - 1.0, 0.0) * num_stations)
        for _ in range(extra):
            u = int(rng.integers(0, num_stations))
            v = int(rng.integers(0, num_stations))
            if u != v and v not in self.neighbors[u]:
                self.neighbors[u].append(v)

    def route(self, station: int, draw: float) -> int:
        """Deterministic routing given a uniform draw in [0, 1)."""
        options = self.neighbors[station]
        return options[int(draw * len(options)) % len(options)]


def _draws(seed: int, job: int, hop: int) -> tuple[float, float]:
    """(service_draw, routing_draw) for one hop of one job's chain.

    Keyed by identity, not by execution order, so speculation and rollback
    cannot perturb the simulated system.
    """
    rng = np.random.default_rng((seed, job, hop))
    return float(rng.random()), float(rng.random())


class DiscreteEventSimulation(AppWorkload, Operator):
    """The PDES workload as an ordered-engine operator.

    Task payloads are :class:`Event` instances; priorities are event
    times.  The run drains once every job's chain passes ``end_time``.
    """

    #: events must commit chronologically — unordered commit orders are
    #: rejected by the registry/config layer for this app.
    requires_order = True

    def __init__(
        self,
        network: QueueingNetwork,
        num_jobs: int,
        end_time: float,
        seed: int = 0,
        *,
        workset=None,
    ):
        if num_jobs < 1:
            raise ApplicationError(f"need at least one job, got {num_jobs}")
        if end_time <= 0:
            raise ApplicationError(f"end time must be positive, got {end_time}")
        self.network = network
        self.end_time = float(end_time)
        self.seed = int(seed)
        self.history: list[Event] = []  # committed events, in commit order
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        init_rng = ensure_rng(seed)
        for job in range(num_jobs):
            station = int(init_rng.integers(0, network.num_stations))
            ev = self._make_event(0.0, station, job, hop=0)
            if ev is not None:
                self._seed_task(Task(payload=ev))

    # ------------------------------------------------------------------
    def _make_event(self, now: float, station: int, job: int, hop: int) -> "Event | None":
        service_draw, _ = _draws(self.seed, job, hop)
        dt = -np.log(1.0 - service_draw) / self.network.rates[station]
        t = now + float(dt)
        if t > self.end_time:
            return None
        return Event(time=t, station=station, job=job, hop=hop)

    def _successor(self, ev: Event) -> "Event | None":
        _, routing_draw = _draws(self.seed, ev.job, ev.hop)
        target = self.network.route(ev.station, routing_draw)
        return self._make_event(ev.time, target, ev.job, ev.hop + 1)

    # ------------------------------------------------------------------
    # Operator interface (for OrderedEngine)
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        ev: Event = task.payload
        _, routing_draw = _draws(self.seed, ev.job, ev.hop)
        target = self.network.route(ev.station, routing_draw)
        return {ev.station, target}

    def apply(self, task: Task) -> list[Task]:
        ev: Event = task.payload
        self.history.append(ev)
        nxt = self._successor(ev)
        return [Task(payload=nxt)] if nxt is not None else []

    # ------------------------------------------------------------------
    def _default_workset(self):
        return PriorityWorkset()

    def priority_of(self, task: Task) -> float:
        return task.payload.time

    def check_history_ordered(self) -> bool:
        """Committed history must be chronologically sorted."""
        times = [ev.time for ev in self.history]
        return all(b >= a for a, b in zip(times, times[1:]))


def sequential_history(
    network: QueueingNetwork, num_jobs: int, end_time: float, seed: int = 0
) -> list[Event]:
    """Oracle: the identical system executed strictly one event at a time."""
    sim = DiscreteEventSimulation(network, num_jobs, end_time, seed=seed)
    while sim.workset:
        _, task = sim.workset.take_earliest(1)[0]
        for new_task in sim.apply(task):
            sim.workset.add(new_task, new_task.payload.time)
    return sim.history
