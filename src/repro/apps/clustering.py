"""Agglomerative clustering as a work-set application (ref. [21]).

Bottom-up clustering of points in the plane: each task takes a live
cluster, finds its nearest neighbour, and merges the two when they are
within ``merge_threshold`` (centroid linkage).  Two merges conflict when
they involve a common cluster, so the conflict neighbourhood is the pair
of cluster ids — the same contraction pattern as Borůvka, but driven by
geometry, with parallelism that collapses as big clusters absorb the
plane.

Nearest-neighbour queries use a uniform grid over centroids (cells of the
merge threshold), so each query is O(1) expected for well-spread inputs.
"""

from __future__ import annotations

import math
from itertools import count

import numpy as np

from repro.apps.base import AppWorkload
from repro.errors import ApplicationError
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import Operator, Task
from repro.utils.rng import ensure_rng

__all__ = ["AgglomerativeClustering", "random_points"]


def random_points(n: int, clusters: int = 8, spread: float = 0.03, seed=None) -> np.ndarray:
    """Gaussian blobs on the unit square — a clusterable synthetic input."""
    if n < 1:
        raise ApplicationError(f"need at least one point, got {n}")
    if clusters < 1:
        raise ApplicationError(f"need at least one blob, got {clusters}")
    rng = ensure_rng(seed)
    centers = rng.random((clusters, 2)) * 0.8 + 0.1
    assign = rng.integers(0, clusters, size=n)
    pts = centers[assign] + rng.normal(scale=spread, size=(n, 2))
    return np.clip(pts, 0.0, 1.0)


class _Cluster:
    __slots__ = ("cid", "centroid", "size", "members")

    def __init__(self, cid: int, centroid: tuple[float, float], size: int, members: list[int]):
        self.cid = cid
        self.centroid = centroid
        self.size = size
        self.members = members


class AgglomerativeClustering(AppWorkload, Operator):
    """Centroid-linkage agglomeration under optimistic parallelism.

    Task payloads are cluster ids.  The run drains when every live cluster
    has no neighbour within ``merge_threshold``; the final partition is in
    :meth:`labels`, the merge history in :attr:`dendrogram` (child ids →
    parent id rows, in commit order).
    """

    def __init__(self, points: np.ndarray, merge_threshold: float = 0.05, *, workset=None):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ApplicationError(f"points must be (n, 2), got {pts.shape}")
        if merge_threshold <= 0:
            raise ApplicationError(f"merge threshold must be positive, got {merge_threshold}")
        self.points = pts
        self.merge_threshold = float(merge_threshold)
        self._ids = count()
        self._clusters: dict[int, _Cluster] = {}
        self._grid: dict[tuple[int, int], set[int]] = {}
        self.dendrogram: list[tuple[int, int, int, float]] = []  # (a, b, parent, dist)
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        self.stale_commits = 0
        for i, (x, y) in enumerate(pts):
            cid = next(self._ids)
            self._clusters[cid] = _Cluster(cid, (float(x), float(y)), 1, [i])
            self._grid_add(cid)
            self._seed_task(Task(payload=cid))

    # ------------------------------------------------------------------
    # centroid grid
    # ------------------------------------------------------------------
    def _cell(self, p: tuple[float, float]) -> tuple[int, int]:
        h = self.merge_threshold
        return (int(math.floor(p[0] / h)), int(math.floor(p[1] / h)))

    def _grid_add(self, cid: int) -> None:
        self._grid.setdefault(self._cell(self._clusters[cid].centroid), set()).add(cid)

    def _grid_remove(self, cid: int) -> None:
        cell = self._cell(self._clusters[cid].centroid)
        bucket = self._grid.get(cell)
        if bucket is not None:
            bucket.discard(cid)
            if not bucket:
                del self._grid[cell]

    def nearest_within_threshold(self, cid: int) -> tuple[int, float] | None:
        """Closest other live cluster within the merge threshold, if any."""
        c = self._clusters.get(cid)
        if c is None:
            return None
        cx, cy = self._cell(c.centroid)
        best: tuple[int, float] | None = None
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other in self._grid.get((cx + dx, cy + dy), ()):
                    if other == cid:
                        continue
                    oc = self._clusters[other].centroid
                    d = math.hypot(oc[0] - c.centroid[0], oc[1] - c.centroid[1])
                    if d <= self.merge_threshold and (best is None or d < best[1]):
                        best = (other, d)
        return best

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        cid = task.payload
        if cid not in self._clusters:
            return ()
        near = self.nearest_within_threshold(cid)
        if near is None:
            return ()
        return (cid, near[0])

    def apply(self, task: Task) -> list[Task]:
        cid = task.payload
        if cid not in self._clusters:
            self.stale_commits += 1
            return []
        near = self.nearest_within_threshold(cid)
        if near is None:
            return []  # isolated at this scale: cluster is final
        other, dist = near
        a, b = self._clusters[cid], self._clusters[other]
        parent = next(self._ids)
        total = a.size + b.size
        centroid = (
            (a.centroid[0] * a.size + b.centroid[0] * b.size) / total,
            (a.centroid[1] * a.size + b.centroid[1] * b.size) / total,
        )
        self._grid_remove(cid)
        self._grid_remove(other)
        del self._clusters[cid]
        del self._clusters[other]
        merged = _Cluster(parent, centroid, total, a.members + b.members)
        self._clusters[parent] = merged
        self._grid_add(parent)
        self.dendrogram.append((cid, other, parent, dist))
        return [Task(payload=parent)]

    # ------------------------------------------------------------------
    def num_clusters(self) -> int:
        return len(self._clusters)

    def labels(self) -> np.ndarray:
        """Cluster index (0..k-1, arbitrary order) for every input point."""
        out = np.empty(self.points.shape[0], dtype=np.int64)
        for label, cluster in enumerate(self._clusters.values()):
            for i in cluster.members:
                out[i] = label
        return out

    def total_mass(self) -> int:
        """Σ cluster sizes — must equal the input size at all times."""
        return sum(c.size for c in self._clusters.values())
