"""Delaunay mesh refinement as an amorphous data-parallel workload (§2).

The paper's running example: a triangulation contains *bad* triangles
(quality below a minimum-angle threshold); each bad triangle is fixed by
inserting its circumcenter, which retriangulates the *cavity* of triangles
whose circumcircle contains the new point, possibly creating new bad
triangles.  Two bad triangles can be processed in parallel iff their
cavities do not overlap — the conflict structure our runtime detects by
locking triangle ids (cavity plus rim).

Implementation notes:

* **Quality test** — minimum interior angle below ``min_angle`` degrees
  (Ruppert's measure), restricted to triangles whose vertices all lie in
  the refinement *domain* (the input bounding box).  Without the domain
  restriction, refining slivers along the convex hull pushes circumcenters
  outward into the ghost region forever.
* **Termination guards** — (i) insertion points falling outside the
  domain are replaced by the triangle centroid (which stays inside);
  (ii) a triangle whose shortest edge is below ``min_edge`` is accepted
  as-is; (iii) an insertion point closer than ``min_edge/4`` to an
  existing cavity vertex is abandoned (the triangle is recorded in
  :attr:`given_up`).  Guards (ii)+(iii) enforce a minimum point
  separation, so the number of insertions is bounded by a packing
  argument and the work-set provably drains.
* **Speculative fidelity** — the conflict neighbourhood is computed from
  the state at batch start (cavity ∪ rim).  Commits are applied
  sequentially; each commit revalidates (triangle still alive and still
  bad) and recomputes its cavity, so the mesh stays Delaunay even in the
  rare case where a committed task's true cavity drifted from the locked
  approximation.  Stale tasks (triangle destroyed by an earlier step)
  commit as no-ops, exactly like a Galois iteration that finds its work
  item gone.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.base import AppWorkload
from repro.apps.delaunay.geometry import min_angle_deg
from repro.apps.delaunay.triangulation import Triangulation
from repro.errors import ApplicationError, GeometryError
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import Operator, Task
from repro.utils.rng import ensure_rng

__all__ = ["RefinementWorkload", "random_input_mesh", "mesh_quality"]


def random_input_mesh(num_points: int, seed=None, jitter: float = 1e-6) -> Triangulation:
    """A triangulation of uniformly random points on the unit square.

    A tiny deterministic jitter avoids the measure-zero degeneracies
    (cocircular quadruples) the float predicates cannot break.
    """
    if num_points < 3:
        raise ApplicationError(f"need at least 3 points, got {num_points}")
    rng = ensure_rng(seed)
    pts = rng.random((num_points, 2)) + rng.normal(scale=jitter, size=(num_points, 2))
    return Triangulation.from_points(pts.tolist())


def mesh_quality(tri: Triangulation) -> dict[str, float]:
    """Quality summary of the real triangles: min/mean angle, count."""
    angles = [min_angle_deg(*tri.triangle_points(tid)) for tid in tri.triangle_ids()]
    if not angles:
        return {"triangles": 0.0, "min_angle": 0.0, "mean_min_angle": 0.0}
    arr = np.asarray(angles)
    return {
        "triangles": float(arr.shape[0]),
        "min_angle": float(arr.min()),
        "mean_min_angle": float(arr.mean()),
    }


class RefinementWorkload(AppWorkload, Operator):
    """Work-set formulation of Delaunay refinement.

    Also the :class:`~repro.runtime.task.Operator` for its own tasks (task
    payloads are triangle ids).  Use :meth:`make_engine` to wire it to a
    controller, or drive the engine manually.

    Parameters
    ----------
    mesh:
        The triangulation to refine, in place.
    min_angle:
        Quality threshold in degrees; triangles below it are *bad*.
    min_edge:
        Size floor: triangles already finer than this are accepted, and
        new points keep at least ``min_edge/4`` separation (termination).
    domain:
        ``(xmin, ymin, xmax, ymax)`` region to refine; defaults to the
        bounding box of the mesh's current real vertices.
    """

    def __init__(
        self,
        mesh: Triangulation,
        min_angle: float = 25.0,
        min_edge: float = 0.02,
        domain: tuple[float, float, float, float] | None = None,
        *,
        workset=None,
    ) -> None:
        if not 0.0 < min_angle < 60.0:
            raise ApplicationError(
                f"minimum-angle threshold must be in (0, 60)°, got {min_angle}"
            )
        if min_edge <= 0.0:
            raise ApplicationError(f"size floor must be positive, got {min_edge}")
        self.mesh = mesh
        self.min_angle = float(min_angle)
        self.min_edge = float(min_edge)
        if domain is None:
            real = [
                mesh.vertex(i)
                for i in range(mesh.num_vertices)
                if not mesh.is_ghost_vertex(i)
            ]
            if not real:
                raise ApplicationError("mesh has no real vertices to bound the domain")
            xs = [p[0] for p in real]
            ys = [p[1] for p in real]
            domain = (min(xs), min(ys), max(xs), max(ys))
        self.domain = domain
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        self.stale_commits = 0
        self.insertions = 0
        self.given_up: set[int] = set()
        for tid in mesh.triangle_ids():
            if self.is_bad(tid):
                self._seed_task(Task(payload=tid))

    # ------------------------------------------------------------------
    def _in_domain(self, p: tuple[float, float]) -> bool:
        xmin, ymin, xmax, ymax = self.domain
        return xmin <= p[0] <= xmax and ymin <= p[1] <= ymax

    def is_bad(self, tid: int) -> bool:
        """Bad = alive, real, inside the domain, skinny, above the floor."""
        if not self.mesh.has_triangle(tid) or self.mesh.is_ghost_triangle(tid):
            return False
        if tid in self.given_up:
            return False
        pts = self.mesh.triangle_points(tid)
        if not all(self._in_domain(p) for p in pts):
            return False
        if self.mesh.shortest_edge_of(tid) < self.min_edge:
            return False
        return min_angle_deg(*pts) < self.min_angle

    def _insertion_point(self, tid: int) -> tuple[float, float]:
        """Circumcenter when usable, else the centroid (always in-domain)."""
        try:
            p = self.mesh.circumcenter_of(tid)
            if self._in_domain(p):
                self.mesh.locate(p, hint=tid)  # raises if outside the hull
                return p
        except GeometryError:
            pass
        (ax, ay), (bx, by), (cx, cy) = self.mesh.triangle_points(tid)
        return ((ax + bx + cx) / 3.0, (ay + by + cy) / 3.0)

    def _too_close(self, p: tuple[float, float], cav: set[int]) -> bool:
        """Would *p* violate the minimum point separation?"""
        limit = self.min_edge / 4.0
        for tid in cav:
            for q in self.mesh.triangle_points(tid):
                if math.hypot(p[0] - q[0], p[1] - q[1]) < limit:
                    return True
        return False

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        tid = task.payload
        if not self.is_bad(tid):
            return ()  # stale or already-good: conflicts with nothing
        p = self._insertion_point(tid)
        cav = self.mesh.cavity(p, hint=tid)
        rim: set[int] = set()
        for t in cav:
            rim |= self.mesh.neighbors(t)
        return cav | rim

    def apply(self, task: Task) -> list[Task]:
        tid = task.payload
        if not self.is_bad(tid):
            self.stale_commits += 1
            return []
        p = self._insertion_point(tid)
        cav = self.mesh.cavity(p, hint=tid)
        if self._too_close(p, cav):
            self.given_up.add(tid)
            return []
        new_tris = self.mesh.insert_with_cavity(p, cav)
        self.insertions += 1
        return [Task(payload=t) for t in new_tris if self.is_bad(t)]

    # ------------------------------------------------------------------
    def remaining_bad(self) -> int:
        """Count of currently bad (and refinable) triangles."""
        return sum(1 for tid in self.mesh.triangle_ids() if self.is_bad(tid))

    def check_refined(self) -> bool:
        """No refinable bad triangle remains (guards may leave exceptions)."""
        return self.remaining_bad() == 0
