"""Incremental (Bowyer–Watson) Delaunay triangulation.

Built from scratch on the predicates in :mod:`repro.apps.delaunay.geometry`:

* a *super-triangle* enclosing the working area provides ghost vertices so
  every insertion point is interior;
* point location walks across edges toward the query (O(√n) expected on
  random inputs) with a linear-scan fallback;
* insertion digs the *cavity* — the connected set of triangles whose
  circumcircle contains the point — removes it, and fans new triangles
  from the point to the cavity rim (Bowyer–Watson).

The cavity is exactly the paper's conflict neighbourhood for mesh
refinement: two insertions conflict iff their cavities (plus rim) overlap,
which is what the refinement workload feeds to the runtime's lock-based
conflict detection.

Triangle ids are stable ints (never reused), so they double as lockable
data items.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from itertools import count

from repro.apps.delaunay.geometry import (
    Point,
    circumcenter,
    circumradius,
    in_circle,
    orient2d,
    point_in_triangle,
)
from repro.errors import GeometryError

__all__ = ["Triangulation"]


class Triangulation:
    """Mutable 2-D Delaunay triangulation with ghost super-triangle."""

    def __init__(self, bbox: tuple[float, float, float, float]):
        """Create an empty triangulation covering *bbox* = (xmin, ymin, xmax, ymax)."""
        xmin, ymin, xmax, ymax = bbox
        if not (xmin < xmax and ymin < ymax):
            raise GeometryError(f"degenerate bounding box {bbox}")
        self._verts: list[Point] = []
        self._tri_ids = count()
        # tri id -> (a, b, c) vertex indices, counter-clockwise
        self._tris: dict[int, tuple[int, int, int]] = {}
        # sorted vertex pair -> tri ids sharing that edge (1 on the hull, else 2)
        self._edge_tris: dict[tuple[int, int], set[int]] = {}
        self._last_tri: int | None = None
        # ghost super-triangle, comfortably containing the bbox circumcircle
        cx, cy = (xmin + xmax) / 2.0, (ymin + ymax) / 2.0
        r = 3.0 * max(xmax - xmin, ymax - ymin)
        self._ghosts = (
            self._add_vertex((cx - 2.0 * r, cy - r)),
            self._add_vertex((cx + 2.0 * r, cy - r)),
            self._add_vertex((cx, cy + 2.0 * r)),
        )
        self._make_triangle(*self._ghosts)

    # ------------------------------------------------------------------
    # low-level structure
    # ------------------------------------------------------------------
    def _add_vertex(self, p: Point) -> int:
        self._verts.append((float(p[0]), float(p[1])))
        return len(self._verts) - 1

    @staticmethod
    def _edge_key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _make_triangle(self, a: int, b: int, c: int) -> int:
        pa, pb, pc = self._verts[a], self._verts[b], self._verts[c]
        if orient2d(pa, pb, pc) < 0:
            b, c = c, b
        elif orient2d(pa, pb, pc) == 0:
            raise GeometryError(f"degenerate triangle on vertices {a}, {b}, {c}")
        tid = next(self._tri_ids)
        self._tris[tid] = (a, b, c)
        for u, v in ((a, b), (b, c), (c, a)):
            self._edge_tris.setdefault(self._edge_key(u, v), set()).add(tid)
        self._last_tri = tid
        return tid

    def _remove_triangle(self, tid: int) -> None:
        a, b, c = self._tris.pop(tid)
        for u, v in ((a, b), (b, c), (c, a)):
            key = self._edge_key(u, v)
            owners = self._edge_tris[key]
            owners.discard(tid)
            if not owners:
                del self._edge_tris[key]
        if self._last_tri == tid:
            self._last_tri = next(iter(self._tris), None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Vertex count, ghosts included."""
        return len(self._verts)

    def vertex(self, i: int) -> Point:
        return self._verts[i]

    def is_ghost_vertex(self, i: int) -> bool:
        return i in self._ghosts

    def has_triangle(self, tid: int) -> bool:
        return tid in self._tris

    def triangle_vertices(self, tid: int) -> tuple[int, int, int]:
        tri = self._tris.get(tid)
        if tri is None:
            raise GeometryError(f"triangle {tid} no longer exists")
        return tri

    def triangle_points(self, tid: int) -> tuple[Point, Point, Point]:
        a, b, c = self.triangle_vertices(tid)
        return (self._verts[a], self._verts[b], self._verts[c])

    def is_ghost_triangle(self, tid: int) -> bool:
        """True when the triangle touches a super-triangle vertex."""
        return any(v in self._ghosts for v in self.triangle_vertices(tid))

    def triangle_ids(self, include_ghost: bool = False) -> list[int]:
        """Ids of live triangles (by default only fully real ones)."""
        if include_ghost:
            return list(self._tris)
        return [t for t in self._tris if not self.is_ghost_triangle(t)]

    def neighbors(self, tid: int) -> set[int]:
        """Triangles sharing an edge with *tid*."""
        a, b, c = self.triangle_vertices(tid)
        out: set[int] = set()
        for u, v in ((a, b), (b, c), (c, a)):
            out |= self._edge_tris[self._edge_key(u, v)]
        out.discard(tid)
        return out

    def circumcenter_of(self, tid: int) -> Point:
        return circumcenter(*self.triangle_points(tid))

    def circumradius_of(self, tid: int) -> float:
        return circumradius(*self.triangle_points(tid))

    # ------------------------------------------------------------------
    # point location
    # ------------------------------------------------------------------
    def locate(self, p: Point, hint: int | None = None) -> int:
        """Find a triangle containing *p* by walking; O(√n) expected.

        Raises :class:`GeometryError` when *p* is outside the ghost hull.
        """
        start = hint if hint is not None and hint in self._tris else self._last_tri
        if start is None:
            raise GeometryError("triangulation has no triangles")
        tid = start
        visited = 0
        limit = 4 * len(self._tris) + 16
        while visited < limit:
            visited += 1
            a, b, c = self._tris[tid]
            pa, pb, pc = self._verts[a], self._verts[b], self._verts[c]
            moved = False
            for u, v, pu, pv in ((a, b, pa, pb), (b, c, pb, pc), (c, a, pc, pa)):
                if orient2d(pu, pv, p) < 0:  # p strictly outside this edge
                    owners = self._edge_tris[self._edge_key(u, v)]
                    nxt = next((t for t in owners if t != tid), None)
                    if nxt is None:
                        raise GeometryError(f"point {p} lies outside the triangulation")
                    tid = nxt
                    moved = True
                    break
            if not moved:
                return tid
        # extremely rare: numerical cycling — fall back to a full scan
        for t, (a, b, c) in self._tris.items():
            if point_in_triangle(self._verts[a], self._verts[b], self._verts[c], p):
                return t
        raise GeometryError(f"point {p} could not be located")

    # ------------------------------------------------------------------
    # cavity and insertion
    # ------------------------------------------------------------------
    def cavity(self, p: Point, hint: int | None = None) -> set[int]:
        """Triangle ids whose circumcircle contains *p* (connected BFS).

        Read-only: this is the conflict neighbourhood of inserting *p*.
        """
        start = self.locate(p, hint)
        cav = {start}
        frontier = [start]
        while frontier:
            tid = frontier.pop()
            for nxt in self.neighbors(tid):
                if nxt in cav:
                    continue
                pa, pb, pc = self.triangle_points(nxt)
                if in_circle(pa, pb, pc, p):
                    cav.add(nxt)
                    frontier.append(nxt)
        return cav

    def insert(self, p: Point, hint: int | None = None) -> list[int]:
        """Insert point *p*, returning the ids of the new triangles.

        Rejects (near-)duplicates of existing vertices: retriangulating a
        cavity around a coincident point would create degenerate
        triangles.
        """
        cav = self.cavity(p, hint)
        for tid in cav:
            for q in self.triangle_points(tid):
                if abs(p[0] - q[0]) < 1e-12 and abs(p[1] - q[1]) < 1e-12:
                    raise GeometryError(
                        f"point {p} duplicates an existing vertex {q}"
                    )
        return self._retriangulate(p, cav)

    def insert_with_cavity(self, p: Point, cav: set[int]) -> list[int]:
        """Insert *p* into a precomputed (still valid) cavity."""
        for tid in cav:
            if tid not in self._tris:
                raise GeometryError(f"cavity triangle {tid} no longer exists")
        return self._retriangulate(p, cav)

    def _retriangulate(self, p: Point, cav: set[int]) -> list[int]:
        # rim = edges of cavity triangles owned by exactly one cavity triangle
        rim: dict[tuple[int, int], int] = {}
        for tid in cav:
            a, b, c = self._tris[tid]
            for u, v in ((a, b), (b, c), (c, a)):
                key = self._edge_key(u, v)
                owners = self._edge_tris[key]
                if sum(1 for t in owners if t in cav) == 1:
                    rim[key] = tid
        for tid in list(cav):
            self._remove_triangle(tid)
        pi = self._add_vertex(p)
        new_ids = [self._make_triangle(pi, u, v) for (u, v) in rim]
        return new_ids

    # ------------------------------------------------------------------
    # bulk construction and validation
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point], margin: float = 0.1) -> "Triangulation":
        """Triangulate *points* (at least one required)."""
        pts = [(float(x), float(y)) for x, y in points]
        if not pts:
            raise GeometryError("need at least one point")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        dx = max(max(xs) - min(xs), 1.0)
        dy = max(max(ys) - min(ys), 1.0)
        tri = cls(
            (
                min(xs) - margin * dx,
                min(ys) - margin * dy,
                max(xs) + margin * dx,
                max(ys) + margin * dy,
            )
        )
        for p in pts:
            tri.insert(p)
        return tri

    def check_delaunay(self) -> bool:
        """Empty-circumcircle property over all real triangles (O(n·t))."""
        real_vertices = [
            i for i in range(len(self._verts)) if i not in self._ghosts
        ]
        for tid in self.triangle_ids(include_ghost=False):
            a, b, c = self._tris[tid]
            pa, pb, pc = self._verts[a], self._verts[b], self._verts[c]
            for i in real_vertices:
                if i in (a, b, c):
                    continue
                if in_circle(pa, pb, pc, self._verts[i]):
                    return False
        return True

    def check_consistency(self) -> bool:
        """Structural invariants: edge map symmetric, ≤2 owners per edge."""
        edge_count: dict[tuple[int, int], set[int]] = {}
        for tid, (a, b, c) in self._tris.items():
            if orient2d(self._verts[a], self._verts[b], self._verts[c]) <= 0:
                return False
            for u, v in ((a, b), (b, c), (c, a)):
                edge_count.setdefault(self._edge_key(u, v), set()).add(tid)
        if edge_count != self._edge_tris:
            return False
        return all(len(owners) <= 2 for owners in edge_count.values())

    def total_area(self, include_ghost: bool = False) -> float:
        """Sum of (real) triangle areas."""
        total = 0.0
        for tid in self.triangle_ids(include_ghost=include_ghost):
            pa, pb, pc = self.triangle_points(tid)
            total += abs(orient2d(pa, pb, pc)) / 2.0
        return total

    def __repr__(self) -> str:
        return (
            f"Triangulation(vertices={len(self._verts)}, "
            f"triangles={len(self._tris)})"
        )

    def to_svg(
        self,
        path,
        width: int = 600,
        highlight: "set[int] | None" = None,
        include_ghost: bool = False,
    ) -> None:
        """Render the (real) mesh as an SVG file.

        *highlight* triangle ids are filled (e.g. the current bad set or a
        cavity); everything else is drawn as wireframe.  The viewBox fits
        the real vertices, so ghost geometry never distorts the image.
        """
        tids = self.triangle_ids(include_ghost=include_ghost)
        real_pts = [
            self._verts[i]
            for i in range(len(self._verts))
            if include_ghost or i not in self._ghosts
        ]
        if not real_pts:
            raise GeometryError("nothing to draw: no real vertices")
        xs = [p[0] for p in real_pts]
        ys = [p[1] for p in real_pts]
        span_x = max(xs) - min(xs) or 1.0
        span_y = max(ys) - min(ys) or 1.0
        height = int(width * span_y / span_x)
        pad = 0.03 * max(span_x, span_y)

        def sx(x: float) -> float:
            return (x - min(xs) + pad) / (span_x + 2 * pad) * width

        def sy(y: float) -> float:
            return height - (y - min(ys) + pad) / (span_y + 2 * pad) * height

        highlight = highlight or set()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]
        for tid in tids:
            pa, pb, pc = self.triangle_points(tid)
            pts = f"{sx(pa[0]):.1f},{sy(pa[1]):.1f} {sx(pb[0]):.1f},{sy(pb[1]):.1f} {sx(pc[0]):.1f},{sy(pc[1]):.1f}"
            fill = "#D55E00" if tid in highlight else "none"
            opacity = ' fill-opacity="0.5"' if tid in highlight else ""
            parts.append(
                f'<polygon points="{pts}" fill="{fill}"{opacity} '
                f'stroke="#456" stroke-width="0.6"/>'
            )
        parts.append("</svg>")
        from pathlib import Path

        Path(path).write_text("\n".join(parts), encoding="utf-8")

    # convenience used by refinement
    def shortest_edge_of(self, tid: int) -> float:
        pa, pb, pc = self.triangle_points(tid)
        return min(
            math.hypot(pa[0] - pb[0], pa[1] - pb[1]),
            math.hypot(pb[0] - pc[0], pb[1] - pc[1]),
            math.hypot(pc[0] - pa[0], pc[1] - pa[1]),
        )
