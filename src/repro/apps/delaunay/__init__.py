"""Delaunay triangulation and mesh refinement (the paper's running example)."""

from repro.apps.delaunay.geometry import (
    circumcenter,
    circumradius,
    in_circle,
    min_angle_deg,
    orient2d,
    point_in_triangle,
    triangle_angles,
)
from repro.apps.delaunay.refinement import (
    RefinementWorkload,
    mesh_quality,
    random_input_mesh,
)
from repro.apps.delaunay.triangulation import Triangulation

__all__ = [
    "circumcenter",
    "circumradius",
    "in_circle",
    "min_angle_deg",
    "orient2d",
    "point_in_triangle",
    "triangle_angles",
    "RefinementWorkload",
    "mesh_quality",
    "random_input_mesh",
    "Triangulation",
]
