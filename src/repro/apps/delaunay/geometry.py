"""2-D geometric predicates for Delaunay triangulation.

Float predicates with an explicit tolerance: adequate for the randomly
perturbed inputs our workload generator produces (we jitter grid inputs
rather than implement exact arithmetic — the goal is a realistic irregular
*workload*, not a computational-geometry library).  Degeneracies that
survive the tolerance raise :class:`GeometryError` instead of corrupting
the triangulation.
"""

from __future__ import annotations

import math

from repro.errors import GeometryError

__all__ = [
    "orient2d",
    "in_circle",
    "circumcenter",
    "circumradius",
    "triangle_angles",
    "min_angle_deg",
    "point_in_triangle",
    "EPS",
]

Point = tuple[float, float]

#: Relative tolerance of the predicates.
EPS = 1e-12


def orient2d(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle *abc* (> 0 ⇔ counter-clockwise)."""
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def in_circle(a: Point, b: Point, c: Point, p: Point) -> bool:
    """True iff *p* lies strictly inside the circumcircle of ccw *abc*.

    Standard 3×3 lifted determinant; *abc* must be counter-clockwise
    (callers normalise orientation once at triangle creation).
    """
    adx, ady = a[0] - p[0], a[1] - p[1]
    bdx, bdy = b[0] - p[0], b[1] - p[1]
    cdx, cdy = c[0] - p[0], c[1] - p[1]
    ad = adx * adx + ady * ady
    bd = bdx * bdx + bdy * bdy
    cd = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd - bd * cdy)
        - ady * (bdx * cd - bd * cdx)
        + ad * (bdx * cdy - bdy * cdx)
    )
    # scale-aware tolerance: determinant entries are O(L²), det is O(L⁴)
    scale = max(abs(ad), abs(bd), abs(cd), 1e-300)
    return det > EPS * scale * scale


def circumcenter(a: Point, b: Point, c: Point) -> Point:
    """Circumcenter of triangle *abc*; raises on (near-)collinear input."""
    d = 2.0 * orient2d(a, b, c)
    span = max(
        abs(a[0] - c[0]), abs(a[1] - c[1]), abs(b[0] - c[0]), abs(b[1] - c[1]), 1e-300
    )
    if abs(d) <= EPS * span * span:
        raise GeometryError(f"collinear points {a}, {b}, {c} have no circumcenter")
    a2 = a[0] * a[0] + a[1] * a[1]
    b2 = b[0] * b[0] + b[1] * b[1]
    c2 = c[0] * c[0] + c[1] * c[1]
    ux = (a2 * (b[1] - c[1]) + b2 * (c[1] - a[1]) + c2 * (a[1] - b[1])) / d
    uy = (a2 * (c[0] - b[0]) + b2 * (a[0] - c[0]) + c2 * (b[0] - a[0])) / d
    return (ux, uy)


def circumradius(a: Point, b: Point, c: Point) -> float:
    """Circumradius of triangle *abc*."""
    cx, cy = circumcenter(a, b, c)
    return math.hypot(a[0] - cx, a[1] - cy)


def _side_lengths(a: Point, b: Point, c: Point) -> tuple[float, float, float]:
    return (
        math.hypot(b[0] - c[0], b[1] - c[1]),  # opposite a
        math.hypot(a[0] - c[0], a[1] - c[1]),  # opposite b
        math.hypot(a[0] - b[0], a[1] - b[1]),  # opposite c
    )


def triangle_angles(a: Point, b: Point, c: Point) -> tuple[float, float, float]:
    """Interior angles (radians) at *a*, *b*, *c* via the law of cosines."""
    la, lb, lc = _side_lengths(a, b, c)
    if min(la, lb, lc) <= 0.0:
        raise GeometryError(f"degenerate triangle {a}, {b}, {c}")

    def angle(opp: float, s1: float, s2: float) -> float:
        cos_val = (s1 * s1 + s2 * s2 - opp * opp) / (2.0 * s1 * s2)
        return math.acos(max(-1.0, min(1.0, cos_val)))

    return (angle(la, lb, lc), angle(lb, la, lc), angle(lc, la, lb))


def min_angle_deg(a: Point, b: Point, c: Point) -> float:
    """Smallest interior angle in degrees (the refinement quality measure)."""
    return math.degrees(min(triangle_angles(a, b, c)))


def point_in_triangle(a: Point, b: Point, c: Point, p: Point) -> bool:
    """True iff *p* is inside or on the boundary of ccw triangle *abc*."""
    span = max(abs(b[0] - a[0]), abs(b[1] - a[1]), abs(c[0] - a[0]), abs(c[1] - a[1]), 1e-300)
    tol = -EPS * span * span
    return (
        orient2d(a, b, p) >= tol
        and orient2d(b, c, p) >= tol
        and orient2d(c, a, p) >= tol
    )
