"""Synthetic parallelism profiles and scheduled replay workloads (§4.1).

The paper argues controllers must track *abrupt* changes in available
parallelism (Delaunay refinement: no parallelism → ~1000 parallel tasks in
~30 temporal steps, per LonESTAR [15]).  To exercise exactly that, a
:class:`ScheduledReplayWorkload` runs a sequence of *phases*; each phase
is a stationary CC graph held for a fixed number of steps, and at phase
boundaries the graph (hence ``r̄(m)`` and the optimum ``μ``) switches
instantly under the controller's feet.

Phase graphs are built by :func:`graph_for_parallelism`: a union of ``p``
cliques over ``n`` nodes has expected maximal-IS size ≈ ``p``, so ``p``
*is* the available parallelism — the worst-case family of Thm. 2 doubling
as a parallelism dial.

Profile builders return phase lists: :func:`step_profile`,
:func:`ramp_profile`, :func:`spike_profile` and
:func:`delaunay_burst_profile` (the 0 → peak in ~30 steps shape).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ApplicationError
from repro.graph.ccgraph import CCGraph
from repro.graph.generators import union_of_cliques
from repro.runtime.conflict import BatchOutcome, ConflictPolicy
from repro.runtime.task import Operator, Task
from repro.runtime.workset import RandomWorkset

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # layering: apps sit below the engine wiring
    from repro.runtime.engine import OptimisticEngine

__all__ = [
    "Phase",
    "graph_for_parallelism",
    "step_profile",
    "ramp_profile",
    "spike_profile",
    "delaunay_burst_profile",
    "ScheduledReplayWorkload",
]


@dataclass(frozen=True)
class Phase:
    """One stationary stretch of a scheduled workload."""

    duration: int
    graph: CCGraph
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ApplicationError(f"phase duration must be >= 1, got {self.duration}")
        if self.graph.num_nodes < 1:
            raise ApplicationError("phase graph must have at least one node")


def graph_for_parallelism(parallelism: int, total_tasks: int) -> CCGraph:
    """A CC graph over ``total_tasks`` nodes with ≈ *parallelism* available.

    ``p`` disjoint cliques of balanced sizes: every maximal independent set
    has exactly one node per clique, so available parallelism is exactly
    ``p`` regardless of the scheduler.
    """
    if parallelism < 1:
        raise ApplicationError(f"parallelism must be >= 1, got {parallelism}")
    if total_tasks < parallelism:
        raise ApplicationError(
            f"need at least {parallelism} tasks for parallelism {parallelism}, "
            f"got {total_tasks}"
        )
    base = total_tasks // parallelism
    extra = total_tasks % parallelism
    g = CCGraph()
    for k in range(parallelism):
        size = base + (1 if k < extra else 0)
        ids = [g.add_node() for _ in range(size)]
        for i, u in enumerate(ids):
            for v in ids[i + 1 :]:
                g.add_edge(u, v)
    return g


def step_profile(
    low: int, high: int, total_tasks: int, steps_per_phase: int = 60
) -> list[Phase]:
    """low → high → low parallelism, abrupt switches."""
    return [
        Phase(steps_per_phase, graph_for_parallelism(low, total_tasks), "low"),
        Phase(steps_per_phase, graph_for_parallelism(high, total_tasks), "high"),
        Phase(steps_per_phase, graph_for_parallelism(low, total_tasks), "low"),
    ]


def ramp_profile(
    low: int, high: int, total_tasks: int, stages: int = 6, steps_per_stage: int = 20
) -> list[Phase]:
    """Geometric staircase from *low* up to *high* parallelism."""
    if stages < 2:
        raise ApplicationError(f"need >= 2 ramp stages, got {stages}")
    levels = np.unique(
        np.geomspace(max(low, 1), max(high, 1), stages).astype(int)
    )
    return [
        Phase(steps_per_stage, graph_for_parallelism(int(p), total_tasks), f"p={int(p)}")
        for p in levels
    ]


def spike_profile(
    base: int, peak: int, total_tasks: int, base_steps: int = 50, peak_steps: int = 12
) -> list[Phase]:
    """Short burst of parallelism in an otherwise serial workload."""
    return [
        Phase(base_steps, graph_for_parallelism(base, total_tasks), "base"),
        Phase(peak_steps, graph_for_parallelism(peak, total_tasks), "spike"),
        Phase(base_steps, graph_for_parallelism(base, total_tasks), "base"),
    ]


def delaunay_burst_profile(
    peak: int = 1000, total_tasks: int = 4000, rise_steps: int = 30, hold_steps: int = 60
) -> list[Phase]:
    """The [15] Delaunay shape: ~no parallelism to *peak* in *rise_steps*.

    The rise is piecewise-stationary in ~6 sub-stages (graphs cannot morph
    continuously under replay), reaching *peak* after *rise_steps* steps.
    """
    stages = 6
    per = max(rise_steps // stages, 1)
    levels = np.unique(np.geomspace(2, peak, stages).astype(int))
    phases = [
        Phase(per, graph_for_parallelism(int(p), total_tasks), f"rise p={int(p)}")
        for p in levels
    ]
    phases.append(Phase(hold_steps, graph_for_parallelism(peak, total_tasks), "hold"))
    return phases


class _DelegatingGraphPolicy(ConflictPolicy):
    """Resolves against the workload's *current* phase graph."""

    def __init__(self, workload: "ScheduledReplayWorkload"):
        self._workload = workload

    def resolve(self, batch, operator) -> BatchOutcome:
        graph = self._workload.graph
        committed_nodes: set[int] = set()
        committed: list[Task] = []
        aborted: list[Task] = []
        for task in batch:
            node = task.payload
            if committed_nodes.isdisjoint(graph.neighbors(node)):
                committed_nodes.add(node)
                committed.append(task)
            else:
                aborted.append(task)
        return BatchOutcome(committed, aborted)


class _ReplayOperator(Operator):
    def __init__(self, workload: "ScheduledReplayWorkload"):
        self._workload = workload

    def neighborhood(self, task: Task):
        return self._workload.graph.neighbors(task.payload)

    def apply(self, task: Task) -> list[Task]:
        return [task]  # stationary within a phase


class ScheduledReplayWorkload:
    """Piecewise-stationary replay over a phase schedule.

    Wire with :meth:`build_engine`; the phase clock advances through the
    engine's ``step_hook``.  After the last phase the schedule holds the
    final graph indefinitely (cap the run with ``max_steps``).
    """

    def __init__(self, phases: list[Phase]):
        if not phases:
            raise ApplicationError("schedule needs at least one phase")
        self.phases = list(phases)
        self._phase_idx = 0
        self._steps_left = self.phases[0].duration
        self.graph = self.phases[0].graph
        self.operator: Operator = _ReplayOperator(self)
        self.policy: ConflictPolicy = _DelegatingGraphPolicy(self)
        self.workset = RandomWorkset()
        self.transitions: list[int] = []  # engine steps where phases switched
        self._fill_workset()

    def _fill_workset(self) -> None:
        self.workset = RandomWorkset()
        for node in self.graph.nodes():
            self.workset.add(Task(payload=node))

    @property
    def current_phase(self) -> Phase:
        return self.phases[self._phase_idx]

    def total_steps(self) -> int:
        """Length of the full schedule in engine steps."""
        return sum(p.duration for p in self.phases)

    def _advance(self, engine: "OptimisticEngine", stats) -> None:
        self._steps_left -= 1
        if self._steps_left > 0 or self._phase_idx + 1 >= len(self.phases):
            return
        self._phase_idx += 1
        nxt = self.phases[self._phase_idx]
        self._steps_left = nxt.duration
        self.graph = nxt.graph
        self._fill_workset()
        engine.workset = self.workset
        self.transitions.append(stats.step + 1)

    def build_engine(self, controller, seed=None) -> "OptimisticEngine":
        """Engine whose work-set and conflicts follow the schedule."""
        from repro.runtime.engine import OptimisticEngine

        return OptimisticEngine(
            workset=self.workset,
            operator=self.operator,
            policy=self.policy,
            controller=controller,
            seed=seed,
            step_hook=self._advance,
        )
