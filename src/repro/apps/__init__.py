"""Irregular applications: the workloads that drive the controller."""

from repro.apps.boruvka import (
    BoruvkaMST,
    WeightedGraph,
    kruskal_weight,
    random_weighted_graph,
)
from repro.apps.clustering import AgglomerativeClustering, random_points
from repro.apps.coloring import GreedyColoring, independent_set_via_coloring
from repro.apps.components import LabelPropagation
from repro.apps.maxflow import (
    FlowNetwork,
    PreflowPush,
    random_flow_network,
    reference_max_flow,
)
from repro.apps.des import (
    DiscreteEventSimulation,
    QueueingNetwork,
    sequential_history,
)
from repro.apps.delaunay import (
    RefinementWorkload,
    Triangulation,
    mesh_quality,
    random_input_mesh,
)
from repro.apps.profiles import (
    Phase,
    ScheduledReplayWorkload,
    delaunay_burst_profile,
    graph_for_parallelism,
    ramp_profile,
    spike_profile,
    step_profile,
)
from repro.apps.sp import SatInstance, SurveyPropagation, random_ksat

__all__ = [
    "BoruvkaMST",
    "WeightedGraph",
    "kruskal_weight",
    "random_weighted_graph",
    "AgglomerativeClustering",
    "random_points",
    "GreedyColoring",
    "independent_set_via_coloring",
    "DiscreteEventSimulation",
    "QueueingNetwork",
    "sequential_history",
    "LabelPropagation",
    "FlowNetwork",
    "PreflowPush",
    "random_flow_network",
    "reference_max_flow",
    "RefinementWorkload",
    "Triangulation",
    "mesh_quality",
    "random_input_mesh",
    "Phase",
    "ScheduledReplayWorkload",
    "delaunay_burst_profile",
    "graph_for_parallelism",
    "ramp_profile",
    "spike_profile",
    "step_profile",
    "SatInstance",
    "SurveyPropagation",
    "random_ksat",
]
