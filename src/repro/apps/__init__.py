"""Irregular applications: the workloads that drive the controller.

Every application is an :class:`~repro.apps.base.AppWorkload` — it
speaks the core workload protocol (``workset`` / ``operator`` /
``policy`` / :meth:`~repro.apps.base.AppWorkload.make_engine`) and is
registered as a named workload (see :mod:`repro.apps.catalog`), so
``repro.api.run(RunConfig(workload="boruvka"))`` runs it through the
full pipeline: any commit-order policy, selection backend, and the
observability / sweep / sharding machinery.
"""

from repro.apps.base import AppWorkload
from repro.apps.boruvka import (
    BoruvkaMST,
    WeightedGraph,
    kruskal_weight,
    random_weighted_graph,
)
from repro.apps.clustering import AgglomerativeClustering, random_points
from repro.apps.coloring import GreedyColoring, independent_set_via_coloring
from repro.apps.components import LabelPropagation
from repro.apps.maxflow import (
    FlowNetwork,
    PreflowPush,
    random_flow_network,
    reference_max_flow,
)
from repro.apps.des import (
    DiscreteEventSimulation,
    QueueingNetwork,
    sequential_history,
)
from repro.apps.delaunay import (
    RefinementWorkload,
    Triangulation,
    mesh_quality,
    random_input_mesh,
)
from repro.apps.profiles import (
    Phase,
    ScheduledReplayWorkload,
    delaunay_burst_profile,
    graph_for_parallelism,
    ramp_profile,
    spike_profile,
    step_profile,
)
from repro.apps.catalog import (
    APP_WORKLOADS,
    DEFAULT_SCALES,
    ORDERED_APPS,
    build_app_input,
    check_order_combination,
    make_app_workload,
    workload_from_input,
)
from repro.apps.sp import SatInstance, SurveyPropagation, random_ksat

__all__ = [
    "AppWorkload",
    "APP_WORKLOADS",
    "DEFAULT_SCALES",
    "ORDERED_APPS",
    "build_app_input",
    "check_order_combination",
    "make_app_workload",
    "workload_from_input",
    "BoruvkaMST",
    "WeightedGraph",
    "kruskal_weight",
    "random_weighted_graph",
    "AgglomerativeClustering",
    "random_points",
    "GreedyColoring",
    "independent_set_via_coloring",
    "DiscreteEventSimulation",
    "QueueingNetwork",
    "sequential_history",
    "LabelPropagation",
    "FlowNetwork",
    "PreflowPush",
    "random_flow_network",
    "reference_max_flow",
    "RefinementWorkload",
    "Triangulation",
    "mesh_quality",
    "random_input_mesh",
    "Phase",
    "ScheduledReplayWorkload",
    "delaunay_burst_profile",
    "graph_for_parallelism",
    "ramp_profile",
    "spike_profile",
    "step_profile",
    "SatInstance",
    "SurveyPropagation",
    "random_ksat",
]
