"""Survey propagation on random k-SAT as a work-set application (ref. [5]).

Message-passing on the clause–variable factor graph: each clause ``a``
sends each of its variables ``i`` a *survey* ``η_{a→i}`` — the probability
that ``a`` warns ``i`` to satisfy it.  The asynchronous update of one
clause reads the surveys of all clauses sharing its variables and writes
its own outgoing surveys; tasks therefore conflict when their clauses
share a variable, a bounded-degree, locality-rich conflict structure very
different from mesh refinement's.

Update rule (standard SP; Braunstein–Mézard–Zecchina):

    η_{a→i} = Π_{j∈a∖i} [ Π^u_{j→a} / (Π^u_{j→a} + Π^s_{j→a} + Π^0_{j→a}) ]

where, with ``V^u_a(j)`` the clauses where ``j`` appears with the
*opposite* literal sign to its sign in ``a`` and ``V^s_a(j)`` those with
the *same* sign (excluding ``a`` itself):

    Π^u_{j→a} = [1 − Π_{b∈V^u}(1−η_{b→j})] · Π_{b∈V^s}(1−η_{b→j})
    Π^s_{j→a} = [1 − Π_{b∈V^s}(1−η_{b→j})] · Π_{b∈V^u}(1−η_{b→j})
    Π^0_{j→a} = Π_{b∈V^s∪V^u}(1−η_{b→j})

A clause whose surveys move more than ``tol`` re-enqueues the clauses that
read them; the work-set drains at a fixed point.  On instances without
contradictions all surveys converge to 0 (the paranoid-free fixed point),
which the tests verify.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.apps.base import AppWorkload
from repro.errors import ApplicationError
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import Operator, Task
from repro.utils.rng import ensure_rng

__all__ = ["SatInstance", "random_ksat", "SurveyPropagation"]

Clause = tuple[int, ...]  # non-zero ints, DIMACS-style: -3 == ¬x₃ (1-based)


class SatInstance:
    """A CNF formula in DIMACS-like integer-literal form."""

    def __init__(self, num_vars: int, clauses: Sequence[Clause]):
        if num_vars < 1:
            raise ApplicationError(f"need at least one variable, got {num_vars}")
        self.num_vars = num_vars
        self.clauses: list[Clause] = []
        for idx, clause in enumerate(clauses):
            if not clause:
                raise ApplicationError(f"clause {idx} is empty")
            for lit in clause:
                if lit == 0 or abs(lit) > num_vars:
                    raise ApplicationError(f"clause {idx}: bad literal {lit}")
            if len({abs(lit) for lit in clause}) != len(clause):
                raise ApplicationError(f"clause {idx}: repeated variable")
            self.clauses.append(tuple(clause))

    def __repr__(self) -> str:
        return f"SatInstance(vars={self.num_vars}, clauses={len(self.clauses)})"


def random_ksat(num_vars: int, num_clauses: int, k: int = 3, seed=None) -> SatInstance:
    """Uniform random k-SAT (distinct variables per clause, random signs)."""
    if k < 1 or k > num_vars:
        raise ApplicationError(f"clause width k={k} out of range [1, {num_vars}]")
    rng = ensure_rng(seed)
    clauses: list[Clause] = []
    for _ in range(num_clauses):
        vars_ = rng.choice(num_vars, size=k, replace=False) + 1
        signs = rng.integers(0, 2, size=k) * 2 - 1
        clauses.append(tuple(int(v * s) for v, s in zip(vars_, signs)))
    return SatInstance(num_vars, clauses)


class SurveyPropagation(AppWorkload, Operator):
    """Asynchronous SP message passing under optimistic parallelism.

    Task payloads are clause indices.  Surveys live in ``eta[(a, var)]``.
    """

    def __init__(self, instance: SatInstance, tol: float = 1e-3, damping: float = 0.0,
                 init: float = 0.5, max_updates: int | None = None, seed=None,
                 *, workset=None):
        if not 0.0 <= damping < 1.0:
            raise ApplicationError(f"damping must be in [0, 1), got {damping}")
        if tol <= 0:
            raise ApplicationError(f"tolerance must be positive, got {tol}")
        if not 0.0 <= init <= 1.0:
            raise ApplicationError(f"initial survey must be in [0, 1], got {init}")
        self.instance = instance
        self.tol = float(tol)
        self.damping = float(damping)
        rng = ensure_rng(seed)
        # clauses touching each variable, with the literal sign used
        self.var_clauses: list[list[tuple[int, int]]] = [
            [] for _ in range(instance.num_vars + 1)
        ]
        for a, clause in enumerate(instance.clauses):
            for lit in clause:
                self.var_clauses[abs(lit)].append((a, 1 if lit > 0 else -1))
        self.eta: dict[tuple[int, int], float] = {}
        for a, clause in enumerate(instance.clauses):
            for lit in clause:
                jitter = 0.0 if init in (0.0, 1.0) else float(rng.uniform(-0.1, 0.1))
                self.eta[(a, abs(lit))] = min(max(init + jitter, 0.0), 1.0)
        self.updates_done = 0
        self.max_updates = max_updates
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        self._enqueued: set[int] = set()
        for a in range(len(instance.clauses)):
            self._seed_task(Task(payload=a))
            self._enqueued.add(a)

    # ------------------------------------------------------------------
    def _pi_products(self, j: int, a: int, sign_in_a: int) -> tuple[float, float, float]:
        """(Π^u, Π^s, Π^0) for variable *j* with respect to clause *a*."""
        prod_same = 1.0
        prod_opp = 1.0
        for b, sign in self.var_clauses[j]:
            if b == a:
                continue
            factor = 1.0 - self.eta[(b, j)]
            if sign == sign_in_a:
                prod_same *= factor
            else:
                prod_opp *= factor
        pi_u = (1.0 - prod_opp) * prod_same
        pi_s = (1.0 - prod_same) * prod_opp
        pi_0 = prod_same * prod_opp
        return pi_u, pi_s, pi_0

    def _new_survey(self, a: int, i: int) -> float:
        """Recompute η_{a→i} from the current neighbour surveys."""
        clause = self.instance.clauses[a]
        out = 1.0
        for lit in clause:
            j = abs(lit)
            if j == i:
                continue
            sign = 1 if lit > 0 else -1
            pi_u, pi_s, pi_0 = self._pi_products(j, a, sign)
            denom = pi_u + pi_s + pi_0
            out *= pi_u / denom if denom > 0 else 0.0
        return out

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        a = task.payload
        return {abs(lit) for lit in self.instance.clauses[a]}

    def apply(self, task: Task) -> list[Task]:
        a = task.payload
        self._enqueued.discard(a)
        if self.max_updates is not None and self.updates_done >= self.max_updates:
            return []
        self.updates_done += 1
        changed_vars: list[int] = []
        for lit in self.instance.clauses[a]:
            i = abs(lit)
            new = self._new_survey(a, i)
            old = self.eta[(a, i)]
            value = self.damping * old + (1.0 - self.damping) * new
            if abs(value - old) > self.tol:
                changed_vars.append(i)
            self.eta[(a, i)] = value
        if not changed_vars:
            return []
        out: list[Task] = []
        for i in changed_vars:
            for b, _sign in self.var_clauses[i]:
                if b != a and b not in self._enqueued:
                    self._enqueued.add(b)
                    out.append(Task(payload=b))
        return out

    # ------------------------------------------------------------------
    def max_residual(self) -> float:
        """Largest one-step survey change if everything updated now."""
        worst = 0.0
        for a, clause in enumerate(self.instance.clauses):
            for lit in clause:
                i = abs(lit)
                worst = max(worst, abs(self._new_survey(a, i) - self.eta[(a, i)]))
        return worst

    def biases(self) -> np.ndarray:
        """Per-variable polarisation in [-1, 1] from incoming surveys."""
        out = np.zeros(self.instance.num_vars + 1)
        for j in range(1, self.instance.num_vars + 1):
            prod_plus = 1.0
            prod_minus = 1.0
            for b, sign in self.var_clauses[j]:
                factor = 1.0 - self.eta[(b, j)]
                if sign > 0:
                    prod_plus *= factor
                else:
                    prod_minus *= factor
            w_plus = (1.0 - prod_plus) * prod_minus
            w_minus = (1.0 - prod_minus) * prod_plus
            denom = w_plus + w_minus + prod_plus * prod_minus
            out[j] = (w_minus - w_plus) / denom if denom > 0 else 0.0
        return out[1:]
