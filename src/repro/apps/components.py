"""Connected components by label propagation — the lightest irregular app.

Every node starts as its own label; a task takes a node, adopts the
minimum label in its closed neighbourhood, and wakes the neighbours it
can still improve.  The fixpoint labels each component with its minimum
node id.  Conflicts are closed-neighbourhood overlaps, so the *conflict
density tracks the label frontier*: heavy at the start (every node
active), vanishing as the labels converge — a third distinct parallelism
decay shape next to Borůvka's contraction and refinement's cavities.

Oracle: labels equal networkx's connected components.
"""

from __future__ import annotations

from repro.apps.base import AppWorkload
from repro.errors import ApplicationError
from repro.graph.ccgraph import CCGraph
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import Operator, Task

__all__ = ["LabelPropagation"]


class LabelPropagation(AppWorkload, Operator):
    """Min-label propagation over an undirected :class:`CCGraph`."""

    def __init__(self, graph: CCGraph, *, workset=None):
        if graph.num_nodes == 0:
            raise ApplicationError("graph has no nodes to label")
        self.graph = graph
        self.labels: dict[int, int] = {u: u for u in graph.nodes()}
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        self.updates = 0
        self.wasted_visits = 0
        self._enqueued: set[int] = set()
        for u in graph.nodes():
            self._enqueued.add(u)
            self._seed_task(Task(payload=u))

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        u = task.payload
        return {u} | set(self.graph.neighbors(u))

    def apply(self, task: Task) -> list[Task]:
        u = task.payload
        self._enqueued.discard(u)
        neigh = self.graph.neighbors(u)
        best = min((self.labels[v] for v in neigh), default=self.labels[u])
        best = min(best, self.labels[u])
        if best == self.labels[u]:
            improved_any = False
        else:
            self.labels[u] = best
            improved_any = True
            self.updates += 1
        out: list[Task] = []
        for v in neigh:
            if self.labels[v] > best and v not in self._enqueued:
                self._enqueued.add(v)
                out.append(Task(payload=v))
        if not improved_any and not out:
            self.wasted_visits += 1
        return out

    # ------------------------------------------------------------------
    def num_components(self) -> int:
        return len(set(self.labels.values()))

    def check_against_networkx(self) -> bool:
        """Labels must partition exactly into networkx's components."""
        import networkx as nx

        nxg = self.graph.to_networkx()
        for comp in nx.connected_components(nxg):
            expected = min(comp)
            if any(self.labels[u] != expected for u in comp):
                return False
        return True
