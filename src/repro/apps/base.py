"""Shared workload plumbing for the application layer.

Historically every app constructed its engine directly: eight bespoke
``build_engine`` methods with drifting signatures (``des.py`` took
``engine=`` where the others took ``step_hook=``), all hard-wired to
:class:`~repro.runtime.engine.OptimisticEngine` /
:class:`~repro.runtime.ordered.OrderedEngine` — which meant no app could
run under a :class:`~repro.runtime.core.OrderPolicy`, a selection
backend, or the sharded runtime.

:class:`AppWorkload` collapses that onto the workload protocol the core
stack already speaks (``workset`` / ``operator`` / ``policy`` plus
:meth:`make_engine`), the same shape as
:class:`~repro.runtime.workloads.GraphWorkloadBase`:

* apps accept an injected ``workset=`` (how ``repro.api.run`` hands them
  the work-set matching ``config.order`` / ``config.select``), defaulting
  to the historical :class:`~repro.runtime.workset.RandomWorkset` so
  direct construction stays byte-identical;
* ordered-only apps set :attr:`requires_order` and override
  :meth:`priority_of`; the config/registry layer rejects unordered runs
  of such apps with an actionable error;
* the historical ``build_engine`` survives as a thin deprecation shim
  over :meth:`make_engine`, now with one unified signature accepting
  *both* ``step_hook=`` and ``engine=`` everywhere.

Engine classes are imported at call time only: the apps layer sits below
the point where engines are wired together, and
``tools/check_layers.py`` forbids module-level ``runtime.engine`` /
``runtime.ordered`` imports from ``repro.apps``.
"""

from __future__ import annotations

import warnings

from repro.runtime.task import Task
from repro.runtime.workset import RandomWorkset

__all__ = ["AppWorkload"]


class AppWorkload:
    """Mixin giving an application the core-stack workload protocol.

    Subclasses call :meth:`_init_workset` early in ``__init__`` (before
    seeding tasks), then seed via :meth:`_seed_task`, and expose
    ``self.policy``.  Everything else — the ``operator`` property,
    :meth:`make_engine`, the deprecated :meth:`build_engine` shim — is
    inherited.
    """

    #: ordered-only apps (commits must respect priorities) set this True;
    #: the registry/config layer then rejects unordered commit orders.
    requires_order: bool = False

    # ------------------------------------------------------------------
    # work-set plumbing
    # ------------------------------------------------------------------
    def _init_workset(self, workset=None) -> None:
        """Adopt the injected work-set, or the historical default.

        ``None`` keeps the app byte-identical to its pre-registry
        behaviour: an unordered :class:`RandomWorkset` (or, for
        ``requires_order`` apps, a priority work-set — those override
        :meth:`_default_workset`).
        """
        self.workset = workset if workset is not None else self._default_workset()
        # priority work-sets take (task, priority); plain ones take (task)
        self._priority_seeding = hasattr(self.workset, "take_earliest")

    def _default_workset(self):
        return RandomWorkset()

    def _seed_task(self, task: Task) -> None:
        """Add *task* to the work-set, priority-aware when needed."""
        if self._priority_seeding:
            self.workset.add(task, self.priority_of(task))
        else:
            self.workset.add(task)

    # ------------------------------------------------------------------
    # workload protocol
    # ------------------------------------------------------------------
    @property
    def operator(self):
        """Apps are their own :class:`~repro.runtime.task.Operator`."""
        return self

    def priority_of(self, task: Task) -> float:
        """Commit priority of *task* under ordered/relaxed policies.

        The default ranks by payload (node/clause/cluster id — the
        canonical graph priority); apps with semantic order (DES event
        times) override it.
        """
        return float(task.payload)

    def make_engine(
        self,
        controller,
        *,
        seed=None,
        step_hook=None,
        cost_model=None,
        recorder=None,
        metrics=None,
        engine=None,
    ):
        """Wire this app and *controller* into its historical engine.

        This is the non-deprecated path ``repro.api.run`` uses when no
        explicit ``order=`` is configured; explicit orders go through the
        core :class:`~repro.runtime.core.Engine` instead.
        """
        if self.requires_order:
            from repro.runtime.ordered import OrderedEngine

            return OrderedEngine(
                workset=self.workset,
                operator=self.operator,
                controller=controller,
                priority_of=self.priority_of,
                seed=seed,
                step_hook=step_hook,
                cost_model=cost_model,
                recorder=recorder,
                metrics=metrics,
                engine=engine,
            )
        from repro.runtime.engine import OptimisticEngine

        return OptimisticEngine(
            workset=self.workset,
            operator=self.operator,
            policy=self.policy,
            controller=controller,
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            engine=engine,
        )

    def build_engine(
        self,
        controller,
        seed=None,
        step_hook=None,
        cost_model=None,
        recorder=None,
        metrics=None,
        engine=None,
    ):
        """Deprecated: use ``repro.api.run`` or :meth:`make_engine`.

        One signature for every app now — the historical per-app drift
        (``engine=`` vs ``step_hook=``) is gone, and both keywords are
        accepted everywhere.
        """
        warnings.warn(
            f"{type(self).__name__}.build_engine is deprecated; use "
            f"repro.api.run(RunConfig(workload=...)) or make_engine()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.make_engine(
            controller,
            seed=seed,
            step_hook=step_hook,
            cost_model=cost_model,
            recorder=recorder,
            metrics=metrics,
            engine=engine,
        )
