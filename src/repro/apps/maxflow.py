"""Preflow-push (push–relabel) maximum flow as a work-set application.

A staple of the Galois benchmark suites: the work-set holds *active*
nodes (positive excess); processing one discharges it — pushing flow
along admissible residual arcs and relabelling when stuck.  Two active
nodes conflict when they are residual neighbours (they race on the arc
flow and on each other's excess), giving a CC graph that *follows the
flow frontier* across the network — a qualitatively different dynamic
conflict pattern from refinement's cavities or Borůvka's contractions.

Pure textbook Goldberg–Tarjan, FIFO-free (the unordered work-set supplies
the schedule):

* ``excess[v] > 0`` for ``v ∉ {s, t}`` ⇔ v has a pending task;
* discharge pushes ``min(excess, residual)`` along arcs with
  ``height[u] == height[v] + 1``;
* when no admissible arc remains, ``height[u] = 1 + min heights of
  residual neighbours``.

Correctness oracle: max-flow value equals scipy's
(:func:`reference_max_flow`) and flow conservation holds exactly.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppWorkload
from repro.errors import ApplicationError
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import Operator, Task
from repro.utils.rng import ensure_rng

__all__ = ["FlowNetwork", "random_flow_network", "PreflowPush", "reference_max_flow"]


class FlowNetwork:
    """Directed capacitated graph (integer capacities)."""

    def __init__(self, num_nodes: int, source: int, sink: int):
        if num_nodes < 2:
            raise ApplicationError(f"need at least 2 nodes, got {num_nodes}")
        if not (0 <= source < num_nodes and 0 <= sink < num_nodes):
            raise ApplicationError("source/sink outside node range")
        if source == sink:
            raise ApplicationError("source and sink must differ")
        self.num_nodes = num_nodes
        self.source = source
        self.sink = sink
        # capacity[u][v]; absent = 0.  Residual graph uses cap - flow + reverse flow.
        self.capacity: list[dict[int, int]] = [dict() for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, cap: int) -> None:
        if u == v:
            raise ApplicationError(f"self-loop on {u}")
        if cap < 0:
            raise ApplicationError(f"negative capacity {cap}")
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ApplicationError(f"edge ({u}, {v}) outside node range")
        self.capacity[u][v] = self.capacity[u].get(v, 0) + cap
        self.capacity[v].setdefault(u, 0)  # ensure reverse arc exists in residual

    def arcs(self) -> list[tuple[int, int, int]]:
        return [
            (u, v, c)
            for u in range(self.num_nodes)
            for v, c in self.capacity[u].items()
            if c > 0
        ]


def random_flow_network(
    num_nodes: int, avg_out_degree: float = 4.0, max_cap: int = 20, seed=None
) -> FlowNetwork:
    """Layered-ish random DAG + chords with source 0 and sink n−1.

    A guaranteed s→t path is laid first so the max flow is positive.
    """
    if num_nodes < 2:
        raise ApplicationError(f"need at least 2 nodes, got {num_nodes}")
    rng = ensure_rng(seed)
    net = FlowNetwork(num_nodes, source=0, sink=num_nodes - 1)
    order = [0] + (rng.permutation(num_nodes - 2) + 1).tolist() + [num_nodes - 1]
    for a, b in zip(order, order[1:]):
        net.add_edge(int(a), int(b), int(rng.integers(1, max_cap + 1)))
    extra = int(avg_out_degree * num_nodes) - (num_nodes - 1)
    for _ in range(max(extra, 0)):
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u != v:
            net.add_edge(u, v, int(rng.integers(1, max_cap + 1)))
    return net


def reference_max_flow(network: FlowNetwork) -> int:
    """Oracle via scipy's maximum_flow on the capacity matrix."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_flow

    n = network.num_nodes
    rows, cols, data = [], [], []
    for u, v, c in network.arcs():
        rows.append(u)
        cols.append(v)
        data.append(int(c))
    mat = csr_matrix((data, (rows, cols)), shape=(n, n), dtype=np.int64)
    return int(maximum_flow(mat, network.source, network.sink).flow_value)


class PreflowPush(AppWorkload, Operator):
    """Goldberg–Tarjan discharge as engine tasks (payload = node id)."""

    def __init__(self, network: FlowNetwork, *, workset=None):
        self.net = network
        n = network.num_nodes
        self.height = [0] * n
        self.excess = [0] * n
        self.flow: list[dict[int, int]] = [dict() for _ in range(n)]
        self.height[network.source] = n
        self.policy = ItemLockPolicy()
        self._init_workset(workset)
        self.discharges = 0
        self.relabels = 0
        self._enqueued: set[int] = set()
        self._frozen: set[int] = set()  # defensive: nodes with stuck excess
        # saturate source arcs
        for v, cap in network.capacity[network.source].items():
            if cap > 0:
                self._push(network.source, v, cap)
        for v in list(self._active()):
            self._enqueue(v)

    # ------------------------------------------------------------------
    def _residual(self, u: int, v: int) -> int:
        return self.net.capacity[u].get(v, 0) - self.flow[u].get(v, 0)

    def _push(self, u: int, v: int, amount: int) -> None:
        self.flow[u][v] = self.flow[u].get(v, 0) + amount
        self.flow[v][u] = self.flow[v].get(u, 0) - amount
        self.excess[u] -= amount
        self.excess[v] += amount

    def _active(self):
        for v in range(self.net.num_nodes):
            if v not in (self.net.source, self.net.sink) and self.excess[v] > 0:
                yield v

    def _is_active(self, v: int) -> bool:
        return (
            v not in (self.net.source, self.net.sink)
            and v not in self._frozen
            and self.excess[v] > 0
        )

    def _enqueue(self, v: int) -> None:
        if v not in self._enqueued and self._is_active(v):
            self._enqueued.add(v)
            self._seed_task(Task(payload=v))

    # ------------------------------------------------------------------
    # Operator interface
    # ------------------------------------------------------------------
    def neighborhood(self, task: Task):
        u = task.payload
        if not self._is_active(u):
            return ()
        return {u} | set(self.net.capacity[u].keys())

    def apply(self, task: Task) -> list[Task]:
        u = task.payload
        self._enqueued.discard(u)
        if not self._is_active(u):
            return []
        self.discharges += 1
        touched: set[int] = set()
        guard = 0
        limit = 4 * len(self.net.capacity[u]) + 8
        while self.excess[u] > 0 and guard < limit:
            guard += 1
            pushed = False
            for v in self.net.capacity[u]:
                res = self._residual(u, v)
                if res > 0 and self.height[u] == self.height[v] + 1:
                    amount = min(self.excess[u], res)
                    self._push(u, v, amount)
                    touched.add(v)
                    pushed = True
                    if self.excess[u] == 0:
                        break
            if self.excess[u] == 0:
                break
            if not pushed:
                # relabel: one above the lowest reachable residual neighbour
                candidates = [
                    self.height[v]
                    for v in self.net.capacity[u]
                    if self._residual(u, v) > 0
                ]
                if not candidates:
                    self._frozen.add(u)  # cannot happen for consistent flows
                    break
                self.height[u] = 1 + min(candidates)
                self.relabels += 1
                if self.height[u] > 2 * self.net.num_nodes:
                    self._frozen.add(u)  # defensive guard; valid runs stay < 2n
                    break
        out: list[Task] = []
        for v in touched:
            if self._is_active(v) and v not in self._enqueued:
                self._enqueued.add(v)
                out.append(Task(payload=v))
        if self._is_active(u) and u not in self._enqueued:
            self._enqueued.add(u)
            out.append(Task(payload=u))
        return out

    # ------------------------------------------------------------------
    @property
    def flow_value(self) -> int:
        """Net flow into the sink."""
        return int(
            sum(
                self.flow[u].get(self.net.sink, 0)
                for u in self.net.capacity[self.net.sink]
            )
        )

    def check_conservation(self) -> bool:
        """Flow conservation and capacity constraints everywhere."""
        for u in range(self.net.num_nodes):
            for v, f in self.flow[u].items():
                if f > self.net.capacity[u].get(v, 0):
                    return False
                if f != -self.flow[v].get(u, 0):
                    return False
        for v in range(self.net.num_nodes):
            if v in (self.net.source, self.net.sink):
                continue
            inflow = sum(self.flow[u].get(v, 0) for u in range(self.net.num_nodes) if self.flow[u].get(v, 0) > 0)
            outflow = sum(f for f in self.flow[v].values() if f > 0)
            if inflow - outflow != self.excess[v]:
                return False
        return True
