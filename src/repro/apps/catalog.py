"""Name-indexed catalog of the application workloads.

Bridges :mod:`repro.apps` to the ``"workload"`` registry: every app gets
a stable name usable as ``RunConfig(workload="boruvka")`` (optionally
with a ``":<scale>"`` suffix pinning the problem size), a seeded
synthetic-input builder for graph-less runs, and a uniform constructor
that threads the registry-matched work-set through.  App modules are
imported inside the builders so ``import repro`` stays light.

The input recipes deliberately match ``experiments/apps_eval.py`` so a
registry run and the APPS experiment exercise the same instances.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.utils.rng import derive_seed

__all__ = [
    "APP_WORKLOADS",
    "ORDERED_APPS",
    "DEFAULT_SCALES",
    "build_app_input",
    "workload_from_input",
    "check_order_combination",
    "make_app_workload",
]

#: registry names of the application workloads
APP_WORKLOADS = (
    "boruvka",
    "clustering",
    "coloring",
    "components",
    "delaunay",
    "des",
    "maxflow",
    "sp",
)

#: apps whose commits must respect priorities (``requires_order``); the
#: config/registry layer rejects unordered commit orders for these
ORDERED_APPS = ("des",)

#: default problem size when the spec carries no ``:<scale>`` suffix
DEFAULT_SCALES = {
    "boruvka": 200,
    "clustering": 200,
    "coloring": 200,
    "components": 200,
    "delaunay": 80,
    "des": 16,
    "maxflow": 80,
    "sp": 40,
}


def _unknown(name: str) -> ConfigError:
    return ConfigError(
        f"unknown application workload {name!r}; known: {', '.join(APP_WORKLOADS)}"
    )


def build_app_input(name: str, scale: int, seed=None):
    """Seeded synthetic input for app *name* at problem size *scale*."""
    if name == "boruvka":
        from repro.apps.boruvka import random_weighted_graph

        return random_weighted_graph(scale, 8, seed=seed)
    if name == "clustering":
        from repro.apps.clustering import random_points

        return random_points(scale, seed=seed)
    if name == "coloring":
        from repro.graph.generators import gnm_random

        return gnm_random(scale, 10, seed=seed)
    if name == "components":
        from repro.graph.generators import gnm_random

        return gnm_random(scale, 4, seed=seed)
    if name == "delaunay":
        from repro.apps.delaunay import random_input_mesh

        return random_input_mesh(max(scale, 3), seed=seed)
    if name == "des":
        from repro.apps.des import QueueingNetwork

        return QueueingNetwork(max(scale, 2), seed=seed)
    if name == "maxflow":
        from repro.apps.maxflow import random_flow_network

        return random_flow_network(max(scale, 2), avg_out_degree=3.0, seed=seed)
    if name == "sp":
        from repro.apps.sp import random_ksat

        return random_ksat(scale, 3 * scale, k=3, seed=seed)
    raise _unknown(name)


def workload_from_input(name: str, source, *, seed=None, workset=None):
    """Construct app *name* over *source* (an output of
    :func:`build_app_input`, or a caller-supplied equivalent)."""
    if name == "boruvka":
        from repro.apps.boruvka import BoruvkaMST

        return BoruvkaMST(source, workset=workset)
    if name == "clustering":
        from repro.apps.clustering import AgglomerativeClustering

        return AgglomerativeClustering(source, workset=workset)
    if name == "coloring":
        from repro.apps.coloring import GreedyColoring

        return GreedyColoring(source, workset=workset)
    if name == "components":
        from repro.apps.components import LabelPropagation

        return LabelPropagation(source, workset=workset)
    if name == "delaunay":
        from repro.apps.delaunay import RefinementWorkload

        return RefinementWorkload(source, min_angle=25.0, min_edge=0.02, workset=workset)
    if name == "des":
        from repro.apps.des import DiscreteEventSimulation

        return DiscreteEventSimulation(
            source,
            num_jobs=source.num_stations,
            end_time=5.0,
            seed=0 if seed is None else int(seed),
            workset=workset,
        )
    if name == "maxflow":
        from repro.apps.maxflow import PreflowPush

        return PreflowPush(source, workset=workset)
    if name == "sp":
        from repro.apps.sp import SurveyPropagation

        return SurveyPropagation(source, seed=seed, workset=workset)
    raise _unknown(name)


def check_order_combination(name: str, order: "str | None") -> None:
    """Reject unordered commit orders for ``requires_order`` apps.

    ``order=None`` is always fine — the workload then builds its own
    historical engine (ordered for DES) via ``make_engine``.
    """
    if name not in ORDERED_APPS or order is None:
        return
    # function-level up-reach into the registry layer, the sanctioned
    # pattern (see RunConfig.__post_init__)
    from repro.registry import order_family, parse_order_spec

    order_name, _ = parse_order_spec(order)
    if order_family(order_name) != "priority":
        raise ConfigError(
            f"workload {name!r} requires in-order commits "
            f'(order="ordered" or "relaxed:k"), got order={order!r}'
        )


def make_app_workload(name: str, source, config, *, scale=None, workset=None):
    """Registry factory body for the app workloads.

    *source* is the value passed as ``api.run(graph=...)`` — any app
    input object; ``None`` synthesises one from the config seed, so
    ``run(RunConfig(workload="boruvka", seed=7))`` is self-contained and
    reproducible.
    """
    check_order_combination(name, getattr(config, "order", None))
    seed = derive_seed(getattr(config, "seed", None) or 0, "workload", name)
    if source is None:
        source = build_app_input(
            name, scale if scale is not None else DEFAULT_SCALES[name], seed
        )
    return workload_from_input(name, source, seed=seed, workset=workset)
