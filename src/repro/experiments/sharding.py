"""SHARD — per-shard vs global allocation control over the sharded order.

The sharded commit order (:class:`~repro.runtime.policies.ShardedCommitOrder`)
resolves each batch in two phases: a per-shard greedy over intra-shard
edges, then a halo exchange that settles cut-edge conflicts in batch
order.  That split exposes a *new control question* the paper's global
recurrence never faces: should one §4 controller target the aggregate
conflict ratio, or should each shard run its own controller over its own
(launched, committed) counts — the per-shard statistics the order policy
publishes every round?

This experiment answers it on one fixed CC graph:

* the **global leg** runs the plain ρ-targeting hybrid controller over
  ``sharded:k`` for each shard count — the aggregate ``r̄`` it sees
  already folds in halo aborts, so it pays for cut-edge pressure with a
  globally smaller ``m``;
* the **per-shard leg** runs :class:`PerShardController` — one hybrid
  instance per shard, each fed its shard's realised conflict ratio from
  :attr:`~repro.runtime.policies.ShardedCommitOrder.last_shard_stats`,
  with the global proposal being the sum of the shard proposals (each
  sub-controller gets an equal slice of the ``m_max`` budget);
* both legs report committed/aborted work, halo-abort counts, mean
  allocation and mean conflict ratio per shard count.

Both legs are recorded and pushed through
:func:`repro.obs.verify_trace`.  The per-shard controller consumes
runtime-side shard statistics during the live run, but those statistics
are themselves trace events (``order_decision`` carries per-shard
launched/committed every round), so replay re-sources them from the
segment via :meth:`PerShardController.bind_replay_segment` — every row
in the table is a replayable measurement.
"""

from __future__ import annotations

from collections import deque

from repro.config import RunConfig
from repro.control.base import Controller
from repro.control.hybrid import HybridController
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.graph import gnm_random
from repro.obs import (
    HALO_EXCHANGE,
    ORDER_DECISION,
    TraceRecorder,
    active_recorder,
    controller_from_config,
    register_controller_builder,
    split_runs,
    verify_trace,
)
from repro.registry import WORKLOADS
from repro.runtime.core import Engine
from repro.runtime.policies import ShardedCommitOrder
from repro.utils.rng import ensure_rng

__all__ = ["PerShardController", "run"]


class PerShardController(Controller):
    """One §4 hybrid controller per shard, summed into a global proposal.

    ``subs[s]`` owns shard *s*: each step its proposal joins the global
    sum, and after the step it observes shard *s*'s realised conflict
    ratio ``1 - committed_s / launched_s`` (taken from the order
    policy's :attr:`last_shard_stats`).  Shards that launched nothing
    observe ``r = 0`` — an idle shard has no conflict evidence, and the
    hybrid's windowing absorbs the occasional empty round.  When the
    policy publishes no shard statistics (the one-shard degenerate
    case), every sub-controller observes the aggregate ratio instead.

    During replay there is no live order policy, but the statistics the
    live run consumed are in the trace: :meth:`bind_replay_segment`
    queues the segment's ``order_decision`` payloads and ``_ingest``
    drains them in step order, reproducing the exact observation stream.
    """

    def __init__(
        self, subs: "list[Controller]", order: "ShardedCommitOrder | None"
    ):
        super().__init__()
        if order is not None and len(subs) != order.shards:
            raise ExperimentError(
                f"{len(subs)} sub-controllers for {order.shards} shards"
            )
        self.subs = list(subs)
        self.order = order
        self._replay_stats: "deque | None" = None

    def describe(self) -> dict:
        base = super().describe()
        base["shards"] = len(self.subs)
        base["sub"] = self.subs[0].describe()
        return base

    def bind_replay_segment(self, events) -> None:
        """Re-source shard statistics from a recorded run segment."""
        self._replay_stats = deque(
            {"launched": ev.data["launched"], "committed": ev.data["committed"]}
            for ev in events
            if ev.kind == ORDER_DECISION
        )

    def _next_m(self) -> int:
        return sum(sub.propose() for sub in self.subs)

    def _ingest(self, r: float, launched: int) -> None:
        if self._replay_stats is not None:
            # one order_decision per resolved round; an empty queue means
            # the policy never published shard stats (one-shard case)
            stats = self._replay_stats.popleft() if self._replay_stats else None
        else:
            stats = self.order.last_shard_stats
        if stats is None:
            for sub in self.subs:
                sub.observe(r, launched)
            return
        for sub, shot, got in zip(
            self.subs, stats["launched"], stats["committed"]
        ):
            r_s = 1.0 - got / shot if shot > 0 else 0.0
            sub.observe(r_s, shot)

    def _do_reset(self) -> None:
        for sub in self.subs:
            sub.reset()
        if self._replay_stats is not None:
            self._replay_stats = deque()


def _build_per_shard(cfg: dict) -> PerShardController:
    subs = [controller_from_config(cfg["sub"]) for _ in range(cfg["shards"])]
    return PerShardController(subs, None)


register_controller_builder("PerShardController", _build_per_shard)


def _halo_aborts(events) -> int:
    return sum(
        int(ev.data.get("halo_aborts", 0))
        for ev in events
        if ev.kind == HALO_EXCHANGE
    )


def _commit_rate_skew(events) -> float:
    """Max − min cumulative per-shard commit rate over one run's events.

    The same skew statistic the distributed telemetry bus publishes live
    (``shard.commit_rate_max``/``min``), recomputed post-hoc from the
    recorded ``order_decision`` per-shard stats so the experiment reads
    it off any replayable trace.
    """
    launched: "list[int]" = []
    committed: "list[int]" = []
    for ev in events:
        per_launched = ev.data.get("launched")
        if ev.kind != ORDER_DECISION or not isinstance(per_launched, list):
            continue
        per_committed = ev.data.get("committed", [])
        if len(launched) < len(per_launched):
            grow = len(per_launched) - len(launched)
            launched.extend([0] * grow)
            committed.extend([0] * grow)
        for shard, count in enumerate(per_launched):
            launched[shard] += int(count)
        for shard, count in enumerate(per_committed):
            committed[shard] += int(count)
    rates = [c / l for c, l in zip(committed, launched) if l]
    return max(rates) - min(rates) if rates else 0.0


def run(
    n: int = 600,
    d: int = 10,
    shard_counts: "tuple[int, ...]" = (1, 2, 4, 8),
    rho: float = 0.30,
    m_max: int = 64,
    max_steps: int = 120,
    seed=None,
) -> ExperimentResult:
    """Global vs per-shard ρ-targeting control across shard counts."""
    rng = ensure_rng(seed)
    graph_seed = int(rng.integers(0, 2**31 - 1))
    run_seed = int(rng.integers(0, 2**31 - 1))

    result = ExperimentResult(
        name="SHARD per-shard vs global control",
        description=(
            f"G(n,m) CC graph, n={n}, mean degree {d}, replay workload, "
            f"{max_steps} steps per run; shard counts {list(shard_counts)}. "
            "All runs replay-verified (both legs)."
        ),
    )

    recorder = active_recorder()
    if recorder is None:  # truthiness won't do: an idle recorder is empty
        recorder = TraceRecorder()
    first_event = len(recorder.events)

    def fresh_graph():
        # every run mutates nothing (replay workload), but the partition
        # caches a CSR snapshot — a fresh graph per run keeps the legs
        # strictly independent
        return gnm_random(n, d, seed=graph_seed)

    # -- global leg: one hybrid over the aggregate ratio ----------------
    rows = []
    global_committed: "list[float]" = []
    start = len(recorder.events)
    for k in shard_counts:
        config = RunConfig(
            workload="replay",
            rho=rho,
            m_max=m_max,
            order=f"sharded:{k}",
            max_steps=max_steps,
        )
        from repro.api import run as api_run

        res = api_run(config, graph=fresh_graph(), seed=run_seed, recorder=recorder)
        halo = _halo_aborts(recorder.events[start:])
        skew = _commit_rate_skew(recorder.events[start:])
        start = len(recorder.events)
        rows.append(
            (
                "global",
                k,
                res.total_committed,
                res.total_aborted,
                halo,
                round(skew, 3),
                round(float(res.m_trace.mean()), 2),
                round(res.mean_conflict_ratio, 4),
            )
        )
        result.scalars[f"committed_global_{k}"] = float(res.total_committed)
        result.scalars[f"ratio_global_{k}"] = res.mean_conflict_ratio
        result.scalars[f"skew_global_{k}"] = skew
        global_committed.append(float(res.total_committed))

    # -- per-shard leg: one hybrid per shard, summed --------------------
    pershard_committed: "list[float]" = []
    for k in shard_counts:
        config = RunConfig(workload="replay", max_steps=max_steps)
        workload = WORKLOADS.create("replay", fresh_graph(), config)
        order = ShardedCommitOrder(workload.policy, shards=k)
        subs = [
            HybridController(rho, m_max=max(2, m_max // k)) for _ in range(k)
        ]
        controller = PerShardController(subs, order)
        start = len(recorder.events)
        engine = Engine(
            workset=workload.workset,
            operator=workload.operator,
            controller=controller,
            order=order,
            seed=run_seed,
            recorder=recorder,
        )
        res = engine.run(max_steps=max_steps)
        halo = _halo_aborts(recorder.events[start:])
        skew = _commit_rate_skew(recorder.events[start:])
        rows.append(
            (
                "per-shard",
                k,
                res.total_committed,
                res.total_aborted,
                halo,
                round(skew, 3),
                round(float(res.m_trace.mean()), 2),
                round(res.mean_conflict_ratio, 4),
            )
        )
        result.scalars[f"committed_pershard_{k}"] = float(res.total_committed)
        result.scalars[f"ratio_pershard_{k}"] = res.mean_conflict_ratio
        result.scalars[f"skew_pershard_{k}"] = skew
        pershard_committed.append(float(res.total_committed))

    result.add_table(
        f"throughput vs shard count (rho={rho:g}, m_max={m_max})",
        ["mode", "shards", "committed", "aborted", "halo aborts", "rate skew", "mean m", "r̄"],
        rows,
    )
    xs = [float(k) for k in shard_counts]
    result.add_series("committed vs shards (global)", xs, global_committed)
    result.add_series("committed vs shards (per-shard)", xs, pershard_committed)

    # -- replay gate: every row is a replayable measurement -------------
    own_events = recorder.events[first_event:]
    reports = verify_trace(own_events)
    runs = split_runs(own_events)
    expected = 2 * len(shard_counts)
    if len(reports) != len(runs) or len(runs) != expected:
        raise ExperimentError(
            f"expected {expected} replay-verified runs, got {len(reports)}"
        )
    result.scalars["replay_verified_runs"] = float(len(reports))
    result.add_note(
        "Halo aborts grow with the cut as shards multiply, and the global "
        "controller pays for them with a uniformly smaller allocation. "
        "Per-shard control re-spends that budget where conflicts are "
        "cheap: shards with slack run hotter while contended shards back "
        "off on their own evidence. Both legs are replay-verified: the "
        "per-shard controller's observations are re-sourced from the "
        "recorded order_decision events, so the trace is the complete "
        "observation record for every run."
    )
    return result
