"""Experiment CLI: ``python -m repro.experiments <name> [options]``.

Runs one or all experiments and prints their rendered reports.  Every
experiment accepts ``--seed`` for reproducibility and ``--quick`` for a
reduced-size run (used by the test suite; the benchmarks run full size).

Workload record/replay (``apps`` experiment only, see
:mod:`repro.runtime.wktrace`):

* ``--record-workload DIR`` — record each application's hybrid run as a
  workload trace (``<app>.wktrace``) into DIR.
* ``--replay-workload PATH`` — evaluate every controller over a
  deterministic replay of the recorded trace at PATH instead of building
  the applications.

Observability options (see :mod:`repro.obs`):

* ``--trace PATH`` — record a structured JSONL trace of every engine run
  the experiment performs, then reload it and *verify deterministic
  replay*: each recorded controller is rebuilt from its traced
  configuration and must reproduce the recorded ``m_t`` trajectory
  exactly (exit code 1 otherwise).  In sweep mode the trace additionally
  carries the sweep's lifecycle events (attempts, retries, quarantines);
  engine events from worker *processes* cannot cross the process
  boundary and are not recorded.
* ``--metrics`` — collect the runtime metrics registry during the run and
  print it after the reports (sweep mode reports the ``sweep.*``
  failure/retry/cache counters).
* ``--profile`` — activate the span profiler and print the hierarchical
  phase-timing tree (and, when a ``step`` root exists, the critical-path
  breakdown) after the reports; ``--profile-every N`` samples one step
  in N to cut overhead on long runs.
* ``--telemetry-out BASE`` — export the metrics registry (implied) to
  ``BASE.prom`` (OpenMetrics text) and ``BASE.json`` (lossless snapshot)
  after the run.
* ``--live`` — sweep mode only: print a periodic one-line progress
  status (done/retried/quarantined, attempt EWMA, ETA) on stderr while
  the sweep runs.

Sweep/fault-tolerance options (see :mod:`repro.experiments.parallel`):

* ``--jobs N`` / ``--cache-dir DIR`` — process-pool fan-out and the
  content-addressed result cache.
* ``--timeout SECS`` / ``--retries N`` / ``--quarantine-after N`` —
  per-attempt timeout, bounded retry with deterministic back-off, and
  the poison-config failure budget.  Quarantined configs are reported on
  stderr and flip the exit code to 1; they never silently disappear.
* ``--resume`` — continue an interrupted sweep from the journal next to
  the cache (``sweep-journal.jsonl``): completed configs reload from the
  cache, failure counts carry forward, quarantined configs stay out.
* ``--inject-faults SPEC`` — deliberately break the sweep for drills and
  tests via :class:`repro.testing.FaultPlan` (e.g. ``exit:fig3:0``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro.experiments import (
    ablation,
    adaptation,
    apps_eval,
    costs,
    example1,
    fig1,
    fig2,
    fig3,
    ordered,
    pareto,
    relaxation,
    sharding,
    theory,
)
from repro.experiments.base import ExperimentResult
from repro.registry import EXPERIMENTS

__all__ = ["EXPERIMENTS", "DEFAULT_EXPERIMENTS", "run_experiment", "main"]


def _fig1(seed, quick: bool) -> ExperimentResult:
    return fig1.run(seed=seed)  # tiny either way


def _fig2(seed, quick: bool) -> ExperimentResult:
    if quick:
        return fig2.run(n=400, d=8, grid_size=10, reps=30, seed=seed)
    return fig2.run(seed=seed)


def _fig3(seed, quick: bool) -> ExperimentResult:
    if quick:
        return fig3.run(n=500, degrees=(8, 24), steps=80, seed=seed)
    return fig3.run(seed=seed)


def _example1(seed, quick: bool) -> ExperimentResult:
    if quick:
        return example1.run(sizes=(8, 16), reps=400, seed=seed)
    return example1.run(seed=seed)


def _theory(seed, quick: bool) -> ExperimentResult:
    if quick:
        return theory.run(n=170, d=16, reps=300, seed=seed)
    return theory.run(seed=seed)


def _adaptation(seed, quick: bool) -> ExperimentResult:
    if quick:
        return adaptation.run(profiles=("step",), total_tasks=600, seed=seed)
    return adaptation.run(seed=seed)


def _apps(seed, quick: bool, **workload_io) -> ExperimentResult:
    # workload_io forwards the CLI's --record-workload/--replay-workload
    # (record_workload=/replay_workload= of apps_eval.run)
    if quick:
        return apps_eval.run(
            apps=("boruvka", "coloring"),
            scale=150,
            fixed_ms=(2, 16),
            seed=seed,
            **workload_io,
        )
    return apps_eval.run(seed=seed, **workload_io)


def _ablation(seed, quick: bool) -> ExperimentResult:
    if quick:
        return ablation.run(n=500, d=12, steps=80, replications=2, seed=seed)
    return ablation.run(seed=seed)


def _costs(seed, quick: bool) -> ExperimentResult:
    if quick:
        return costs.run(
            n=400, d=10, abort_factors=(1.0, 4.0), rhos=(0.1, 0.3), replications=1, seed=seed
        )
    return costs.run(seed=seed)


def _pareto(seed, quick: bool) -> ExperimentResult:
    if quick:
        return pareto.run(n=500, d=10, rhos=(0.1, 0.3), replications=1, seed=seed)
    return pareto.run(seed=seed)


def _relaxation(seed, quick: bool) -> ExperimentResult:
    if quick:
        return relaxation.run(
            n=120, d=8, ks=(1, 2, 4, 120), fixed_m=16, max_steps=40, seed=seed
        )
    return relaxation.run(seed=seed)


def _sharding(seed, quick: bool) -> ExperimentResult:
    if quick:
        return sharding.run(
            n=200, d=8, shard_counts=(1, 2, 4), m_max=32, max_steps=40, seed=seed
        )
    return sharding.run(seed=seed)


def _ordered(seed, quick: bool) -> ExperimentResult:
    if quick:
        return ordered.run(
            num_stations=12, num_jobs=15, end_time=12.0, fixed_ms=(1, 4, 16), seed=seed
        )
    return ordered.run(seed=seed)


#: the built-in experiment table; repro.registry seeds the shared
#: ``"experiment"`` registry from this on first lookup, and third-party
#: entries added via ``repro.register("experiment", ...)`` appear in the
#: CLI next to these
DEFAULT_EXPERIMENTS: dict[str, Callable[[object, bool], ExperimentResult]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "example1": _example1,
    "theory": _theory,
    "adaptation": _adaptation,
    "apps": _apps,
    "ablation": _ablation,
    "ordered": _ordered,
    "pareto": _pareto,
    "relaxation": _relaxation,
    "sharding": _sharding,
    "costs": _costs,
}


def run_experiment(name: str, seed=None, quick: bool = False) -> ExperimentResult:
    """Run one experiment by registry name."""
    # RegistryError subclasses ValueError, so unknown names keep raising
    # the historical exception type (with every available entry listed)
    return EXPERIMENTS.create(name, seed, quick)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures/claims as text reports.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help=f"one of {sorted(EXPERIMENTS)} or 'all' (default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    parser.add_argument(
        "--quick", action="store_true", help="reduced problem sizes (CI-fast)"
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also save <name>.txt/.json (and .svg when the experiment has "
        "series) into this directory",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured JSONL trace of all engine runs, then "
        "verify deterministic replay of every recorded controller",
    )
    parser.add_argument(
        "--record-workload",
        default=None,
        metavar="DIR",
        help="'apps' experiment only: record each application's hybrid run "
        "as a workload trace (<app>.wktrace) into DIR, replayable via "
        "--replay-workload or RunConfig(workload='trace:<path>')",
    )
    parser.add_argument(
        "--replay-workload",
        default=None,
        metavar="PATH",
        help="'apps' experiment only: evaluate the controllers over a "
        "deterministic replay of the recorded workload trace at PATH "
        "instead of building the applications",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print the runtime metrics registry",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the engine's step phases with the span profiler and "
        "print the phase tree after the reports",
    )
    parser.add_argument(
        "--profile-every",
        type=int,
        default=1,
        metavar="N",
        help="with --profile, time one step in N (default 1: every step)",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="BASE",
        help="export collected metrics to BASE.prom (OpenMetrics) and "
        "BASE.json (lossless snapshot); implies metrics collection",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="print a periodic one-line sweep progress status on stderr "
        "(enables sweep mode)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments across N worker processes (default 1: inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-hash disk cache for completed run configs; re-runs "
        "with identical (experiment, seed, quick, version) reload instantly",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="per-attempt wall-clock budget; a hung worker is killed and "
        "retried with a distinct derived seed (enables sweep mode)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts per config after a failure, with exponential "
        "back-off and deterministic jitter (sweep mode; default 2)",
    )
    parser.add_argument(
        "--quarantine-after",
        type=int,
        default=None,
        metavar="N",
        help="cumulative failures before a config is quarantined as poison "
        "(default: retries + 1)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep from the journal in --cache-dir; "
        "completed configs reload from the cache, failure counts carry over",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deliberately inject failures (fault drill): "
        "'kind[:experiment[:attempts]]' specs joined by ';', kinds "
        "raise/hang/exit/kill/corrupt-cache, e.g. 'exit:fig3:0;raise:*:0,1' "
        "(enables sweep mode)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    out_dir = None
    if args.output_dir is not None:
        from pathlib import Path

        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment {unknown[0]!r}; choose from {sorted(EXPERIMENTS)}"
        )
    workload_io = args.record_workload is not None or args.replay_workload is not None
    if workload_io:
        if args.record_workload is not None and args.replay_workload is not None:
            parser.error("pass --record-workload or --replay-workload, not both")
        if args.experiment != "apps":
            parser.error(
                "--record-workload/--replay-workload apply to the 'apps' "
                "experiment only (run: repro-experiments apps --record-workload DIR)"
            )

    def emit(name: str, result: ExperimentResult) -> None:
        print(result.render())
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(result.render(), encoding="utf-8")
            result.save_json(out_dir / f"{name}.json")
            if result.series:
                result.to_svg(out_dir / f"{name}.svg")

    sweep_mode = (
        args.jobs > 1
        or args.cache_dir is not None
        or args.resume
        or args.inject_faults is not None
        or args.timeout is not None
        or args.live
    )
    if sweep_mode and workload_io:
        parser.error(
            "--record-workload/--replay-workload run inline; drop the sweep "
            "options (--jobs/--cache-dir/--timeout/...)"
        )
    if args.resume and args.cache_dir is None:
        parser.error("--resume requires --cache-dir (the journal lives beside the cache)")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.profile_every < 1:
        parser.error(f"--profile-every must be >= 1, got {args.profile_every}")

    faults = None
    if args.inject_faults is not None:
        from repro.errors import FaultInjectionError
        from repro.testing import FaultPlan

        try:
            faults = FaultPlan.parse(args.inject_faults)
        except FaultInjectionError as exc:
            parser.error(str(exc))

    exit_code = 0

    def execute() -> None:
        for name in names:
            try:
                if workload_io:  # only reachable with experiment == "apps"
                    result = _apps(
                        args.seed,
                        args.quick,
                        record_workload=args.record_workload,
                        replay_workload=args.replay_workload,
                    )
                else:
                    result = run_experiment(name, seed=args.seed, quick=args.quick)
            except ValueError as exc:
                parser.error(str(exc))
            emit(name, result)

    def execute_sweep() -> None:
        # sweep mode: supervised worker processes + content-hash cache +
        # journaled fault tolerance.  Failed-then-quarantined configs are
        # reported on stderr and flip the exit code — never dropped.
        nonlocal exit_code
        from pathlib import Path

        from repro.config import RunConfig, SweepConfig
        from repro.experiments.journal import DEFAULT_JOURNAL_NAME
        from repro.experiments.parallel import run_sweep

        sweep_config = SweepConfig(
            runs=tuple(
                RunConfig(n, seed=args.seed, quick=args.quick) for n in names
            ),
            base_seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            timeout=args.timeout,
            retries=args.retries,
            quarantine=True,
            quarantine_after=args.quarantine_after,
            resume=args.resume,
        )
        journal = None
        if args.cache_dir is not None:
            journal = Path(args.cache_dir).expanduser() / DEFAULT_JOURNAL_NAME
        monitor = None
        if args.live:
            from repro.obs import SweepProgress

            monitor = SweepProgress(len(sweep_config.runs), jobs=args.jobs)
        outcomes = run_sweep(
            sweep_config,
            journal=journal,
            faults=faults,
            monitor=monitor,
        )
        for outcome in outcomes:
            name = outcome.config.experiment
            if outcome.ok:
                emit(name, outcome.result)
                status = "cache hit" if outcome.cached else "computed"
                retries = (
                    f", {outcome.failures} failure(s) retried"
                    if outcome.failures
                    else ""
                )
                # a reseeded result came from a timeout retry with a derived
                # seed — not a pure function of the config's own seed
                reseeded = ", reseeded by timeout retry" if outcome.reseeded else ""
                print(
                    f"[sweep] {name}: {status} "
                    f"(seed={outcome.seed}, key={outcome.key[:12]}{retries}{reseeded})",
                    file=sys.stderr,
                )
            else:
                print(
                    f"[sweep] {name}: QUARANTINED after {outcome.failures} "
                    f"failure(s): {outcome.error}",
                    file=sys.stderr,
                )
                exit_code = 1

    body = execute_sweep if sweep_mode else execute

    # observability channels compose: each requested one is pushed onto a
    # single ExitStack so activation order (and teardown) stays uniform.
    from contextlib import ExitStack

    want_metrics = args.metrics or args.telemetry_out is not None
    registry = None
    profiler = None
    with ExitStack() as stack:
        if want_metrics:
            from repro.obs import collecting_metrics

            registry = stack.enter_context(collecting_metrics())
        if args.trace is not None:
            from repro.obs import recording

            stack.enter_context(recording(args.trace))
        if args.profile:
            from repro.obs import profiling

            profiler = stack.enter_context(profiling(sample_every=args.profile_every))
        body()
    if registry is not None and args.metrics:
        print(registry.render())
    if registry is not None and args.telemetry_out is not None:
        from repro.obs import write_telemetry

        prom_path, json_path = write_telemetry(args.telemetry_out, registry)
        print(f"telemetry: wrote {prom_path} and {json_path}")
    if profiler is not None:
        print(profiler.render())
        from repro.errors import ObservabilityError
        from repro.obs import profile_report

        try:
            print(profile_report(profiler).render())
        except ObservabilityError:
            pass  # no 'step' root (e.g. isolated sweep workers only)
    if args.trace is not None:
        from repro.errors import ObservabilityError
        from repro.obs import load_jsonl_meta, verify_trace

        events, meta = load_jsonl_meta(args.trace)
        try:
            reports = verify_trace(events)
        except ObservabilityError as exc:
            print(f"trace: {args.trace}: replay FAILED: {exc}", file=sys.stderr)
            return 1
        total_steps = sum(r.steps for r in reports)
        dropped = int(meta.get("dropped", 0))
        dropped_note = f" ({dropped} dropped by the ring)" if dropped else ""
        print(
            f"trace: {args.trace}: {len(events)} events{dropped_note}, "
            f"{len(reports)} runs, {total_steps} steps — deterministic replay OK"
        )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
