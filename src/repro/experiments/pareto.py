"""PARETO — the §2.1 trade-off made explicit: ρ sweeps the frontier.

The paper frames processor allocation as a compromise: minimising
execution time alone always uses every processor (wasting speculative
work and power), minimising waste alone uses one processor (wasting
time).  The target conflict ratio ρ *is* the knob between those poles.
This experiment sweeps ρ on a draining workload and records, per run:

* **makespan** — temporal steps to finish all work;
* **energy** — Σ launched tasks over the run (each launched task burns a
  processor-step whether it commits or rolls back);
* **waste** — the aborted fraction of that energy.

Expected shape: makespan falls and waste climbs monotonically in ρ (up to
run-to-run noise); the ρ ∈ [20%, 30%] band recommended by Remark 1 sits
at the frontier's knee — most of the speed at a small multiple of the
minimal energy.
"""

from __future__ import annotations

import numpy as np

from repro.control.hybrid import HybridController
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.graph.generators import gnm_random
from repro.runtime.workloads import ConsumingGraphWorkload
from repro.utils.rng import ensure_rng, spawn

__all__ = ["run"]


def run(
    n: int = 4000,
    d: int = 16,
    rhos: tuple[float, ...] = (0.05, 0.10, 0.20, 0.30, 0.45, 0.60),
    replications: int = 3,
    seed=None,
) -> ExperimentResult:
    """Sweep the target conflict ratio on a draining random CC graph."""
    if replications < 1:
        raise ExperimentError(f"need >= 1 replication, got {replications}")
    if not all(0.0 < r < 1.0 for r in rhos):
        raise ExperimentError(f"all targets must be in (0,1), got {rhos}")
    rng = ensure_rng(seed)
    base_graph = gnm_random(n, d, seed=rng)

    result = ExperimentResult(
        name="PARETO rho sweep",
        description=(
            f"Hybrid controller draining a gnm(n={n}, d={d}) CC graph at "
            f"targets ρ∈{list(rhos)} ({replications} replications each). "
            "Energy = Σ launched (processor-steps)."
        ),
    )
    rows = []
    makespans = []
    energies = []
    for rho in rhos:
        steps_acc, energy_acc, waste_acc = [], [], []
        for rep_rng in spawn(rng, replications):
            workload = ConsumingGraphWorkload(base_graph.copy())
            controller = HybridController(rho, m_max=2048)
            engine = workload.build_engine(controller, seed=rep_rng)
            res = engine.run(max_steps=10**6)
            if res.total_committed != n:
                raise ExperimentError(f"run at rho={rho} did not drain")
            steps_acc.append(len(res))
            energy_acc.append(res.processor_steps())
            waste_acc.append(res.wasted_fraction)
        makespan = float(np.mean(steps_acc))
        energy = float(np.mean(energy_acc))
        waste = float(np.mean(waste_acc))
        makespans.append(makespan)
        energies.append(energy)
        rows.append(
            (
                rho,
                round(makespan, 1),
                round(energy, 0),
                round(waste, 4),
                round(energy / n, 3),
            )
        )
        result.scalars[f"makespan_rho{rho:g}"] = makespan
        result.scalars[f"energy_rho{rho:g}"] = energy
        result.scalars[f"waste_rho{rho:g}"] = waste
    result.add_table(
        "frontier (means over replications)",
        ["rho", "makespan", "energy", "waste", "energy/task"],
        rows,
    )
    result.add_series("makespan vs rho", list(rhos), makespans)
    result.add_series("energy vs rho", list(rhos), energies)
    result.add_note(
        "Remark 1's ρ∈[20%,30%] band sits at the knee: most of the "
        "achievable speed at near-minimal energy."
    )
    return result
