"""FIG2 — conflict-ratio curves ``r̄(m)`` (paper Fig. 2).

Reproduces the three curves for ``n = 2000, d = 16``:

(i)   the worst-case upper bound of Cor. 2,
(ii)  a G(n, M) random graph (Monte-Carlo simulation),
(iii) a union of cliques plus disconnected nodes (half the nodes in
      ``2(d+1)``-cliques, half isolated, preserving the average degree).

Expected shape (checked by the benchmark): all three start with the same
derivative ``d/(2(n−1))`` (Prop. 2); the worst-case bound dominates the
random graph everywhere; curves that climb high (> ½ at m = n) look linear
in the controller's operating region ``r̄ ≤ 20–30%`` — the experimental
fact motivating Recurrence B.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.graph.ccgraph import CCGraph
from repro.graph.generators import gnm_random, union_of_cliques
from repro.model.conflict_ratio import conflict_ratio_curve
from repro.model.turan import initial_derivative, worst_case_conflict_ratio_approx
from repro.utils.rng import ensure_rng, spawn

__all__ = ["cliques_plus_isolated_matched", "run"]


def cliques_plus_isolated_matched(n: int, d: int) -> CCGraph:
    """Union of cliques ∪ isolated nodes with ``n`` nodes and avg degree ``d``.

    Fig. 2's curve (iii): put half the edges' mass in cliques of size
    ``2(d+1)`` (so their internal degree is ``2d+1 ≈ 2d``) covering half
    the nodes, leave the rest isolated — average degree ≈ ``d`` with a
    maximally bimodal structure.
    """
    clique_size = 2 * (d + 1)
    # x cliques of size s have x·s·(s−1)/2 edges; match n·d/2 total
    num_cliques = max(int(round(n * d / (clique_size * (clique_size - 1)))), 1)
    covered = num_cliques * clique_size
    if covered > n:
        raise ValueError(f"cannot fit {num_cliques} cliques of {clique_size} in n={n}")
    g = union_of_cliques(num_cliques, clique_size)
    for _ in range(n - covered):
        g.add_node()
    return g


def run(
    n: int = 2000,
    d: int = 16,
    grid_size: int = 25,
    reps: int = 100,
    seed=None,
) -> ExperimentResult:
    """Generate the three Fig. 2 curves and their comparison table."""
    rng = ensure_rng(seed)
    rng_random, rng_cliq = spawn(rng, 2)
    ms = np.unique(np.geomspace(2, n, grid_size).astype(int))

    random_graph = gnm_random(n, d, seed=rng_random)
    cliq_graph = cliques_plus_isolated_matched(n, d)

    bound = np.array([worst_case_conflict_ratio_approx(n, d, int(m)) for m in ms])
    curve_rand = conflict_ratio_curve(random_graph, ms, reps=reps, seed=rng_random)
    curve_cliq = conflict_ratio_curve(cliq_graph, ms, reps=reps, seed=rng_cliq)

    result = ExperimentResult(
        name="FIG2 conflict-ratio curves",
        description=(
            f"r̄(m) for n={n}, d={d}: Cor.2 worst-case bound vs random graph "
            f"vs cliques∪isolated (MC, {reps} reps/point)."
        ),
    )
    rows = [
        (
            int(m),
            float(b),
            float(r),
            float(rh),
            float(c),
            float(ch),
        )
        for m, b, r, rh, c, ch in zip(
            ms,
            bound,
            curve_rand.ratios,
            curve_rand.half_widths,
            curve_cliq.ratios,
            curve_cliq.half_widths,
        )
    ]
    result.add_table(
        "r̄(m) by graph family",
        ["m", "worst-case", "random", "±", "cliques+isolated", "±"],
        rows,
    )
    result.add_series("worst-case bound", ms.tolist(), bound.tolist())
    result.add_series("random graph", ms.tolist(), curve_rand.ratios.tolist())
    result.add_series("cliques+isolated", ms.tolist(), curve_cliq.ratios.tolist())
    result.scalars["initial_derivative_formula"] = initial_derivative(n, d)
    result.scalars["random_d"] = random_graph.average_degree
    result.scalars["cliques_d"] = cliq_graph.average_degree
    dominated = float(np.mean(bound + 1e-9 >= curve_rand.ratios - curve_rand.half_widths))
    result.scalars["bound_dominates_random_fraction"] = dominated
    result.add_note(
        "Prop. 2: all curves share initial slope d/(2(n-1)); "
        "Thm. 2/3: the worst-case bound must dominate both simulated curves."
    )
    return result
