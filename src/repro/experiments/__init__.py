"""Experiment modules — one per paper figure/claim, plus ablations.

See DESIGN.md §4 for the experiment index.  Run them via::

    python -m repro.experiments <name> [--seed N] [--quick]
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import RunConfig, SweepOutcome, SweepPolicy, run_sweep

__all__ = ["ExperimentResult", "RunConfig", "SweepOutcome", "SweepPolicy", "run_sweep"]
