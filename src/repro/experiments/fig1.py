"""FIG1 — the optimistic-parallelization cartoon, executed (paper Fig. 1).

Fig. 1 illustrates the model in three panels: (i) a CC graph, (ii) ``m``
nodes chosen at random and run concurrently, (iii) conflicts detected at
run time, leaving **a maximal independent set of the induced subgraph**
committed.  This experiment executes the cartoon on a real random graph
and *verifies the caption*: the committed set is independent and maximal
within the chosen nodes, and aborted-before-you does not block you
(§2.1's commit-order clause).

Deliberately tiny — its value is the executable explanation and the
verified invariants, which the benchmark asserts on many random panels.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.graph.generators import gnm_random
from repro.model.permutation import committed_set
from repro.utils.rng import ensure_rng, random_prefix

__all__ = ["run", "panel"]


def panel(n: int, d: float, m: int, seed=None) -> dict:
    """One Fig.-1 instance: graph, chosen prefix, committed/aborted split."""
    rng = ensure_rng(seed)
    graph = gnm_random(n, d, seed=rng)
    order = [int(u) for u in random_prefix(graph.nodes(), m, rng)]
    committed = committed_set(graph, order)
    committed_s = set(committed)
    aborted = [u for u in order if u not in committed_s]
    # caption checks
    independent = all(
        committed_s.isdisjoint(graph.neighbors(u)) for u in committed_s
    )
    maximal = all(
        not committed_s.isdisjoint(graph.neighbors(u)) for u in aborted
    )
    return {
        "graph": graph,
        "order": order,
        "committed": committed,
        "aborted": aborted,
        "independent": independent,
        "maximal": maximal,
    }


def run(n: int = 16, d: float = 2.5, m: int = 8, panels: int = 3, seed=None) -> ExperimentResult:
    """Execute *panels* random instances of the Fig.-1 cartoon."""
    rng = ensure_rng(seed)
    result = ExperimentResult(
        name="FIG1 the model, executed",
        description=(
            f"Random CC graphs (n={n}, d={d}); m={m} nodes drawn, commit "
            "order = draw order; committed set must be a maximal independent "
            "set of the induced subgraph."
        ),
    )
    all_ok = True
    for i in range(panels):
        p = panel(n, d, m, seed=rng)
        graph = p["graph"]
        edges_among_chosen = [
            (u, v) for u, v in graph.edges() if u in p["order"] and v in p["order"]
        ]
        result.add_table(
            f"panel {i + 1}",
            ["item", "value"],
            [
                ("edges", " ".join(f"{u}-{v}" for u, v in graph.edges())),
                ("chosen (commit order)", " ".join(map(str, p["order"]))),
                ("conflict edges among chosen", " ".join(f"{u}-{v}" for u, v in edges_among_chosen)),
                ("committed", " ".join(map(str, p["committed"]))),
                ("aborted", " ".join(map(str, p["aborted"]))),
                ("independent?", p["independent"]),
                ("maximal in induced subgraph?", p["maximal"]),
            ],
        )
        all_ok = all_ok and p["independent"] and p["maximal"]
    result.scalars["all_panels_valid"] = float(all_ok)
    result.add_note(
        "Commit rule (§2.1): a node aborts iff an earlier *committed* "
        "neighbour exists — an aborted predecessor does not block."
    )
    return result
