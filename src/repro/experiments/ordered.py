"""ORD — ordered algorithms (the §5 future work, explored).

The paper stops at unordered algorithms and names discrete-event
simulation as the open case.  This experiment runs the controller on a
PDES queueing network under the ordered engine and quantifies how the
chronological-commit constraint changes the picture:

* the **speedup curve saturates hard**: beyond a modest ``m`` extra
  processors produce only aborts (conflict + order violations), unlike
  the unordered curve of Fig. 2 where ``EM_m`` keeps growing;
* the split between **conflict aborts** and **order aborts** shows a new
  waste channel that no unordered conflict ratio accounts for;
* the ρ-targeting hybrid still stabilises (it only needs monotone
  ``r̄(m)``), landing at the knee of the saturation curve.

Every run is checked against the sequential oracle — the committed event
history must be bit-identical regardless of allocation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.des import DiscreteEventSimulation, QueueingNetwork, sequential_history
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.utils.rng import ensure_rng

__all__ = ["run"]


def run(
    num_stations: int = 40,
    num_jobs: int = 60,
    end_time: float = 40.0,
    rho: float = 0.30,
    fixed_ms: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    seed=None,
) -> ExperimentResult:
    """Saturation sweep + hybrid run on the ordered PDES workload."""
    rng = ensure_rng(seed)
    net_seed = int(rng.integers(0, 2**31 - 1))
    sim_seed = int(rng.integers(0, 2**31 - 1))
    network = QueueingNetwork(num_stations, avg_degree=3.0, seed=net_seed)
    reference = sequential_history(network, num_jobs, end_time, seed=sim_seed)
    if not reference:
        raise ExperimentError("oracle produced no events; increase end_time")

    result = ExperimentResult(
        name="ORD ordered algorithms (future work)",
        description=(
            f"PDES queueing network: {num_stations} stations, {num_jobs} jobs, "
            f"horizon {end_time}; {len(reference)} events. Chronological commits "
            "enforced via barrier/horizon rollback."
        ),
    )

    rows = []
    speedups = []
    for m in fixed_ms:
        sim = DiscreteEventSimulation(network, num_jobs, end_time, seed=sim_seed)
        engine = sim.make_engine(FixedController(m), seed=int(rng.integers(0, 2**31 - 1)))
        res = engine.run(max_steps=10**7)
        if sim.history != reference:
            raise ExperimentError(f"history diverged from the oracle at m={m}")
        speedup = len(reference) / len(res)
        speedups.append(speedup)
        rows.append(
            (
                m,
                len(res),
                round(speedup, 3),
                engine.conflict_aborts_total,
                engine.order_aborts_total,
                round(res.mean_conflict_ratio, 4),
            )
        )
        result.scalars[f"speedup_m{m}"] = speedup
    result.add_table(
        "saturation sweep (fixed allocations)",
        ["m", "steps", "speedup", "conflict aborts", "order aborts", "r̄"],
        rows,
    )
    result.add_series("speedup vs m", [float(m) for m in fixed_ms], speedups)

    sim = DiscreteEventSimulation(network, num_jobs, end_time, seed=sim_seed)
    engine = sim.make_engine(
        HybridController(rho), seed=int(rng.integers(0, 2**31 - 1))
    )
    res = engine.run(max_steps=10**7)
    if sim.history != reference:
        raise ExperimentError("hybrid history diverged from the oracle")
    result.add_table(
        "hybrid controller on the ordered workload",
        ["metric", "value"],
        [
            ("target rho", rho),
            ("steps", len(res)),
            ("speedup", round(len(reference) / len(res), 3)),
            ("mean m", round(float(res.m_trace.mean()), 2)),
            ("mean r", round(res.mean_conflict_ratio, 4)),
            ("conflict aborts", engine.conflict_aborts_total),
            ("order aborts", engine.order_aborts_total),
        ],
    )
    result.scalars["hybrid_speedup"] = len(reference) / len(res)
    result.scalars["hybrid_mean_m"] = float(res.m_trace.mean())
    result.scalars["max_speedup"] = float(np.max(speedups))
    result.add_note(
        "Ordered parallelism saturates: the speedup curve flattens while "
        "aborts keep climbing — the §5 open problem made quantitative."
    )
    return result
