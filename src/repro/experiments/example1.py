"""EX1 — the clique-plus-isolated-nodes example (paper Example 1).

``G = K_{n²} ∪ D_n``: a clique of ``n²`` nodes plus ``n`` isolated nodes.
Every maximal independent set has size exactly ``n + 1`` (one clique node
plus all isolated ones), yet drawing ``m = n + 1`` nodes uniformly at
random yields **≈ 2** independent nodes in expectation: roughly one clique
member (any sample almost surely hits the clique, and exactly one of those
commits) plus ≈ ``(n+1)·n/(n²+n) = 1`` isolated node.

The point of the example: maximal-IS size wildly overestimates the
parallelism a *random* scheduler can exploit — the justification for
analysing ``EM_m`` of random induced subgraphs instead (Thm. 2).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.graph.generators import clique_plus_isolated
from repro.model.conflict_ratio import estimate_em, first_come_bound
from repro.utils.rng import ensure_rng, spawn

__all__ = ["expected_committed_exact", "run"]


def expected_committed_exact(n: int) -> float:
    """Closed-form E[#independent] when drawing ``n+1`` of ``K_{n²} ∪ D_n``.

    Exactly: E = P[sample hits the clique] + E[#isolated drawn]
             = (1 − Π_{i=0}^{n} (n − i)/(n² + n − i)) + (n+1)·n/(n²+n).

    The clique contributes one committed node iff hit; each isolated node
    is committed iff drawn.
    """
    total = n * n + n
    m = n + 1
    miss = 1.0
    for i in range(m):
        miss *= (n - i) / (total - i)
    e_isolated = m * n / total
    return (1.0 - miss) + e_isolated


def run(sizes: tuple[int, ...] = (10, 20, 40), reps: int = 2000, seed=None) -> ExperimentResult:
    """MC vs closed form vs the maximal-IS size ``n + 1``."""
    rng = ensure_rng(seed)
    result = ExperimentResult(
        name="EX1 clique plus isolated nodes",
        description=(
            "K_{n²} ∪ D_n: maximal IS has size n+1, but a random (n+1)-sample "
            "contains ≈2 independent nodes on average."
        ),
    )
    rows = []
    for n, child in zip(sizes, spawn(rng, len(sizes))):
        g = clique_plus_isolated(n * n, n)
        m = n + 1
        mc = estimate_em(g, m, reps=reps, seed=child)
        exact = expected_committed_exact(n)
        bm = first_come_bound(g, m)
        rows.append((n, n + 1, exact, mc.mean, mc.half_width, bm))
        result.scalars[f"exact_n{n}"] = exact
    result.add_table(
        "expected independent nodes among a random (n+1)-sample",
        ["n", "maximal IS", "exact E", "MC E", "±", "b_m bound"],
        rows,
    )
    result.add_note(
        "The committed expectation stays ≈2 while the maximal IS grows as n+1: "
        "available ≠ exploitable parallelism."
    )
    return result
