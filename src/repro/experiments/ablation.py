"""ABL — ablation of Algorithm 1's design choices.

Every knob the paper motivates gets switched off or varied in isolation,
on the Fig. 3 setup (stationary random CC graph, ``ρ = 20%``):

* **hybridisation** — hybrid vs A-only vs B-only (speed/stability trade);
* **averaging window T** — T = 1 (raw per-step ratios) vs 4 vs 12;
* **dead-band α₁** — 0 (always update) vs 6% vs 20%;
* **switch threshold α₀** — when does Recurrence B stop being used;
* **r_min floor** — without it, one lucky zero-conflict window makes B
  explode to m_max;
* **small-m split** — the Fig. 3 refinement;
* **smart start** — Cor. 3 initial allocation vs cold m₀ = 2;
* plus the external baselines (AIMD, PI, bisection, oracle).

Scored by :func:`repro.control.tuning.sweep_controllers`: settling step,
steady-state wobble and tracking error, averaged over replications.
"""

from __future__ import annotations

from repro.control.adaptive import NoiseAdaptiveHybridController
from repro.control.aimd import AIMDController
from repro.control.asteal import AStealController
from repro.control.bisection import BisectionController
from repro.control.hybrid import HybridController, HybridParams
from repro.control.oracle import OracleController
from repro.control.pid import PIController
from repro.control.recurrence import RecurrenceAController, RecurrenceBController
from repro.control.tuning import oracle_mu, summarize_sweep, sweep_controllers
from repro.experiments.base import ExperimentResult
from repro.experiments.fig3 import default_hybrid
from repro.graph.generators import gnm_random
from repro.utils.rng import ensure_rng, spawn

__all__ = ["run", "ablation_factories"]


def ablation_factories(rho: float, n: int, d: float, mu: int):
    """The full named set of controller configurations under ablation."""
    return {
        "hybrid (paper)": lambda: default_hybrid(rho),
        "A-only": lambda: RecurrenceAController(rho),
        "B-only": lambda: RecurrenceBController(rho),
        "T=1": lambda: HybridController(rho, params=HybridParams(period=1)),
        "T=12": lambda: HybridController(rho, params=HybridParams(period=12)),
        "no dead-band": lambda: HybridController(
            rho, params=HybridParams(alpha1=0.0)
        ),
        "wide dead-band": lambda: HybridController(
            rho, params=HybridParams(alpha1=0.20, alpha0=0.35)
        ),
        "alpha0=inf (never B)": lambda: HybridController(
            rho, params=HybridParams(alpha0=1e9)
        ),
        "alpha0=alpha1 (always B)": lambda: HybridController(
            rho, params=HybridParams(alpha0=0.06)
        ),
        "r_min=1e-6": lambda: HybridController(
            rho, params=HybridParams(r_min=1e-6)
        ),
        "smart start": lambda: HybridController.smart_start(rho, n, d),
        "noise-adaptive": lambda: NoiseAdaptiveHybridController(rho),
        "AIMD": lambda: AIMDController(rho),
        "A-Steal [1]": lambda: AStealController(rho),
        "PI": lambda: PIController(rho),
        "bisection": lambda: BisectionController(rho),
        "oracle": lambda: OracleController(mu),
    }


def run(
    n: int = 2000,
    d: int = 16,
    rho: float = 0.20,
    steps: int = 160,
    replications: int = 4,
    seed=None,
) -> ExperimentResult:
    """Score every ablated configuration on the stationary Fig. 3 setup."""
    rng = ensure_rng(seed)
    graph_rng, mu_rng, sweep_rng = spawn(rng, 3)
    graph = gnm_random(n, d, seed=graph_rng)
    mu = oracle_mu(graph, rho, seed=mu_rng)
    factories = ablation_factories(rho, n, graph.average_degree, mu)
    sweep = sweep_controllers(
        factories, graph, rho, steps=steps, replications=replications, seed=sweep_rng
    )
    result = ExperimentResult(
        name="ABL Algorithm 1 ablation",
        description=(
            f"Design-choice ablation on a stationary gnm(n={n}, d={d}) graph, "
            f"ρ={rho:.0%}, {steps} steps × {replications} replications; μ={mu}."
        ),
    )
    rows = [
        (name, round(settle, 1), round(wobble, 3), round(r_mean, 3), round(err, 3))
        for name, settle, wobble, r_mean, err in summarize_sweep(sweep)
    ]
    result.add_table(
        "mean over replications",
        ["configuration", "settling step", "wobble", "steady r̄", "|r−ρ|"],
        rows,
    )
    for name, metrics in sweep.items():
        result.scalars[f"settle::{name}"] = float(
            sum(m.settling_step for m in metrics) / len(metrics)
        )
    result.scalars["mu"] = float(mu)
    result.add_note(
        "wobble = std(m)/mean(m) after settling; oracle rows give the floor."
    )
    return result
