"""COSTS — how expensive rollback shifts the optimal target ρ*.

§2 assumes aborted and committed tasks cost the same; §2.1 notes rollback
"can be quite resource-consuming", and §1 motivates the whole problem with
power.  This experiment makes the power argument concrete: a machine of
``P`` processors runs the draining workload; every processor burns 1 unit
of energy per step when speculating (commit or abort) and ``idle_power``
units when idle, and aborts additionally cost ``abort_factor ×`` a commit
(:class:`ScaledAbortCostModel` — undo logs, cache pollution):

    energy(ρ) = commit_cost + abort_factor·aborts + idle_power·(P·makespan − launched)

Low targets leave the machine idling (long makespans burn idle power);
high targets burn speculation.  The optimum ρ* therefore sits in the
interior — and it must *decrease* as the abort factor grows, which is the
quantitative answer to "does the unit-cost assumption matter?": it does
not change Algorithm 1, only where you should point it.
"""

from __future__ import annotations

import numpy as np

from repro.control.hybrid import HybridController
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.graph.generators import gnm_random
from repro.runtime.costs import ScaledAbortCostModel
from repro.runtime.workloads import ConsumingGraphWorkload
from repro.utils.rng import ensure_rng, spawn

__all__ = ["run"]


def run(
    n: int = 3000,
    d: int = 16,
    abort_factors: tuple[float, ...] = (0.25, 1.0, 2.0, 4.0),
    rhos: tuple[float, ...] = (0.05, 0.10, 0.20, 0.30, 0.45),
    machine_size: int = 256,
    idle_power: float = 0.25,
    replications: int = 2,
    seed=None,
) -> ExperimentResult:
    """Sweep (abort factor × ρ) and locate each factor's energy-optimal ρ*."""
    if replications < 1:
        raise ExperimentError(f"need >= 1 replication, got {replications}")
    if machine_size < 1:
        raise ExperimentError(f"machine size must be >= 1, got {machine_size}")
    if not 0.0 <= idle_power <= 1.0:
        raise ExperimentError(f"idle power must be in [0, 1], got {idle_power}")
    rng = ensure_rng(seed)
    base_graph = gnm_random(n, d, seed=rng)

    result = ExperimentResult(
        name="COSTS abort-cost sensitivity",
        description=(
            f"Hybrid draining gnm(n={n}, d={d}) on a {machine_size}-processor "
            f"machine (idle power {idle_power}); aborts priced at "
            f"{list(abort_factors)}× a commit."
        ),
    )
    best_rhos = []
    for factor in abort_factors:
        rows = []
        energies = []
        for rho in rhos:
            acc = []
            for rep_rng in spawn(rng, replications):
                workload = ConsumingGraphWorkload(base_graph.copy())
                engine = workload.build_engine(
                    HybridController(rho, m_max=machine_size),
                    seed=rep_rng,
                    cost_model=ScaledAbortCostModel(factor),
                )
                res = engine.run(max_steps=10**6)
                if res.total_committed != n:
                    raise ExperimentError(f"run at rho={rho} did not drain")
                active = engine.costs.total
                idle = idle_power * (machine_size * len(res) - res.processor_steps())
                acc.append((len(res), active, idle))
            makespan = float(np.mean([a[0] for a in acc]))
            active = float(np.mean([a[1] for a in acc]))
            idle = float(np.mean([a[2] for a in acc]))
            energy = active + idle
            energies.append(energy)
            rows.append(
                (
                    rho,
                    round(makespan, 1),
                    round(active, 0),
                    round(idle, 0),
                    round(energy, 0),
                )
            )
        best = float(rhos[int(np.argmin(energies))])
        best_rhos.append(best)
        result.add_table(
            f"abort factor {factor}× (energy-optimal ρ = {best:g})",
            ["rho", "makespan", "active energy", "idle energy", "total energy"],
            rows,
        )
        result.scalars[f"best_rho_factor{factor:g}"] = best
    result.add_series(
        "energy-optimal rho vs abort factor", list(abort_factors), best_rhos
    )
    result.add_note(
        "Pricier rollbacks push the optimal target down; cheap rollbacks "
        "reward aggressive speculation — the unit-cost assumption matters "
        "for choosing ρ, not for the controller design."
    )
    return result
