"""Common output container for the experiment modules.

Each experiment module produces an :class:`ExperimentResult`: named tables
and series plus free-form notes, renderable as plain text (we run
headless, so "figures" are emitted as tables + sparklines).  The benchmark
harness and the CLI runner both consume this type.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExperimentError
from repro.utils.svgplot import LinePlot
from repro.utils.tables import format_series, format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Data produced by one experiment run."""

    name: str
    description: str
    tables: list[tuple[str, Sequence[str], list[Sequence[object]]]] = field(
        default_factory=list
    )
    series: list[tuple[str, Sequence[float], Sequence[float]]] = field(
        default_factory=list
    )
    notes: list[str] = field(default_factory=list)
    scalars: dict[str, float] = field(default_factory=dict)

    def add_table(
        self, title: str, headers: Sequence[str], rows: list[Sequence[object]]
    ) -> None:
        self.tables.append((title, headers, rows))

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        self.series.append((name, xs, ys))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Human-readable report of the whole experiment."""
        parts = [f"== {self.name} ==", self.description, ""]
        for title, headers, rows in self.tables:
            parts.append(format_table(headers, rows, title=title))
            parts.append("")
        for name, xs, ys in self.series:
            parts.append(format_series(name, xs, ys))
            parts.append("")
        if self.scalars:
            parts.append("scalars:")
            for k, v in self.scalars.items():
                parts.append(f"  {k} = {v:.6g}")
            parts.append("")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts).rstrip() + "\n"

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable dump of all tables/series/scalars."""
        return {
            "name": self.name,
            "description": self.description,
            "tables": [
                {
                    "title": title,
                    "headers": list(headers),
                    "rows": [list(row) for row in rows],
                }
                for title, headers, rows in self.tables
            ],
            "series": [
                {"name": name, "x": list(map(float, xs)), "y": list(map(float, ys))}
                for name, xs, ys in self.series
            ],
            "scalars": dict(self.scalars),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (cache reloads)."""
        try:
            result = cls(
                name=str(payload["name"]),
                description=str(payload["description"]),
            )
            for table in payload.get("tables", []):
                result.add_table(
                    table["title"],
                    list(table["headers"]),
                    [list(row) for row in table["rows"]],
                )
            for series in payload.get("series", []):
                result.add_series(series["name"], list(series["x"]), list(series["y"]))
            result.scalars.update(payload.get("scalars", {}))
            for note in payload.get("notes", []):
                result.add_note(str(note))
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed ExperimentResult payload: {exc}") from exc
        return result

    def canonical_json(self) -> str:
        """Canonical serialisation: sorted keys, no whitespace variance.

        Two results serialise identically iff :meth:`to_dict` agrees —
        the byte-level equality the fault-tolerance suite uses to prove
        that an interrupted-and-resumed sweep reproduces an
        uninterrupted one exactly.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), default=float
        )

    def save_json(self, path: "str | Path") -> None:
        """Write :meth:`to_dict` as pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )

    def to_svg(
        self,
        path: "str | Path",
        series: "Sequence[str] | None" = None,
        xlabel: str = "",
        ylabel: str = "",
        log_x: bool = False,
    ) -> None:
        """Render (selected) series as one SVG line chart at *path*."""
        chosen = [
            (name, xs, ys)
            for name, xs, ys in self.series
            if series is None or name in series
        ]
        if not chosen:
            raise ExperimentError(
                f"no matching series to plot (asked for {series!r})"
            )
        plot = LinePlot(title=self.name, xlabel=xlabel, ylabel=ylabel, log_x=log_x)
        for name, xs, ys in chosen:
            plot.add_series(name, xs, ys)
        plot.save(path)
