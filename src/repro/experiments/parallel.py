"""Parallel experiment sweeps: process pool + deterministic seeds + disk cache.

The experiments are embarrassingly parallel — each run is a pure function
of ``(experiment name, seed, quick)`` — yet the CLI historically executed
them one after another.  This module turns a list of run configs into a
:class:`concurrent.futures.ProcessPoolExecutor` sweep with two
reproducibility guarantees:

* **Deterministic seeds.**  A config without an explicit seed gets one
  derived via :func:`repro.utils.rng.derive_seed` from the sweep's base
  seed and the config's identity — a pure function of the config, never
  of worker scheduling, completion order, or how many runs came before.
* **Content-addressed caching.**  Every completed run is stored under
  ``<cache_dir>/<sha256(config)>.json``; the key hashes the canonical
  JSON of the config plus the package version and cache schema, so a
  re-sweep only recomputes configs whose inputs actually changed.
  Cached results reload as full :class:`ExperimentResult` objects.

Used by ``python -m repro.experiments --jobs N --cache-dir DIR`` and
importable directly::

    from repro.experiments.parallel import RunConfig, run_sweep
    outcomes = run_sweep(["fig2", "fig3"], jobs=4, cache_dir="~/.repro-cache")
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.utils.rng import derive_seed

__all__ = ["RunConfig", "SweepOutcome", "config_key", "run_sweep"]

#: bump when the cache payload layout changes; invalidates old entries
CACHE_SCHEMA = 1


@dataclass(frozen=True)
class RunConfig:
    """One experiment invocation: registry name, seed, and size."""

    experiment: str
    seed: "int | None" = None
    quick: bool = False

    def resolved_seed(self, base_seed: int) -> int:
        """The seed this run actually uses.

        Explicit seeds pass through; otherwise one is derived from
        ``(base_seed, experiment name)`` — stable across sweeps, worker
        counts, and config ordering.
        """
        if self.seed is not None:
            return int(self.seed)
        return derive_seed(base_seed, "sweep", self.experiment)


@dataclass(frozen=True)
class SweepOutcome:
    """One finished run: its config, effective seed, result, provenance."""

    config: RunConfig
    seed: int
    result: ExperimentResult
    cached: bool
    key: str


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def config_key(config: RunConfig, seed: int) -> str:
    """Content hash identifying one run: config + code version + schema.

    Canonical JSON (sorted keys, no whitespace variance) through SHA-256;
    two configs collide iff they would produce the same result.
    """
    payload = json.dumps(
        {
            "experiment": config.experiment,
            "seed": int(seed),
            "quick": bool(config.quick),
            "version": _package_version(),
            "schema": CACHE_SCHEMA,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def _cache_load(cache_dir: Path, key: str) -> "ExperimentResult | None":
    path = _cache_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("key") != key:
            return None
        return ExperimentResult.from_dict(payload["result"])
    except (OSError, ValueError, KeyError):
        return None  # corrupt entries are treated as misses and rewritten


def _cache_store(
    cache_dir: Path, key: str, config: RunConfig, seed: int, result: ExperimentResult
) -> None:
    payload = {
        "key": key,
        "config": {
            "experiment": config.experiment,
            "seed": int(seed),
            "quick": bool(config.quick),
        },
        "result": result.to_dict(),
    }
    tmp = _cache_path(cache_dir, key).with_suffix(".tmp")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, default=float), encoding="utf-8"
    )
    tmp.replace(_cache_path(cache_dir, key))  # atomic publish


def _execute(payload: tuple) -> dict:
    """Worker entry point (top-level, hence picklable): run one config."""
    name, seed, quick = payload
    from repro.experiments.runner import run_experiment

    return run_experiment(name, seed=seed, quick=quick).to_dict()


def run_sweep(
    configs,
    *,
    jobs: int = 1,
    cache_dir: "str | Path | None" = None,
    base_seed: int = 0,
    on_result=None,
) -> list[SweepOutcome]:
    """Run many experiment configs, in parallel, with caching.

    Parameters
    ----------
    configs:
        Iterable of :class:`RunConfig` or bare experiment names (bare
        names get derived seeds and ``quick=False``).
    jobs:
        Worker processes; ``1`` executes inline (no pool spin-up).
    cache_dir:
        Directory for the content-hash cache; ``None`` disables caching.
    base_seed:
        Entropy root for configs without an explicit seed.
    on_result:
        Optional callback ``on_result(outcome)`` invoked as each run
        finishes (cached hits fire immediately).

    Returns
    -------
    Outcomes in the same order as *configs*, regardless of completion
    order — parallelism never reorders the report.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    normal: list[RunConfig] = [
        cfg if isinstance(cfg, RunConfig) else RunConfig(str(cfg)) for cfg in configs
    ]
    seeds = [cfg.resolved_seed(base_seed) for cfg in normal]
    keys = [config_key(cfg, seed) for cfg, seed in zip(normal, seeds)]

    cache: "Path | None" = None
    if cache_dir is not None:
        cache = Path(cache_dir).expanduser()
        cache.mkdir(parents=True, exist_ok=True)

    outcomes: list["SweepOutcome | None"] = [None] * len(normal)
    pending: list[int] = []
    for i, (cfg, seed, key) in enumerate(zip(normal, seeds, keys)):
        hit = _cache_load(cache, key) if cache is not None else None
        if hit is not None:
            outcomes[i] = SweepOutcome(cfg, seed, hit, cached=True, key=key)
            if on_result is not None:
                on_result(outcomes[i])
        else:
            pending.append(i)

    def finish(i: int, result_dict: dict) -> None:
        result = ExperimentResult.from_dict(result_dict)
        if cache is not None:
            _cache_store(cache, keys[i], normal[i], seeds[i], result)
        outcomes[i] = SweepOutcome(normal[i], seeds[i], result, cached=False, key=keys[i])
        if on_result is not None:
            on_result(outcomes[i])

    if pending:
        payloads = [(normal[i].experiment, seeds[i], normal[i].quick) for i in pending]
        if jobs == 1 or len(pending) == 1:
            for i, payload in zip(pending, payloads):
                finish(i, _execute(payload))
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                for i, result_dict in zip(pending, pool.map(_execute, payloads)):
                    finish(i, result_dict)
    return [out for out in outcomes if out is not None]
