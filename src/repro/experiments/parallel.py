"""Fault-tolerant parallel experiment sweeps.

The experiments are embarrassingly parallel — each run is a pure function
of ``(experiment name, seed, quick)`` — and this module turns a list of
run configs into a supervised multi-process sweep with four guarantees:

* **Deterministic seeds.**  A config without an explicit seed gets one
  derived via :func:`repro.utils.rng.derive_seed` from the sweep's base
  seed and the config's identity — a pure function of the config, never
  of worker scheduling, completion order, or how many runs came before.
  Retry back-off jitter is derived the same way, so even the *failure
  schedule* is reproducible.
* **Content-addressed caching.**  Every completed run is stored under
  ``<cache_dir>/<sha256(config)>.json``; the key hashes the canonical
  JSON of the *entire* serialised :class:`~repro.config.RunConfig`
  (``to_dict()``) plus the package version and cache schema, so a
  re-sweep only recomputes configs whose inputs actually changed.
  The payload records the attempt's *effective* seed, so cache hits
  keep honest provenance even when a timeout retry reseeded the run
  (such outcomes carry ``reseeded=True``).  Corrupted or truncated
  entries (torn writes, disk faults) are detected, counted in the
  ``sweep.cache.corrupt`` metric, and recomputed — never raised to
  the caller.
* **Fault tolerance.**  A :class:`SweepPolicy` adds per-attempt
  timeouts, bounded retry with exponential back-off + deterministic
  jitter, and poison-config quarantine after a failure budget is spent.
  Attempts run in disposable worker processes (one per attempt) so a
  hung worker can be killed on timeout and a crashed worker
  (``os._exit``, ``SIGKILL``, OOM) surfaces as a retryable failure
  instead of a lost sweep.  Exception/crash retries reuse the config's
  seed (results stay reproducible); timeout retries derive a *distinct*
  seed via ``derive_seed(seed, "retry", k)`` to escape seed-dependent
  pathological instances.
* **Crash-safe resume.**  With a journal
  (:mod:`repro.experiments.journal`), every completion, failure and
  quarantine is fsynced before the sweep proceeds; ``resume=True``
  carries completed work, failure counts and quarantine decisions
  across driver crashes, so an interrupted sweep finishes with results
  identical to an uninterrupted one.

Failures are observable, not silent: counters flow through the active
:mod:`repro.obs` metrics registry under ``sweep.*`` and lifecycle events
(``sweep_task_retry``, ``sweep_task_quarantined``, …) through the active
trace recorder, from which :func:`sweep_failure_history` reconstructs
the whole failure story of a recorded sweep.

Deliberate failures for tests and drills come from
:class:`repro.testing.FaultPlan` (CLI: ``--inject-faults``).

Used by ``python -m repro.experiments --jobs N --cache-dir DIR`` and
importable directly — either with a typed :class:`~repro.config.SweepConfig`
(the canonical form; its serialisation is what the journal records) or
with the historical ``(configs, **knobs)`` calling convention::

    from repro.config import RunConfig, SweepConfig
    from repro.experiments.parallel import run_sweep

    outcomes = run_sweep(SweepConfig(runs=("fig2", "fig3"), jobs=4,
                                     cache_dir="~/.repro-cache",
                                     timeout=300, retries=2,
                                     quarantine=True))
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path

from repro.config import RunConfig, SweepConfig
from repro.errors import ExperimentError, SweepAbortedError
from repro.experiments.base import ExperimentResult
from repro.experiments.journal import DEFAULT_JOURNAL_NAME, SweepJournal
from repro.obs.events import (
    SWEEP_END,
    SWEEP_START,
    SWEEP_TASK_COMPLETE,
    SWEEP_TASK_FAILED,
    SWEEP_TASK_QUARANTINED,
    SWEEP_TASK_RETRY,
    SWEEP_TASK_START,
)
from repro.obs.metrics import MetricsRegistry, active_metrics
from repro.obs.recorder import active_recorder
from repro.obs.spans import SpanProfiler, active_profiler, activate_profiler
from repro.runtime.supervise import SupervisedProcess, mp_context
from repro.utils.rng import derive_jitter, derive_seed

__all__ = [
    "RunConfig",
    "SweepPolicy",
    "SweepOutcome",
    "config_key",
    "run_sweep",
    "sweep_failure_history",
]

#: bump when the cache payload layout changes; invalidates old entries
#: (2: the key and payload carry the whole serialised RunConfig, not the
#: historical ``{experiment, seed, quick}`` subset)
CACHE_SCHEMA = 2

#: outcome statuses
OK = "ok"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SweepPolicy:
    """Fault-tolerance knobs for one sweep invocation.

    The default policy is *strict* and matches the historical harness:
    no timeout, no retries, the first failure aborts the sweep.  Turn on
    ``quarantine`` to trade abort-on-failure for report-and-continue.

    ``timeout``
        Per-attempt wall-clock budget in seconds (``None`` disables).
        Requires process isolation; a timed-out worker is killed.
    ``max_retries``
        Extra attempts per config *per sweep invocation* after the
        first.
    ``backoff_base`` / ``backoff_cap`` / ``backoff_jitter``
        Retry ``k`` waits ``min(cap, base·2^(k−1))·(1 + jitter·u)``
        seconds, with ``u`` drawn deterministically from
        ``derive_jitter(seed, "backoff", k)`` — resumed sweeps back off
        on the same schedule.
    ``quarantine``
        When ``True``, a config that spends its failure budget becomes a
        reported ``quarantined`` outcome and the sweep continues; when
        ``False`` the sweep aborts with :class:`SweepAbortedError`.
    ``quarantine_after``
        Cumulative-failure budget per config (journaled failures from
        interrupted runs count).  Defaults to ``max_retries + 1``.
    ``isolate``
        Force one-process-per-attempt execution even when nothing else
        requires it (timeouts and process-level fault plans force it
        automatically).
    """

    timeout: "float | None" = None
    max_retries: int = 0
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    backoff_jitter: float = 0.5
    quarantine: bool = False
    quarantine_after: "int | None" = None
    isolate: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ExperimentError(f"timeout must be > 0 seconds, got {self.timeout}")
        if self.max_retries < 0:
            raise ExperimentError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.backoff_jitter < 0:
            raise ExperimentError("backoff parameters must be >= 0")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ExperimentError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    @property
    def failure_budget(self) -> int:
        """Cumulative failures a config may accrue before quarantine."""
        if self.quarantine_after is not None:
            return self.quarantine_after
        return self.max_retries + 1

    def backoff_delay(self, seed: int, retry_number: int) -> float:
        """Deterministic delay before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            return 0.0
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** (retry_number - 1)))
        return base * (1.0 + self.backoff_jitter * derive_jitter(seed, "backoff", retry_number))


@dataclass(frozen=True)
class SweepOutcome:
    """One finished config: result or quarantine report, plus provenance.

    ``status`` is ``"ok"`` (``result`` is set) or ``"quarantined"``
    (``result`` is ``None`` and ``error`` holds the last failure).
    ``seed`` is the *effective* seed of the successful attempt — it
    differs from ``config.resolved_seed`` only when a timeout retry
    reseeded the run, in which case ``reseeded`` is ``True``; cache hits
    report the stored effective seed, so a reseeded entry keeps honest
    provenance across sweeps.  A reseeded result is *not* a pure
    function of the config's own seed (the timeout that triggered
    reseeding depends on machine speed).  ``attempts`` counts attempts
    made by this invocation (0 for cache hits and journal-carried
    quarantines); ``failures`` is the cumulative count including
    journaled history.
    """

    config: RunConfig
    seed: int
    result: "ExperimentResult | None"
    cached: bool
    key: str
    status: str = OK
    attempts: int = 1
    failures: int = 0
    error: "str | None" = None
    reseeded: bool = False

    @property
    def ok(self) -> bool:
        return self.status == OK


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def config_key(config: RunConfig, seed: int) -> str:
    """Content hash identifying one run: config + code version + schema.

    The hash covers the *entire* serialised config (with *seed* — the
    resolved effective seed — substituted in), canonical JSON (sorted
    keys, no whitespace variance) through SHA-256; two configs collide
    iff they would produce the same result.
    """
    payload = json.dumps(
        {
            "config": config.with_seed(int(seed)).to_dict(),
            "version": _package_version(),
            "schema": CACHE_SCHEMA,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def _cache_load(
    cache_dir: Path, key: str
) -> "tuple[ExperimentResult | None, int | None, bool]":
    """Load a cache entry: ``(result_or_None, stored_seed, entry_was_corrupt)``.

    ``stored_seed`` is the *effective* seed the cached run executed with
    — it differs from the config's own seed when a timeout retry
    reseeded the attempt, and cache hits must report it rather than
    misattribute the result to the original seed.  Any failure mode of a
    stored entry — unreadable file, torn/truncated JSON, a stale key, or
    a payload :meth:`ExperimentResult.from_dict` rejects — is a
    *corrupt* miss: the caller recomputes and rewrites.
    """
    path = _cache_path(cache_dir, key)
    if not path.exists():
        return None, None, False
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("key") != key:
            return None, None, True
        seed = int(payload["config"]["seed"])
        return ExperimentResult.from_dict(payload["result"]), seed, False
    except (OSError, TypeError, ValueError, KeyError, ExperimentError):
        return None, None, True


def _cache_store(
    cache_dir: Path, key: str, config: RunConfig, seed: int, result: ExperimentResult
) -> Path:
    payload = {
        "key": key,
        "config": config.with_seed(int(seed)).to_dict(),
        "result": result.to_dict(),
    }
    path = _cache_path(cache_dir, key)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, default=float), encoding="utf-8"
    )
    tmp.replace(path)  # atomic publish
    return path


def _execute(payload: tuple) -> dict:
    """Inline attempt executor (top-level, hence monkeypatchable): run one config."""
    name, seed, quick = payload
    from repro.experiments.runner import run_experiment

    return run_experiment(name, seed=seed, quick=quick).to_dict()


def _worker_main(conn, payload: dict) -> None:
    """Isolated worker entry point: fire injected faults, run, report.

    Reports ``{"ok": True, "result": ...}`` or ``{"ok": False,
    "error": ...}`` over the pipe; a worker that dies without reporting
    (``os._exit``, SIGKILL, OOM) is detected parent-side as EOF.

    When the supervisor profiles (``payload["profile"]``), the attempt
    runs under a fresh :class:`~repro.obs.spans.SpanProfiler` and its
    snapshot rides along as ``"spans"`` in the report — on failures too,
    so a crashing attempt's burned time is still attributed.
    """
    profiler = None
    if payload.get("profile"):
        profiler = activate_profiler(SpanProfiler())

    def ship(message: dict) -> None:
        if profiler is not None and len(profiler):
            message["spans"] = profiler.snapshot()
        conn.send(message)

    try:
        faults = payload.get("faults")
        if faults is not None:
            from repro.testing.faults import FaultPlan

            FaultPlan.from_dict(faults).fire(payload["experiment"], payload["attempt"])
        result = _execute((payload["experiment"], payload["seed"], payload["quick"]))
        ship({"ok": True, "result": result})
    except BaseException as exc:  # noqa: BLE001 - workers must never re-raise
        try:
            ship({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


_mp_context = mp_context  # supervision primitives live in repro.runtime.supervise


class _WorkerTask(SupervisedProcess):
    """One isolated attempt: a supervised child process plus its sweep item."""

    def __init__(self, item: "_WorkItem", payload: dict, timeout: "float | None", ctx):
        self.item = item
        super().__init__(_worker_main, payload, timeout, ctx)


@dataclass
class _WorkItem:
    """One scheduled attempt of one config."""

    index: int  # position in the sweep's config list
    attempt: int  # cumulative failure count when this attempt launches
    seed: int  # effective seed for this attempt
    not_before: float = 0.0  # monotonic launch gate (back-off)


class _Sweep:
    """Mutable state and event plumbing for one ``run_sweep`` invocation."""

    def __init__(
        self, configs, seeds, keys, policy, cache, journal, faults, on_result,
        monitor=None,
    ):
        self.configs = configs
        self.seeds = seeds
        self.keys = keys
        self.policy = policy
        self.cache = cache
        self.journal = journal
        self.faults = faults
        self.on_result = on_result
        self.monitor = monitor
        self.outcomes: "list[SweepOutcome | None]" = [None] * len(configs)
        self.attempts_made = [0] * len(configs)
        self.failures = [0] * len(configs)
        self.timeouts = [0] * len(configs)
        if journal is not None:
            for i, key in enumerate(keys):
                self.failures[i] = journal.prior_failures(key)
                self.timeouts[i] = journal.prior_timeouts(key)
        registry = active_metrics()
        if registry is None:  # not `or`: an *empty* registry is falsy
            registry = MetricsRegistry()
        self.metrics = registry.scope("sweep")
        self.recorder = active_recorder()
        self.profiler = active_profiler()
        self._event_step = 0

    # -- observability -------------------------------------------------
    def emit(self, kind: str, **data) -> None:
        if self.recorder is not None:
            self.recorder.emit(kind, self._event_step, **data)
        if self.monitor is not None:
            self.monitor.on_event(kind, data)
            self.monitor.maybe_emit()
        self._event_step += 1

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def note_attempt_seconds(self, seconds: float) -> None:
        """One attempt finished (any verdict): record its wall-clock."""
        self.metrics.histogram("attempt_seconds").observe(seconds)
        if self.profiler is not None:
            self.profiler.add(("sweep.attempt",), int(seconds * 1e9))
        if self.monitor is not None:
            self.monitor.note_attempt_seconds(seconds)
            self.monitor.maybe_emit()

    def merge_worker_spans(self, spans: "dict | None") -> None:
        """Fold a worker's shipped span snapshot into the supervisor profiler."""
        if spans is not None and self.profiler is not None:
            self.profiler.merge(spans, prefix=("sweep.worker",))

    # -- seeds ---------------------------------------------------------
    def attempt_seed(self, index: int) -> int:
        """Effective seed for the config's next attempt.

        Exception/crash retries keep the config's own seed (results stay
        a pure function of the config); once an attempt has *timed out*,
        later attempts derive a distinct seed keyed by the timeout count
        to steer around seed-dependent pathological instances.
        """
        seed0 = self.seeds[index]
        if self.timeouts[index] == 0:
            return seed0
        return derive_seed(seed0, "retry", self.timeouts[index])

    # -- terminal transitions ------------------------------------------
    def finish(self, index: int, result_dict: dict, seed: int, cached: bool) -> None:
        result = ExperimentResult.from_dict(result_dict)
        cfg, key = self.configs[index], self.keys[index]
        reseeded = int(seed) != self.seeds[index]
        if self.cache is not None and not cached:
            path = _cache_store(self.cache, key, cfg, seed, result)
            if self.faults is not None and self.faults.corrupts_cache(
                cfg.experiment, self.failures[index]
            ):
                self.faults.corrupt_cache_entry(path)
        if self.journal is not None and not self.journal.is_completed(key):
            self.journal.record(
                "completed",
                key=key,
                experiment=cfg.experiment,
                seed=int(seed),
                attempt=self.failures[index],
            )
        self.outcomes[index] = SweepOutcome(
            cfg,
            int(seed),
            result,
            cached=cached,
            key=key,
            status=OK,
            attempts=self.attempts_made[index],
            failures=self.failures[index],
            reseeded=reseeded,
        )
        self.count("completed")
        self.emit(
            SWEEP_TASK_COMPLETE,
            experiment=cfg.experiment,
            seed=int(seed),
            attempt=self.failures[index],
            cached=bool(cached),
            reseeded=bool(reseeded),
        )
        if self.on_result is not None:
            self.on_result(self.outcomes[index])

    def quarantine(self, index: int, error: str, journal_it: bool = True) -> None:
        cfg, key = self.configs[index], self.keys[index]
        if journal_it and self.journal is not None:
            self.journal.record(
                "quarantined",
                key=key,
                experiment=cfg.experiment,
                failures=self.failures[index],
                error=error,
            )
        self.outcomes[index] = SweepOutcome(
            cfg,
            self.seeds[index],
            None,
            cached=False,
            key=key,
            status=QUARANTINED,
            attempts=self.attempts_made[index],
            failures=self.failures[index],
            error=error,
        )
        self.count("quarantined")
        self.emit(
            SWEEP_TASK_QUARANTINED,
            experiment=cfg.experiment,
            failures=self.failures[index],
            error=error,
        )
        if self.on_result is not None:
            self.on_result(self.outcomes[index])

    # -- failure bookkeeping -------------------------------------------
    def register_failure(self, item: _WorkItem, kind: str, error: str) -> "_WorkItem | None":
        """Record one failed attempt; return the retry item or ``None``.

        ``None`` means the config is terminal for this invocation: it
        was quarantined (policy.quarantine) or the sweep must abort
        (strict policy — the caller raises after cleanup).
        """
        index = item.index
        cfg, key = self.configs[index], self.keys[index]
        self.failures[index] += 1
        if kind == "timeout":
            self.timeouts[index] += 1
            self.count("timeouts")
        elif kind == "crash":
            self.count("crashes")
        self.count("failures")
        if self.journal is not None:
            self.journal.record(
                "failed",
                key=key,
                experiment=cfg.experiment,
                attempt=item.attempt,
                kind=kind,
                error=error,
            )
        self.emit(
            SWEEP_TASK_FAILED,
            experiment=cfg.experiment,
            attempt=item.attempt,
            failure=kind,
            error=error,
        )
        may_retry = (
            self.attempts_made[index] <= self.policy.max_retries
            and self.failures[index] < self.policy.failure_budget
        )
        if may_retry:
            delay = self.policy.backoff_delay(
                self.seeds[index], self.attempts_made[index]
            )
            retry = _WorkItem(
                index=index,
                attempt=self.failures[index],
                seed=self.attempt_seed(index),
                not_before=time.monotonic() + delay,
            )
            self.count("retries")
            self.emit(
                SWEEP_TASK_RETRY,
                experiment=cfg.experiment,
                failure=kind,
                failures=self.failures[index],
                next_attempt=retry.attempt,
                next_seed=int(retry.seed),
                delay=float(delay),
            )
            return retry
        if self.policy.quarantine:
            self.quarantine(index, error)
        return None


def _resolve_journal(journal, resume: bool, cache: "Path | None") -> "SweepJournal | None":
    if isinstance(journal, SweepJournal):
        return journal
    if journal is None and resume:
        if cache is None:
            raise ExperimentError(
                "resume=True needs a journal path or a cache_dir to find one in"
            )
        journal = cache / DEFAULT_JOURNAL_NAME
    if journal is None:
        return None
    return SweepJournal(journal, resume=resume)


def run_sweep(
    configs,
    *,
    jobs: int = 1,
    cache_dir: "str | Path | None" = None,
    base_seed: int = 0,
    on_result=None,
    policy: "SweepPolicy | None" = None,
    journal=None,
    resume: bool = False,
    faults=None,
    monitor=None,
) -> list[SweepOutcome]:
    """Run many experiment configs, in parallel, with caching and retries.

    Parameters
    ----------
    configs:
        A :class:`~repro.config.SweepConfig` (the canonical form —
        ``jobs``/``cache_dir``/``base_seed``/``policy``/``resume`` are
        then taken from the config and the keyword forms must be left at
        their defaults), or an iterable of :class:`RunConfig` / bare
        experiment names (bare names get derived seeds and
        ``quick=False``).
    jobs:
        Maximum concurrent worker processes.  ``jobs > 1`` runs pending
        configs in isolated workers, up to ``jobs`` at a time; ``1``
        executes inline when the policy permits (no timeout, no
        process-level faults, no forced isolation).
    cache_dir:
        Directory for the content-hash cache; ``None`` disables caching.
    base_seed:
        Entropy root for configs without an explicit seed.
    on_result:
        Optional callback ``on_result(outcome)`` invoked as each config
        reaches a terminal state (cached hits fire immediately).
    policy:
        :class:`SweepPolicy`; the default is strict (no retries, abort
        on first failure) for backward compatibility.
    journal:
        Journal file path or :class:`SweepJournal` recording every
        completion/failure/quarantine durably; defaults to
        ``<cache_dir>/sweep-journal.jsonl`` when ``resume=True``.
    resume:
        Continue an interrupted sweep: journaled completions reload from
        the cache, failure counts carry forward into retry budgets and
        fault-plan attempt indices, quarantined configs stay quarantined.
    faults:
        Optional :class:`repro.testing.FaultPlan` of injected failures.
    monitor:
        Optional :class:`repro.obs.analysis.SweepProgress` (or anything
        with ``on_event``/``note_attempt_seconds``/``maybe_emit``): fed
        every lifecycle event and attempt latency as the sweep runs, for
        periodic live status lines.

    Returns
    -------
    Outcomes in the same order as *configs*, regardless of completion
    order — parallelism never reorders the report.  With
    ``policy.quarantine`` enabled, failed configs come back as
    ``status="quarantined"`` outcomes instead of aborting the sweep.
    """
    if isinstance(configs, SweepConfig):
        sweep_config = configs
    else:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        sweep_config = SweepConfig(
            runs=tuple(
                cfg if isinstance(cfg, RunConfig) else RunConfig(str(cfg))
                for cfg in configs
            ),
            base_seed=int(base_seed),
            jobs=int(jobs),
            cache_dir=None if cache_dir is None else str(cache_dir),
            resume=bool(resume),
            **(
                {}
                if policy is None
                else {
                    "timeout": policy.timeout,
                    "retries": policy.max_retries,
                    "backoff_base": policy.backoff_base,
                    "backoff_cap": policy.backoff_cap,
                    "backoff_jitter": policy.backoff_jitter,
                    "quarantine": policy.quarantine,
                    "quarantine_after": policy.quarantine_after,
                    "isolate": policy.isolate,
                }
            ),
        )
    jobs = sweep_config.jobs
    cache_dir = sweep_config.cache_dir
    base_seed = sweep_config.base_seed
    resume = sweep_config.resume
    policy = sweep_config.policy()
    if faults is not None and not faults:
        faults = None

    normal: list[RunConfig] = list(sweep_config.runs)
    seeds = [cfg.resolved_seed(base_seed) for cfg in normal]
    keys = [config_key(cfg, seed) for cfg, seed in zip(normal, seeds)]

    cache: "Path | None" = None
    if cache_dir is not None:
        cache = Path(cache_dir).expanduser()
        cache.mkdir(parents=True, exist_ok=True)

    owns_journal = not isinstance(journal, SweepJournal)
    journal_obj = _resolve_journal(journal, resume, cache)

    isolate = (
        policy.isolate
        or policy.timeout is not None
        or (faults is not None and faults.needs_isolation)
    )

    sweep = _Sweep(
        normal, seeds, keys, policy, cache, journal_obj, faults, on_result,
        monitor=monitor,
    )
    sweep.emit(SWEEP_START, configs=len(normal), jobs=int(jobs), resumed=bool(resume))
    try:
        if journal_obj is not None:
            # the serialised SweepConfig is the journal's provenance
            # record: a resumed or audited sweep sees exactly what was
            # asked for, not just how many configs there were
            journal_obj.record(
                "sweep_start",
                configs=len(normal),
                base_seed=int(base_seed),
                sweep=sweep_config.to_dict(),
            )
        pending: list[_WorkItem] = []
        for i, key in enumerate(keys):
            sweep.count("tasks")
            if journal_obj is not None and journal_obj.is_quarantined(key):
                entry = journal_obj.state.quarantined[key]
                sweep.quarantine(
                    i, str(entry.get("error", "quarantined in a previous run")),
                    journal_it=False,
                )
                continue
            hit, hit_seed, corrupt = (
                (None, None, False) if cache is None else _cache_load(cache, key)
            )
            if corrupt:
                sweep.count("cache.corrupt")
            if hit is not None:
                sweep.count("cache.hits")
                # report the seed the cached run actually executed with,
                # which differs from seeds[i] for timeout-reseeded entries
                sweep.finish(i, hit.to_dict(), hit_seed, cached=True)
                continue
            if cache is not None:
                sweep.count("cache.misses")
            pending.append(
                _WorkItem(index=i, attempt=sweep.failures[i], seed=sweep.attempt_seed(i))
            )

        if pending:
            # jobs > 1 needs worker processes to actually run concurrently;
            # a single pending config gains nothing from process spin-up
            if isolate or (jobs > 1 and len(pending) > 1):
                _run_isolated(sweep, pending, jobs, faults)
            else:
                _run_inline(sweep, pending)
        sweep.emit(
            SWEEP_END,
            completed=sum(1 for o in sweep.outcomes if o is not None and o.ok),
            quarantined=sum(
                1 for o in sweep.outcomes if o is not None and not o.ok
            ),
            failures=sum(sweep.failures),
        )
        if monitor is not None:
            monitor.maybe_emit(force=True)  # final line always lands
    finally:
        if journal_obj is not None and owns_journal:
            journal_obj.close()
    return [out for out in sweep.outcomes if out is not None]


def _launch_event(sweep: _Sweep, item: _WorkItem) -> None:
    sweep.attempts_made[item.index] += 1
    sweep.count("attempts")
    sweep.emit(
        SWEEP_TASK_START,
        experiment=sweep.configs[item.index].experiment,
        seed=int(item.seed),
        attempt=item.attempt,
    )


def _run_inline(sweep: _Sweep, pending: "list[_WorkItem]") -> None:
    """Sequential in-process execution (no timeout support by design)."""
    queue = list(pending)
    while queue:
        now = time.monotonic()
        # FIFO among launch-ready items, so a backing-off retry never
        # stalls work that could run during its delay
        item = next((it for it in queue if it.not_before <= now), None)
        if item is None:
            # everything is backing off; sleep to the earliest gate
            item = min(queue, key=lambda it: it.not_before)
            time.sleep(max(0.0, item.not_before - now))
        queue.remove(item)
        _launch_event(sweep, item)
        cfg = sweep.configs[item.index]
        started = time.monotonic()
        try:
            if sweep.faults is not None:
                sweep.faults.fire(cfg.experiment, item.attempt)
            result_dict = _execute((cfg.experiment, item.seed, cfg.quick))
        except Exception as exc:
            sweep.note_attempt_seconds(time.monotonic() - started)
            retry = sweep.register_failure(
                item, "error", f"{type(exc).__name__}: {exc}"
            )
            if retry is not None:
                queue.append(retry)  # its not_before gate schedules the rerun
            elif not sweep.policy.quarantine:
                raise  # strict policy: surface the original exception
            continue
        sweep.note_attempt_seconds(time.monotonic() - started)
        sweep.finish(item.index, result_dict, item.seed, cached=False)


def _run_isolated(sweep: _Sweep, pending: "list[_WorkItem]", jobs: int, faults) -> None:
    """Supervised one-process-per-attempt execution with kill-on-timeout."""
    ctx = _mp_context()
    todo: list[_WorkItem] = list(pending)
    running: list[_WorkerTask] = []
    fault_payload = None if faults is None else faults.to_dict()

    def launch(item: _WorkItem) -> None:
        cfg = sweep.configs[item.index]
        _launch_event(sweep, item)
        payload = {
            "experiment": cfg.experiment,
            "seed": int(item.seed),
            "quick": bool(cfg.quick),
            "attempt": int(item.attempt),
            "faults": fault_payload,
            "profile": sweep.profiler is not None,
        }
        running.append(_WorkerTask(item, payload, sweep.policy.timeout, ctx))

    def abort(message: str) -> None:
        while running:
            running.pop().terminate()
        raise SweepAbortedError(message)

    try:
        while todo or running:
            now = time.monotonic()
            ready_items = sorted(
                (it for it in todo if it.not_before <= now),
                key=lambda it: it.not_before,
            )
            for item in ready_items[: max(0, jobs - len(running))]:
                todo.remove(item)
                launch(item)
            if not running:
                # every queued item is backing off; sleep to the earliest gate
                time.sleep(max(0.0, min(it.not_before for it in todo) - now))
                continue

            horizon = [t.deadline for t in running if t.deadline is not None]
            if len(running) < jobs:
                # a back-off gate only matters while a slot is free to
                # launch into; with every slot busy, ready items waiting
                # in todo must not collapse the wait into a busy-poll
                horizon.extend(it.not_before for it in todo)
            wait_for = None
            if horizon:
                wait_for = max(0.0, min(horizon) - time.monotonic())
            ready_conns = set(_wait_connections([t.conn for t in running], wait_for))

            now = time.monotonic()
            for task in list(running):
                if task.conn in ready_conns:
                    status, payload, spans = task.harvest()
                    sweep.merge_worker_spans(spans)
                elif task.expired(now):
                    task.terminate()
                    status, payload = (
                        "timeout",
                        f"attempt timed out after {sweep.policy.timeout}s",
                    )
                else:
                    continue
                running.remove(task)
                sweep.note_attempt_seconds(time.monotonic() - task.started)
                if status == "ok":
                    sweep.finish(task.item.index, payload, task.item.seed, cached=False)
                    continue
                retry = sweep.register_failure(task.item, status, str(payload))
                if retry is not None:
                    todo.append(retry)
                elif not sweep.policy.quarantine:
                    abort(
                        f"sweep aborted: {sweep.configs[task.item.index].experiment} "
                        f"failed {sweep.failures[task.item.index]} time(s): {payload}"
                    )
    except BaseException:
        for task in running:
            task.terminate()
        raise


def sweep_failure_history(events) -> dict:
    """Reconstruct a sweep's per-experiment lifecycle from trace events.

    Returns ``{experiment: [(kind, data), ...]}`` in emission order, the
    replayable failure history wired through the trace recorder: every
    attempt, failure, retry, quarantine and completion.  Non-sweep
    events (engine-level records interleaved in the same trace) are
    ignored, so the function works on mixed traces and on filtered
    golden fixtures alike.
    """
    per_task_kinds = {
        SWEEP_TASK_START,
        SWEEP_TASK_FAILED,
        SWEEP_TASK_RETRY,
        SWEEP_TASK_QUARANTINED,
        SWEEP_TASK_COMPLETE,
    }
    history: dict = {}
    for event in events:
        if event.kind in per_task_kinds:
            history.setdefault(event.data["experiment"], []).append(
                (event.kind, dict(event.data))
            )
    return history
