"""ADAPT — tracking abrupt parallelism changes (§4.1).

The paper's motivating stress case (from LonESTAR [15]): available
parallelism can go from ~0 to ~1000 tasks within ~30 temporal steps.  We
replay synthetic profiles with exactly controlled available parallelism
(disjoint-clique phase graphs) and measure how quickly each controller
re-tracks after every transition.

Metrics per transition: *lag* — steps until the allocation re-enters the
``±30%`` band around the new phase's oracle ``μ``; plus overall mean
conflict-ratio error and total committed work.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.apps.profiles import (
    Phase,
    ScheduledReplayWorkload,
    delaunay_burst_profile,
    spike_profile,
    step_profile,
)
from repro.control.base import Controller
from repro.control.hybrid import HybridController
from repro.control.recurrence import RecurrenceAController
from repro.control.tuning import oracle_mu
from repro.experiments.base import ExperimentResult
from repro.experiments.fig3 import default_hybrid
from repro.utils.rng import ensure_rng, spawn

__all__ = ["transition_lags", "run"]


def transition_lags(
    phases: list[Phase],
    m_trace: np.ndarray,
    mus: list[int],
    band: float = 0.3,
) -> list[int]:
    """Steps after each phase start until ``m_t`` enters ``μ·(1±band)``.

    Returns one lag per phase (the first phase's lag is the cold-start
    settling).  A lag equal to the phase duration means "never tracked".
    """
    lags: list[int] = []
    start = 0
    for phase, mu in zip(phases, mus):
        end = min(start + phase.duration, len(m_trace))
        lo, hi = (1.0 - band) * mu, (1.0 + band) * mu
        window = m_trace[start:end]
        hits = np.nonzero((window >= lo) & (window <= hi))[0]
        lags.append(int(hits[0]) if hits.size else phase.duration)
        start = end
    return lags


def _profile(name: str, total_tasks: int) -> list[Phase]:
    if name == "step":
        return step_profile(4, 250, total_tasks, steps_per_phase=60)
    if name == "spike":
        # the peak must outlast the theoretical minimum climb time
        # (log_{ρ/r_min}(μ) windows), else no controller can track it
        return spike_profile(4, 400, total_tasks, base_steps=50, peak_steps=24)
    if name == "burst":
        return delaunay_burst_profile(peak=500, total_tasks=total_tasks)
    raise ValueError(f"unknown profile {name!r}")


def run(
    profiles: tuple[str, ...] = ("step", "spike", "burst"),
    total_tasks: int = 2000,
    rho: float = 0.20,
    seed=None,
    controllers: "dict[str, Callable[[], Controller]] | None" = None,
) -> ExperimentResult:
    """Re-tracking lags of each controller on each profile."""
    rng = ensure_rng(seed)
    if controllers is None:
        controllers = {
            "hybrid": lambda: default_hybrid(rho),
            "hybrid(no split)": lambda: HybridController(rho),
            "recA": lambda: RecurrenceAController(rho),
        }
    result = ExperimentResult(
        name="ADAPT abrupt-profile tracking",
        description=(
            f"Re-tracking lag after abrupt parallelism changes; ρ={rho:.0%}, "
            f"{total_tasks} tasks per phase graph."
        ),
    )
    for prof_name in profiles:
        phases = _profile(prof_name, total_tasks)
        mu_rng, *run_rngs = spawn(rng, 1 + len(controllers))
        mus = [
            oracle_mu(ph.graph, rho, grid_size=16, reps=60, seed=mu_rng)
            for ph in phases
        ]
        rows = []
        for (name, factory), run_rng in zip(controllers.items(), run_rngs):
            wl = ScheduledReplayWorkload(phases)
            engine = wl.build_engine(factory(), seed=run_rng)
            res = engine.run(max_steps=wl.total_steps())
            lags = transition_lags(phases, res.m_trace, mus, band=0.4)
            rows.append(
                (
                    name,
                    " ".join(str(lag) for lag in lags),
                    float(np.mean(lags[1:])) if len(lags) > 1 else float(lags[0]),
                    res.total_committed,
                    float(np.abs(res.r_trace - rho).mean()),
                )
            )
            result.add_series(
                f"{prof_name}/{name} m_t (μ per phase: {mus})",
                list(range(len(res.m_trace))),
                res.m_trace.tolist(),
            )
            result.scalars[f"{prof_name}_{name}_mean_lag"] = (
                float(np.mean(lags[1:])) if len(lags) > 1 else float(lags[0])
            )
        result.add_table(
            f"profile '{prof_name}' (phase μ: {mus})",
            ["controller", "lag per phase", "mean lag (post-start)", "committed", "|r−ρ| mean"],
            rows,
        )
    result.add_note(
        "Lag = steps until m_t re-enters ±30% of the new phase optimum; "
        "phase duration = never tracked."
    )
    return result
