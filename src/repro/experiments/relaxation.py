"""RELAX — commit-order relaxation depth vs conflicts and control.

The relaxed policy (:class:`~repro.runtime.policies.RelaxedCommitOrder`)
interpolates between the strict ordered engine (``k=1``) and the paper's
§2 unordered model (``k >= n``).  This experiment quantifies the bridge
on one fixed CC graph:

* the **conflict-ratio curve** ``r̄(k)`` at fixed allocations: strict
  order serialises the batch draw onto the earliest tasks (neighbours in
  a contended region), deeper windows spread it out — the curve shows
  how much conflict pressure each extra unit of relaxation buys off;
* **§4 controller convergence vs k**: the ρ-targeting hybrid controller
  runs on every depth; its settling step and steady-state tracking error
  (via :func:`repro.obs.convergence_report`) show that adaptive
  allocation needs only a monotone ``r̄(m)``, not strict order — it
  settles across the whole relaxation range;
* an ``async`` staleness-window run rides along as the arrival-order
  reference point.

Every engine run is recorded into one structured trace and the whole
trace is pushed through :func:`repro.obs.verify_trace` before the report
is assembled — the curves are *replayable* measurements, not one-off
numbers.
"""

from __future__ import annotations

from repro.config import RunConfig
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.graph import random_regular
from repro.obs import (
    TraceRecorder,
    active_recorder,
    convergence_report,
    split_runs,
    verify_trace,
)
from repro.utils.rng import ensure_rng

__all__ = ["run"]


def _order_specs(n: int, ks: "tuple[int, ...]", window: int) -> "list[str]":
    specs = []
    for k in ks:
        specs.append("ordered" if k == 1 else f"relaxed:{k}")
    specs.append(f"async:{window}")
    return specs


def _depth(spec: str, n: int) -> float:
    """Numeric relaxation depth of a spec (for the k axis)."""
    if spec == "ordered":
        return 1.0
    return float(spec.split(":", 1)[1])


def run(
    n: int = 600,
    d: int = 12,
    ks: "tuple[int, ...]" = (1, 2, 4, 16, 64, 600),
    fixed_m: int = 32,
    rho: float = 0.30,
    window: int = 16,
    max_steps: int = 150,
    seed=None,
) -> ExperimentResult:
    """Conflict-ratio and controller-convergence curves vs relaxation depth."""
    rng = ensure_rng(seed)
    graph_seed = int(rng.integers(0, 2**31 - 1))
    run_seed = int(rng.integers(0, 2**31 - 1))

    result = ExperimentResult(
        name="RELAX commit-order relaxation",
        description=(
            f"{d}-regular CC graph, n={n}, replay workload, {max_steps} steps "
            f"per run; depths k={list(ks)} plus async:{window}. All runs "
            "recorded and replay-verified."
        ),
    )

    specs = _order_specs(n, ks, window)
    # adopt the ambient recorder when one is active (the CLI's --trace),
    # so the saved trace carries these runs; otherwise record privately —
    # the in-process replay gate below reads the same events either way,
    # skipping whatever other experiments already recorded
    recorder = active_recorder()
    if recorder is None:  # truthiness won't do: an idle recorder is empty
        recorder = TraceRecorder()
    first_event = len(recorder.events)

    # -- conflict ratio at a fixed allocation ---------------------------
    fixed_rows = []
    ratio_xs: "list[float]" = []
    ratio_ys: "list[float]" = []
    for spec in specs:
        config = RunConfig(
            workload="replay",
            controller="fixed",
            m=fixed_m,
            order=spec,
            max_steps=max_steps,
        )
        res = run_api(config, graph_seed, run_seed, recorder, n, d)
        fixed_rows.append(
            (
                spec,
                len(res),
                res.total_committed,
                res.total_aborted,
                round(res.mean_conflict_ratio, 4),
            )
        )
        result.scalars[f"ratio_{spec}"] = res.mean_conflict_ratio
        if spec != f"async:{window}":
            ratio_xs.append(_depth(spec, n))
            ratio_ys.append(res.mean_conflict_ratio)
    result.add_table(
        f"conflict ratio at fixed m={fixed_m}",
        ["order", "steps", "committed", "aborted", "r̄"],
        fixed_rows,
    )
    result.add_series("conflict ratio vs k", ratio_xs, ratio_ys)

    # -- §4 controller convergence per depth ----------------------------
    adaptive_rows = []
    settle_xs: "list[float]" = []
    settle_ys: "list[float]" = []
    run_slices = []
    start = len(recorder.events)
    for spec in specs:
        config = RunConfig(
            workload="replay",
            rho=rho,
            order=spec,
            max_steps=max_steps,
        )
        res = run_api(config, graph_seed, run_seed, recorder, n, d)
        run_slices.append((spec, start, len(recorder.events)))
        start = len(recorder.events)
        adaptive_rows.append((spec, res))
    events = recorder.events
    rendered_rows = []
    for (spec, lo, hi), (spec2, res) in zip(run_slices, adaptive_rows):
        report = convergence_report(events[lo:hi], rho=rho)
        settling = report.settling_step if report.settled else None
        rendered_rows.append(
            (
                spec,
                len(res),
                round(float(res.m_trace.mean()), 2),
                round(res.mean_conflict_ratio, 4),
                settling if settling is not None else "never",
                round(report.tracking_error, 4),
            )
        )
        result.scalars[f"settling_{spec}"] = (
            float(settling) if settling is not None else float("nan")
        )
        result.scalars[f"tracking_{spec}"] = report.tracking_error
        if spec != f"async:{window}":
            settle_xs.append(_depth(spec, n))
            settle_ys.append(float(settling if settling is not None else max_steps))
    result.add_table(
        f"hybrid controller convergence (rho={rho:g})",
        ["order", "steps", "mean m", "r̄", "settling step", "tracking RMS"],
        rendered_rows,
    )
    result.add_series("settling step vs k", settle_xs, settle_ys)

    # -- replay gate: the curves above are replayable measurements ------
    own_events = recorder.events[first_event:]
    reports = verify_trace(own_events)
    runs = split_runs(own_events)
    if len(reports) != len(runs) or len(runs) != 2 * len(specs):
        raise ExperimentError(
            f"expected {2 * len(specs)} replay-verified runs, got {len(reports)}"
        )
    result.scalars["replay_verified_runs"] = float(len(reports))
    result.add_note(
        "Relaxation monotonically relieves ordered conflict pressure toward "
        "the unordered k>=n limit, and the rho-targeting controller settles "
        "at every depth — strict order is a semantic choice, not a "
        "stability requirement. All curves replay-verified from the trace."
    )
    return result


def run_api(config, graph_seed, run_seed, recorder, n, d):
    """One recorded engine run of *config* over the shared graph."""
    from repro.api import run as api_run

    graph = random_regular(n, d, seed=graph_seed)
    return api_run(config, graph=graph, seed=run_seed, recorder=recorder)
