"""Distributed-run CLI: ``python -m repro.experiments.shardrun``.

The operational front end of the cross-shard observability layer
(:mod:`repro.obs.distributed`).  Three subcommands:

``run``
    One process-backed sharded engine run on a G(n, m) conflict graph.
    ``--trace DIR`` records the supervisor stream *and* every shard
    worker's ``shard_round`` stream into *DIR*, merges them into one
    causally ordered ``merged.jsonl`` and verifies deterministic replay
    of the merged trace; ``--live`` prints a rate-limited per-shard
    progress line on stderr; ``--flight-dir DIR`` arms the crash flight
    recorder, and any bundles salvaged during the run (e.g. under
    ``--inject-faults 'kill@shard:2'``) are diagnosed and printed.
``merge``
    Merge already-written per-process trace files into one stream —
    input order is irrelevant (see :func:`repro.obs.merge_traces`).
``diagnose``
    Render the :func:`repro.obs.diagnose_crash` post-mortem of one
    flight-recorder bundle.

Runs are deterministic: the same arguments produce byte-identical
supervisor, shard and merged traces (the default ``--run-id`` is derived
from the arguments, not drawn at random).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-shardrun",
        description="Run, trace-merge and crash-diagnose sharded engine runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one process-backed sharded engine run")
    run.add_argument("--shards", type=int, default=2, help="worker shard count (default 2)")
    run.add_argument(
        "--workload",
        default="consuming",
        help="workload name (default 'consuming'; 'replay' needs --steps)",
    )
    run.add_argument("--n", type=int, default=200, help="graph nodes (default 200)")
    run.add_argument("--d", type=int, default=8, help="mean graph degree (default 8)")
    run.add_argument(
        "--graph-seed", type=int, default=0, help="graph-generator seed (default 0)"
    )
    run.add_argument("--rho", type=float, default=0.5, help="target ratio (default 0.5)")
    run.add_argument("--m-max", type=int, default=16, help="allocation cap (default 16)")
    run.add_argument(
        "--steps", type=int, default=None, metavar="N", help="stop after N engine steps"
    )
    run.add_argument("--seed", type=int, default=0, help="engine seed (default 0)")
    run.add_argument(
        "--run-id",
        default=None,
        help="distributed run identifier (default: derived from the arguments)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record supervisor + per-shard streams into DIR, merge them "
        "into DIR/merged.jsonl and verify deterministic replay",
    )
    run.add_argument(
        "--live",
        action="store_true",
        help="print a rate-limited per-shard progress line on stderr",
    )
    run.add_argument(
        "--live-interval",
        type=float,
        default=5.0,
        metavar="SECS",
        help="minimum seconds between --live lines (default 5)",
    )
    run.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="arm the crash flight recorder under DIR/<run_id>/",
    )
    run.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="fault drill via repro.testing.FaultPlan; shard workers are "
        "addressed with the '@' form, e.g. 'kill@shard:2'",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="per-round worker reply budget (hung workers are respawned)",
    )

    merge = sub.add_parser("merge", help="merge per-process trace files")
    merge.add_argument("out", help="merged trace output path")
    merge.add_argument("inputs", nargs="+", help="trace files (any order)")

    diagnose = sub.add_parser("diagnose", help="post-mortem of a flight bundle")
    diagnose.add_argument("bundle", help="flight-recorder shard-<i>.jsonl bundle")
    diagnose.add_argument(
        "--last", type=int, default=10, metavar="N",
        help="spill-tail records to include verbatim (default 10)",
    )
    return parser


def _cmd_run(parser: argparse.ArgumentParser, args) -> int:
    from repro.config import RunConfig
    from repro.errors import FaultInjectionError, ObservabilityError, ReproError
    from repro.graph.generators import gnm_random
    from repro.obs import (
        ShardProgress,
        TraceRecorder,
        load_jsonl_meta,
        merge_trace_files,
        new_run_id,
        verify_trace,
        write_trace,
    )
    from repro.runtime.sharded import run_sharded

    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    faults = None
    if args.inject_faults is not None:
        from repro.testing import FaultPlan

        try:
            faults = FaultPlan.parse(args.inject_faults)
        except FaultInjectionError as exc:
            parser.error(str(exc))
    run_id = args.run_id
    if run_id is None and (args.trace is not None or args.flight_dir is not None):
        run_id = new_run_id(
            "shardrun", args.workload, args.n, args.d, args.graph_seed,
            args.rho, args.m_max, args.steps, args.seed, args.shards,
        )
    graph = gnm_random(args.n, args.d, seed=args.graph_seed)
    config = RunConfig(
        workload=args.workload,
        order=f"sharded:{args.shards}",
        rho=args.rho,
        m_max=args.m_max,
        max_steps=args.steps,
    )
    recorder = TraceRecorder(capacity=None) if args.trace is not None else None
    monitor = (
        ShardProgress(args.shards, interval=args.live_interval)
        if args.live
        else None
    )
    trace_dir = None if args.trace is None else Path(args.trace)
    exit_code = 0
    result = None
    try:
        result = run_sharded(
            config,
            graph,
            seed=args.seed,
            recorder=recorder,
            faults=faults,
            timeout=args.timeout,
            run_id=run_id,
            trace_dir=trace_dir,
            flight_dir=args.flight_dir,
            monitor=monitor,
        )
    except ReproError as exc:
        # the run died (e.g. respawn budget exhausted under a fault
        # drill); flight bundles below are the whole point of the report
        print(f"shardrun: run FAILED: {exc}", file=sys.stderr)
        exit_code = 1
    if result is not None:
        print(
            f"shardrun: {args.shards} shards, {len(result)} steps, "
            f"{result.total_committed} committed, "
            f"{result.total_aborted} aborted"
            + (f" (run {run_id})" if run_id else "")
        )
    if recorder is not None and trace_dir is not None:
        supervisor = write_trace(
            trace_dir / "supervisor.jsonl",
            recorder.events,
            {"source": "supervisor", "run_id": run_id},
        )
        streams = sorted(trace_dir.glob("shard-*.jsonl")) + [supervisor]
        events, meta = merge_trace_files(streams, out=trace_dir / "merged.jsonl")
        merged_path = trace_dir / "merged.jsonl"
        try:
            reports = verify_trace(load_jsonl_meta(merged_path)[0])
        except ObservabilityError as exc:
            print(f"shardrun: {merged_path}: replay FAILED: {exc}", file=sys.stderr)
            return 1
        total_steps = sum(r.steps for r in reports)
        print(
            f"trace: merged {meta['streams']} streams "
            f"(shards {meta['shards']}) into {merged_path}: "
            f"{len(events)} events, {total_steps} steps — "
            "deterministic replay OK"
        )
    if args.flight_dir is not None and run_id is not None:
        from repro.obs import diagnose_crash

        bundles = sorted((Path(args.flight_dir) / run_id).glob("shard-*.jsonl"))
        for bundle in bundles:
            print(diagnose_crash(bundle).render())
        if not bundles:
            print("flight recorder: no worker deaths, no bundles")
    return exit_code


def _cmd_merge(parser: argparse.ArgumentParser, args) -> int:
    from repro.errors import ObservabilityError
    from repro.obs import merge_trace_files

    try:
        events, meta = merge_trace_files(args.inputs, out=args.out)
    except (OSError, ObservabilityError) as exc:
        print(f"shardrun: merge FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"merged {meta['streams']} streams (shards {meta['shards']}) "
        f"into {args.out}: {len(events)} events"
    )
    return 0


def _cmd_diagnose(parser: argparse.ArgumentParser, args) -> int:
    from repro.errors import ObservabilityError
    from repro.obs import diagnose_crash

    try:
        report = diagnose_crash(args.bundle, last=args.last)
    except ObservabilityError as exc:
        print(f"shardrun: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(parser, args)
    if args.command == "merge":
        return _cmd_merge(parser, args)
    return _cmd_diagnose(parser, args)


if __name__ == "__main__":
    sys.exit(main())
