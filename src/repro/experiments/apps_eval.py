"""APPS — the controller on real irregular applications (§2, §5).

The paper's conclusion promises evaluation "on more realistic workloads";
we run the hybrid controller against fixed allocations on the four real
applications (Delaunay refinement, Borůvka, greedy colouring, survey
propagation) and report, per configuration:

* makespan (temporal steps to drain the work-set),
* processor-steps consumed (Σ launched — energy proxy),
* wasted fraction (aborted / launched),
* mean realised conflict ratio.

Expected shape: small fixed m wastes little but is slow; large fixed m is
fast in steps but wastes heavily once parallelism decays; the hybrid stays
near the target waste ρ while approaching the makespan of the big fixed
allocations — "who wins" depends on which resource you price, which is
exactly the trade-off the ρ-targeting controller is designed to settle.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.apps.boruvka import BoruvkaMST, random_weighted_graph
from repro.apps.coloring import GreedyColoring
from repro.apps.components import LabelPropagation
from repro.apps.delaunay import RefinementWorkload, random_input_mesh
from repro.apps.maxflow import PreflowPush, random_flow_network
from repro.apps.sp import SurveyPropagation, random_ksat
from repro.control.base import Controller
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.experiments.base import ExperimentResult
from repro.graph.generators import gnm_random
from repro.utils.rng import ensure_rng, spawn

__all__ = ["run", "build_app"]


def build_app(name: str, scale: int, seed):
    """Construct application *name* at problem size *scale*."""
    if name == "delaunay":
        mesh = random_input_mesh(scale, seed=seed)
        return RefinementWorkload(mesh, min_angle=25.0, min_edge=0.02)
    if name == "boruvka":
        return BoruvkaMST(random_weighted_graph(scale, 8, seed=seed))
    if name == "coloring":
        return GreedyColoring(gnm_random(scale, 10, seed=seed))
    if name == "sp":
        inst = random_ksat(scale, 3 * scale, k=3, seed=seed)
        return SurveyPropagation(inst, seed=seed)
    if name == "maxflow":
        return PreflowPush(random_flow_network(scale, avg_out_degree=3.0, seed=seed))
    if name == "components":
        return LabelPropagation(gnm_random(scale, 4, seed=seed))
    raise ValueError(f"unknown application {name!r}")


_COLUMNS = ["controller", "steps", "committed", "proc-steps", "wasted", "r̄"]


def _measure(res) -> tuple:
    return (
        len(res),
        res.total_committed,
        res.processor_steps(),
        round(res.wasted_fraction, 4),
        round(res.mean_conflict_ratio, 4),
    )


def run(
    apps: tuple[str, ...] = (
        "delaunay",
        "boruvka",
        "coloring",
        "sp",
        "maxflow",
        "components",
    ),
    scale: int = 400,
    rho: float = 0.25,
    fixed_ms: tuple[int, ...] = (2, 16, 128),
    max_steps: int = 6000,
    seed=None,
    record_workload: "str | None" = None,
    replay_workload: "str | None" = None,
) -> ExperimentResult:
    """Hybrid vs fixed-m across the real applications.

    ``record_workload=`` names a directory: each application's *hybrid*
    run is recorded through a
    :class:`~repro.runtime.wktrace.WorkloadCapture` and saved there as
    ``<app>.wktrace`` for later replay.  ``replay_workload=`` names one
    recorded trace file: instead of building applications, every
    controller is evaluated over a fresh deterministic replay of that
    trace (the two options are mutually exclusive).
    """
    if record_workload is not None and replay_workload is not None:
        raise ValueError("pass record_workload= or replay_workload=, not both")
    rng = ensure_rng(seed)

    controllers: dict[str, Callable[[], Controller]] = {
        **{f"fixed-{m}": (lambda m=m: FixedController(m)) for m in fixed_ms},
        "hybrid": lambda: HybridController(rho),
    }

    if replay_workload is not None:
        from repro.runtime.wktrace import TraceReplayWorkload, WorkloadTrace

        trace = WorkloadTrace.load(replay_workload)
        result = ExperimentResult(
            name="APPS controller on a replayed workload trace",
            description=(
                f"Hybrid(ρ={rho:.0%}) vs fixed m on recorded trace "
                f"{trace.label!r} ({len(trace.commits)} commits)."
            ),
        )
        rows = []
        for ctrl_name, factory in controllers.items():
            (run_rng,) = spawn(rng, 1)
            workload = TraceReplayWorkload.from_trace(trace, path=replay_workload)
            engine = workload.make_engine(factory(), seed=run_rng)
            res = engine.run(max_steps=max_steps)
            rows.append((ctrl_name, *_measure(res)))
            result.scalars[f"trace_{ctrl_name}_steps"] = float(len(res))
            result.scalars[f"trace_{ctrl_name}_waste"] = res.wasted_fraction
        result.add_table(f"replayed trace '{trace.label}'", _COLUMNS, rows)
        result.add_note(
            "each controller ran a fresh deterministic replay of the same "
            "recorded morph sequence — differences are pure allocation policy."
        )
        return result

    result = ExperimentResult(
        name="APPS controller on real workloads",
        description=(
            f"Hybrid(ρ={rho:.0%}) vs fixed m on {', '.join(apps)} at scale {scale}."
        ),
    )
    for app_name in apps:
        rows = []
        for ctrl_name, factory in controllers.items():
            app_rng, run_rng = spawn(rng, 2)
            app = build_app(app_name, scale, app_rng)
            capture = None
            if record_workload is not None and ctrl_name == "hybrid":
                from repro.runtime.wktrace import WorkloadCapture

                app = capture = WorkloadCapture(app, label=app_name)
            engine = app.make_engine(factory(), seed=run_rng)
            res = engine.run(max_steps=max_steps)
            if capture is not None:
                out_dir = Path(record_workload)
                out_dir.mkdir(parents=True, exist_ok=True)
                out_path = out_dir / f"{app_name}.wktrace"
                capture.save(out_path)
                result.add_note(f"recorded {app_name} hybrid run to {out_path}")
            rows.append((ctrl_name, *_measure(res)))
            result.scalars[f"{app_name}_{ctrl_name}_steps"] = float(len(res))
            result.scalars[f"{app_name}_{ctrl_name}_waste"] = res.wasted_fraction
        result.add_table(f"application '{app_name}'", _COLUMNS, rows)
    result.add_note(
        "steps = makespan under unit task cost; proc-steps = Σ launched "
        "(energy proxy); wasted = aborted/launched."
    )
    return result
