"""THEORY — the closed-form claims of §3 (Prop. 2, Thm. 2/3, Cor. 2/3).

Four checks, each comparing analysis against Monte-Carlo simulation:

* **PROP2**: ``Δr̄(1) = d/(2(n−1))`` for graphs of very different shapes
  (random, regular, power-law, grid) — the formula depends only on
  ``(n, d)``.
* **THM3**: the closed form ``EM_m(K_d^n)`` matches simulation of the
  actual clique-union graph.
* **THM2 (dominance)**: every same-``(n, d)`` graph has
  ``EM_m(G) ≥ EM_m(K_d^n)``, i.e. the worst-case bound on ``r̄`` holds.
* **COR3**: at ``m = α·n/(d+1)`` the degree-free bound
  ``1 − (1−e^{−α})/α`` holds; at ``α = ½`` it evaluates to the paper's
  21.3% smart-start guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.graph.generators import (
    gnm_random,
    grid_graph,
    kdn_worst_case,
    powerlaw_graph,
    random_regular,
)
from repro.model.conflict_ratio import estimate_conflict_ratio, estimate_em
from repro.model.turan import (
    alpha_conflict_bound_limit,
    em_kdn,
    initial_derivative,
    worst_case_conflict_ratio,
)
from repro.utils.rng import ensure_rng, spawn

__all__ = ["run"]


def run(n: int = 510, d: int = 16, reps: int = 1500, seed=None) -> ExperimentResult:
    """All four §3 checks at one (n, d) (defaults need (d+1) | n)."""
    rng = ensure_rng(seed)
    if n % (d + 1) != 0:
        raise ValueError(f"need (d+1) | n for K_d^n, got n={n}, d={d}")
    result = ExperimentResult(
        name="THEORY §3 bounds",
        description=f"Prop.2 / Thm.3 / Thm.2 dominance / Cor.3 at n={n}, d={d}.",
    )

    # --- PROP2: initial derivative across graph shapes -------------------
    gen_rng = spawn(rng, 4)
    shapes = {
        "gnm": gnm_random(n, d, seed=gen_rng[0]),
        "regular": random_regular(n, d, seed=gen_rng[1]),
        "powerlaw": powerlaw_graph(n, max(d // 2, 1), seed=gen_rng[2]),
        "grid": grid_graph(17, 30),  # 510 nodes, d≈3.8
    }
    rows = []
    for name, g in shapes.items():
        gn, gd = g.num_nodes, g.average_degree
        formula = initial_derivative(gn, gd)
        mc = estimate_conflict_ratio(g, 2, reps=20 * reps, seed=gen_rng[3])
        rows.append((name, gn, round(gd, 3), formula, mc.mean, mc.half_width))
    result.add_table(
        "PROP2: Δr̄(1) = d/2(n−1) (r̄(2) measured)",
        ["graph", "n", "d", "formula", "MC", "±"],
        rows,
    )

    # --- THM3: closed form vs simulation on K_d^n ------------------------
    kdn = kdn_worst_case(n, d)
    ms = np.unique(np.geomspace(2, n, 10).astype(int))
    rows = []
    for m in ms:
        exact = em_kdn(n, d, int(m))
        mc = estimate_em(kdn, int(m), reps=reps, seed=rng)
        rows.append((int(m), exact, mc.mean, mc.half_width))
    result.add_table(
        "THM3: EM_m(K_d^n) closed form vs MC",
        ["m", "closed form", "MC", "±"],
        rows,
    )

    # --- THM2: K_d^n minimises EM_m among same-(n,d) graphs --------------
    rows = []
    violations = 0
    comparison = {"gnm": shapes["gnm"], "regular": shapes["regular"]}
    for m in ms:
        worst = em_kdn(n, d, int(m))
        row: list[object] = [int(m), worst]
        for name, g in comparison.items():
            mc = estimate_em(g, int(m), reps=reps, seed=rng)
            row.extend([mc.mean, mc.half_width])
            if mc.mean + mc.half_width < worst:
                violations += 1
        rows.append(tuple(row))
    result.add_table(
        "THM2: EM_m(G) ≥ EM_m(K_d^n)",
        ["m", "EM(K_d^n)", "EM(gnm)", "±", "EM(regular)", "±"],
        rows,
    )
    result.scalars["thm2_violations"] = float(violations)

    # --- COR3: the α-parametrised bound ----------------------------------
    rows = []
    for alpha in (0.25, 0.5, 1.0, 2.0):
        m = max(int(round(alpha * n / (d + 1))), 1)
        bound = alpha_conflict_bound_limit(alpha)
        exact_worst = worst_case_conflict_ratio(n, d, m)
        mc = estimate_conflict_ratio(kdn, m, reps=reps, seed=rng)
        rows.append((alpha, m, bound, exact_worst, mc.mean, mc.half_width))
        if abs(alpha - 0.5) < 1e-12:
            result.scalars["cor3_alpha_half_bound"] = bound
    result.add_table(
        "COR3: r̄ at m = α·n/(d+1) vs 1 − (1−e^{−α})/α",
        ["α", "m", "limit bound", "exact worst case", "MC on K_d^n", "±"],
        rows,
    )
    result.add_note(
        "Cor.3 at α=1/2 gives the 21.3% smart-start guarantee quoted in §4."
    )
    return result
