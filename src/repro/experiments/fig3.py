"""FIG3 — controller trajectories ``m_t`` (paper Fig. 3).

Two realisations of the hybrid Algorithm 1 against a Recurrence-A-only
controller, on two random CC graphs of different density (hence different
optima ``μ``), with ``n = 2000`` and ``ρ = 20%``, all starting from the
cold allocation ``m₀ = 2``.

Paper claims checked by the benchmark:

* the hybrid converges close to ``μ`` in ≈15 temporal steps;
* Recurrence A alone converges far more slowly (its per-window growth is
  bounded by ``1 + ρ``);
* after settling, the hybrid's trajectory is stable (dead-band).
"""

from __future__ import annotations

from repro.control.hybrid import HybridController, HybridParams
from repro.control.recurrence import RecurrenceAController
from repro.control.tuning import oracle_mu
from repro.experiments.base import ExperimentResult
from repro.graph.generators import gnm_random
from repro.runtime.workloads import ReplayGraphWorkload
from repro.utils.rng import ensure_rng, spawn

__all__ = ["run", "default_hybrid"]


def default_hybrid(rho: float) -> HybridController:
    """The paper's hybrid with the Fig. 3 small-m split (threshold 20)."""
    return HybridController(
        rho,
        params=HybridParams(period=4, r_min=0.03, alpha0=0.25, alpha1=0.06),
        small_params=HybridParams(period=4, r_min=0.05, alpha0=0.30, alpha1=0.10),
        small_m_threshold=20,
    )


def run(
    n: int = 2000,
    degrees: tuple[int, int] = (16, 48),
    rho: float = 0.20,
    steps: int = 120,
    seed=None,
) -> ExperimentResult:
    """Trajectories of hybrid vs Recurrence-A-only on two random graphs."""
    rng = ensure_rng(seed)
    result = ExperimentResult(
        name="FIG3 controller trajectories",
        description=(
            f"m_t for hybrid Algorithm 1 vs Recurrence-A-only; n={n}, "
            f"d∈{degrees}, ρ={rho:.0%}, m₀=2, {steps} steps."
        ),
    )
    rows = []
    for d in degrees:
        graph_rng, mu_rng, run_rng_h, run_rng_a = spawn(rng, 4)
        graph = gnm_random(n, d, seed=graph_rng)
        mu = oracle_mu(graph, rho, seed=mu_rng)

        hybrid = default_hybrid(rho)
        res_h = ReplayGraphWorkload(graph.copy()).build_engine(
            hybrid, seed=run_rng_h
        ).run(max_steps=steps)

        rec_a = RecurrenceAController(rho)
        res_a = ReplayGraphWorkload(graph.copy()).build_engine(
            rec_a, seed=run_rng_a
        ).run(max_steps=steps)

        # "close to μ": ±40% band with 20% excursion allowance — small
        # optima (μ ≈ 20) have realisation noise the paper's Fig. 3 also
        # shows, and the claim is about the transient, not the wobble
        settle_h = res_h.settling_step(mu, band=0.4, outlier_fraction=0.2)
        settle_a = res_a.settling_step(mu, band=0.4, outlier_fraction=0.2)
        xs = list(range(steps))
        result.add_series(f"hybrid d={d} (μ={mu})", xs, res_h.m_trace.tolist())
        result.add_series(f"rec-A d={d} (μ={mu})", xs, res_a.m_trace.tolist())
        rows.append(
            (
                d,
                mu,
                settle_h,
                settle_a,
                float(res_h.m_trace[-20:].mean()),
                float(res_h.r_trace[-20:].mean()),
                float(res_a.r_trace[-20:].mean()),
            )
        )
        result.scalars[f"settle_hybrid_d{d}"] = float(settle_h)
        result.scalars[f"settle_recA_d{d}"] = float(settle_a)
    result.add_table(
        "convergence summary",
        ["d", "μ", "settle(hybrid)", "settle(recA)", "m̄ tail(hyb)", "r̄ tail(hyb)", "r̄ tail(recA)"],
        rows,
    )
    result.add_note(
        "Paper: hybrid converges close to μ in ~15 steps; Recurrence A alone "
        "is an order of magnitude slower from a cold start."
    )
    return result
