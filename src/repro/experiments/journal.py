"""Crash-safe sweep journal: append-only JSONL checkpoint of a sweep.

The content-addressed result cache answers "what did this config
produce?"; the journal answers "what happened to this sweep?" — which
configs completed, how often each one failed (and how: error, crash,
timeout), and which were quarantined as poison.  Together they make a
sweep resumable: after the driver or a worker dies mid-run,
``run_sweep(..., resume=True)`` replays the journal, reloads completed
configs from the cache, carries each survivor's failure count forward
(so retry budgets and fault-plan attempt indices continue rather than
restart), and skips quarantined configs outright.

The file format is one JSON object per line, appended with flush +
fsync per record so a SIGKILL loses at most the line being written;
the loader tolerates a torn trailing line.  Records:

``{"event": "sweep_start", "configs": N, "base_seed": S,
   "sweep": <serialised SweepConfig, see repro.config>}``
``{"event": "failed", "key": K, "experiment": E, "attempt": A,
   "kind": "error"|"crash"|"timeout", "error": MSG}``
``{"event": "completed", "key": K, "experiment": E, "seed": S,
   "attempt": A}``
``{"event": "quarantined", "key": K, "experiment": E, "failures": F,
   "error": MSG}``
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExperimentError

__all__ = ["JournalState", "SweepJournal", "DEFAULT_JOURNAL_NAME"]

#: journal filename used when only a cache directory is given
DEFAULT_JOURNAL_NAME = "sweep-journal.jsonl"


@dataclass
class JournalState:
    """Aggregated per-config history replayed from a journal file."""

    #: config key -> its ``completed`` record
    completed: dict = field(default_factory=dict)
    #: config key -> its ``quarantined`` record
    quarantined: dict = field(default_factory=dict)
    #: config key -> cumulative failed attempts
    failures: dict = field(default_factory=dict)
    #: config key -> cumulative timed-out attempts
    timeouts: dict = field(default_factory=dict)
    #: lines skipped because they were torn or malformed
    skipped_lines: int = 0

    def apply(self, record: dict) -> None:
        event = record.get("event")
        key = record.get("key")
        if event == "completed" and key:
            self.completed[key] = record
        elif event == "quarantined" and key:
            self.quarantined[key] = record
        elif event == "failed" and key:
            self.failures[key] = self.failures.get(key, 0) + 1
            if record.get("kind") == "timeout":
                self.timeouts[key] = self.timeouts.get(key, 0) + 1


def load_journal(path: "str | Path") -> JournalState:
    """Replay a journal file into a :class:`JournalState`.

    Torn or malformed lines (a crash mid-append) are counted and
    skipped, never fatal — a journal must always be loadable after the
    exact failures it exists to survive.
    """
    state = JournalState()
    p = Path(path)
    if not p.exists():
        return state
    for line in p.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            state.skipped_lines += 1
            continue
        if isinstance(record, dict):
            state.apply(record)
        else:
            state.skipped_lines += 1
    return state


class SweepJournal:
    """Append-only writer over a journal file, with replayed state.

    ``resume=True`` loads the existing file (if any) and appends;
    ``resume=False`` truncates and starts a fresh sweep history.  The
    in-memory :attr:`state` is kept in sync with every appended record,
    so the sweep driver reads budgets and attempt indices from one
    place whether they came from this run or a previous one.
    """

    def __init__(self, path: "str | Path", resume: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.state = load_journal(self.path) if resume else JournalState()
        try:
            self._fh = open(self.path, "a" if resume else "w", encoding="utf-8")
        except OSError as exc:
            raise ExperimentError(f"cannot open sweep journal {self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    def record(self, event: str, **fields) -> dict:
        """Append one record durably (flush + fsync) and fold it into state."""
        entry = {"event": event, **fields}
        self._fh.write(json.dumps(entry, sort_keys=True, default=float) + "\n")
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        self.state.apply(entry)
        return entry

    # convenience accessors -------------------------------------------
    def prior_failures(self, key: str) -> int:
        return self.state.failures.get(key, 0)

    def prior_timeouts(self, key: str) -> int:
        return self.state.timeouts.get(key, 0)

    def is_completed(self, key: str) -> bool:
        return key in self.state.completed

    def is_quarantined(self, key: str) -> bool:
        return key in self.state.quarantined

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
