"""Typed run/sweep configuration: frozen, validated, JSON round-trippable.

Before this layer, experiment invocations travelled as ad-hoc strings
and loose kwargs threaded through ``api.py``, the CLI, and the sweep
harness.  :class:`RunConfig` and :class:`SweepConfig` replace that:

* **frozen dataclasses** — a config is a value; hash it, compare it,
  put it in a cache key;
* **validation at construction** — bad values (``rho`` outside ``(0,1)``,
  ``m_min > m_max``, negative retries) raise
  :class:`~repro.errors.ConfigError` immediately, not steps later inside
  an engine;
* **canonical JSON round-trip** — :meth:`RunConfig.to_dict` /
  :meth:`RunConfig.from_dict` (and the ``to_json``/``from_json``
  wrappers) are exact inverses, so the sweep journal and the
  content-addressed result cache serialise the *whole* config instead of
  a hand-picked field subset.

A :class:`RunConfig` describes either one registered experiment
(``experiment="fig3"``) or one engine run assembled from registry names
(``workload=``, ``controller=``, ``conflict=`` — resolved against
:mod:`repro.registry` by :func:`repro.api.run`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.errors import ConfigError
from repro.utils.rng import derive_seed

__all__ = ["RunConfig", "SweepConfig"]

#: engine modes a config may pin (``None`` defers to ``REPRO_ENGINE``)
_ENGINE_MODES = ("reference", "fast")
#: config payload layout version (bump on incompatible change)
CONFIG_SCHEMA = 1


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


def _opt_int(value: "Any", name: str, minimum: "int | None" = None) -> "int | None":
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{name} must be an int or None, got {value!r}")
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class RunConfig:
    """One run: a registered experiment, or an engine assembled by name.

    ``experiment`` selects a registered experiment (``"fig1"`` …); the
    remaining fields configure a direct engine run through
    :func:`repro.api.run` and double as the experiment run's provenance
    record.  Every field is JSON-representable and the dataclass is
    frozen, so a config can serve as a cache key, a journal record, and
    a cross-process message without translation.

    Attributes
    ----------
    experiment:
        Registered experiment name, or ``None`` for a direct engine run.
    seed:
        Explicit RNG seed; ``None`` derives one (see
        :meth:`resolved_seed` for sweeps).
    quick:
        Reduced problem sizes (experiment runs only).
    workload:
        Registered workload factory name: a synthetic graph workload
        (``"replay"``, ``"consuming"``, ``"regenerating"`` — these need
        ``graph=``), an application (``"boruvka"``, ``"delaunay"``,
        ``"coloring"``, ``"des"``, ``"maxflow"``, ``"sp"``,
        ``"clustering"``, ``"components"``, optionally with a
        ``":<scale>"`` suffix — these synthesise a seeded input when no
        ``graph=`` is passed), or a recorded workload trace to replay
        (``"trace:<path>"``).  Ordered-only apps (``"des"``) reject
        unordered ``order=`` specs at construction time.
    controller:
        Registered controller factory name (default ``"hybrid"``,
        the paper's Algorithm 1).
    conflict:
        Registered conflict-policy name for task-loop runs
        (``"item-lock"``, ``"explicit-graph"``).
    rho:
        Target conflict ratio in ``(0, 1)``.
    m:
        Fixed allocation (``controller="fixed"`` only).
    m_min, m_max:
        Allocation clamp range; ``m_min=None`` keeps each controller's
        own default.
    engine:
        ``"reference"`` / ``"fast"`` kernel path, or ``None`` to defer
        to the ``REPRO_ENGINE`` environment variable.
    select:
        Registered selection-backend name for the work-set
        (``"workset"`` for the reference sampler, ``"incremental"`` for
        the dense active set — both bit-identical under the same seed),
        or ``None`` to defer to the ``REPRO_SELECT`` environment
        variable.  Third-party names registered under
        ``"select-backend"`` are accepted too.  Only meaningful for
        unordered runs: priority/arrival commit orders bring their own
        work-set, so combining them with an explicit ``select`` is a
        :class:`~repro.errors.ConfigError`.
    order:
        Commit-order policy spec: ``"unordered"`` (the §2 uniform-draw
        model), ``"ordered"`` (strict priority order with
        barrier/horizon rules), ``"relaxed:k"`` (k-of-top priority
        relaxation, ``k >= 1``), ``"async"`` / ``"async:w"``
        (arrival order with staleness window ``w``),
        ``"sharded"`` / ``"sharded:s"`` (partitioned two-phase
        resolution with halo exchange over ``s`` shards), or ``None``
        to infer the policy from the run inputs (the historical
        behaviour).  The base name is validated **eagerly** against the
        ``"order-policy"`` registry — an unknown name raises
        :class:`~repro.errors.RegistryError` listing every available
        policy at construction time, not steps later inside an engine.
    shards:
        Shard count for ``order="sharded"`` (equivalent to the
        ``"sharded:s"`` spec suffix; both given must agree).  Any other
        order spec rejects it — a silently ignored shard count would
        misreport what actually ran.
    max_steps:
        Step cap for engine runs (required by replay workloads, which
        never drain).
    """

    experiment: "str | None" = None
    seed: "int | None" = None
    quick: bool = False
    workload: str = "replay"
    controller: str = "hybrid"
    conflict: str = "item-lock"
    rho: float = 0.25
    m: "int | None" = None
    m_min: "int | None" = None
    m_max: int = 1024
    engine: "str | None" = None
    select: "str | None" = None
    order: "str | None" = None
    shards: "int | None" = None
    max_steps: "int | None" = None

    def __post_init__(self) -> None:
        if self.experiment is not None:
            _require(
                isinstance(self.experiment, str) and bool(self.experiment),
                f"experiment must be a non-empty string or None, got {self.experiment!r}",
            )
        _opt_int(self.seed, "seed")
        for name in ("workload", "controller", "conflict"):
            value = getattr(self, name)
            _require(
                isinstance(value, str) and bool(value),
                f"{name} must be a non-empty registry name, got {value!r}",
            )
        _require(
            isinstance(self.rho, (int, float)) and 0.0 < float(self.rho) < 1.0,
            f"target conflict ratio rho must be in (0,1), got {self.rho!r}",
        )
        object.__setattr__(self, "rho", float(self.rho))
        object.__setattr__(self, "quick", bool(self.quick))
        _opt_int(self.m, "m", minimum=1)
        _opt_int(self.m_min, "m_min", minimum=1)
        _require(
            isinstance(self.m_max, int) and not isinstance(self.m_max, bool)
            and self.m_max >= 1,
            f"m_max must be an int >= 1, got {self.m_max!r}",
        )
        if self.m_min is not None:
            _require(
                self.m_min <= self.m_max,
                f"empty allocation range [{self.m_min}, {self.m_max}]",
            )
        if self.engine is not None:
            _require(
                self.engine in _ENGINE_MODES,
                f"engine must be one of {_ENGINE_MODES} or None, got {self.engine!r}",
            )
        if self.select is not None:
            # any registry name is allowed here; the "select-backend"
            # registry rejects unknown ones with the available list
            _require(
                isinstance(self.select, str) and bool(self.select),
                f"select must be a non-empty backend name or None, got {self.select!r}",
            )
        if self.order is not None:
            _require(
                isinstance(self.order, str) and bool(self.order),
                f"order must be a non-empty policy spec or None, got {self.order!r}",
            )
            # eager registry validation: an unknown order-policy name
            # raises RegistryError (listing every registered policy) at
            # construction time, not steps later inside an engine.  The
            # import is function-level — config sits below the registry
            # layer, and that is the sanctioned way to reach up at call
            # time (tools/check_layers.py exempts it).
            from repro.registry import ORDER_POLICIES, order_family, parse_order_spec

            name, _ = parse_order_spec(self.order)
            ORDER_POLICIES.get(name)
            if self.select is not None and order_family(name) != "unordered":
                raise ConfigError(
                    f"order={self.order!r} brings its own work-set; "
                    f"it cannot be combined with select={self.select!r}"
                )
        # eager workload-spec validation, mirroring the order check
        # above: malformed specs ("trace:" without a path, "boruvka:x"
        # without an integer scale) and ordered-only apps combined with
        # an unordered commit order fail at construction time
        from repro.registry import parse_workload_spec

        workload_name, _ = parse_workload_spec(self.workload)
        if self.order is not None:
            from repro.apps.catalog import check_order_combination

            check_order_combination(workload_name, self.order)
        _opt_int(self.shards, "shards", minimum=1)
        if self.shards is not None:
            # shards only means something to the sharded commit order;
            # anywhere else a silently ignored count would be a footgun
            from repro.registry import parse_order_spec

            name, kwargs = (
                parse_order_spec(self.order) if self.order is not None else (None, {})
            )
            if name != "sharded":
                raise ConfigError(
                    f'shards={self.shards} requires order="sharded", '
                    f"got order={self.order!r}"
                )
            spec_shards = kwargs.get("shards")
            if spec_shards is not None and spec_shards != self.shards:
                raise ConfigError(
                    f"order={self.order!r} and shards={self.shards} disagree"
                )
        _opt_int(self.max_steps, "max_steps", minimum=0)

    # -- seeds ----------------------------------------------------------
    def resolved_seed(self, base_seed: int) -> int:
        """The seed this run actually uses.

        Explicit seeds pass through; otherwise one is derived from
        ``(base_seed, experiment name)`` — stable across sweeps, worker
        counts, and config ordering.
        """
        if self.seed is not None:
            return int(self.seed)
        return derive_seed(base_seed, "sweep", self.experiment or "run")

    def with_seed(self, seed: int) -> "RunConfig":
        """A copy of this config pinned to an explicit *seed*."""
        return replace(self, seed=int(seed))

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        """Plain JSON-able mapping of every field (exact inverse of
        :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` output; rejects unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigError(f"RunConfig payload must be a dict, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(f"unknown RunConfig field(s): {', '.join(unknown)}")
        return cls(**payload)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace variance)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"RunConfig JSON does not parse: {exc}") from exc
        return cls.from_dict(payload)


@dataclass(frozen=True)
class SweepConfig:
    """One sweep invocation: the run list plus every harness knob.

    Serialising this (``to_dict``/``to_json``) is the sweep's stable
    schema: the journal's ``sweep_start`` record carries it, so a resumed
    or audited sweep knows exactly what was asked for — not just how many
    configs there were.
    """

    runs: "tuple[RunConfig, ...]" = ()
    base_seed: int = 0
    jobs: int = 1
    cache_dir: "str | None" = None
    timeout: "float | None" = None
    retries: int = 0
    quarantine: bool = False
    quarantine_after: "int | None" = None
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    backoff_jitter: float = 0.5
    isolate: bool = False
    resume: bool = False
    #: schema version stamped into serialised payloads
    schema: int = field(default=CONFIG_SCHEMA, compare=False)

    def __post_init__(self) -> None:
        runs = tuple(
            run if isinstance(run, RunConfig) else self._coerce_run(run)
            for run in self.runs
        )
        _require(bool(runs), "a SweepConfig needs at least one run")
        object.__setattr__(self, "runs", runs)
        _require(
            isinstance(self.jobs, int) and not isinstance(self.jobs, bool)
            and self.jobs >= 1,
            f"jobs must be an int >= 1, got {self.jobs!r}",
        )
        _require(
            isinstance(self.retries, int) and not isinstance(self.retries, bool)
            and self.retries >= 0,
            f"retries must be an int >= 0, got {self.retries!r}",
        )
        if self.timeout is not None:
            _require(
                isinstance(self.timeout, (int, float)) and self.timeout > 0,
                f"timeout must be > 0 seconds, got {self.timeout!r}",
            )
        _opt_int(self.quarantine_after, "quarantine_after", minimum=1)
        for name in ("backoff_base", "backoff_cap", "backoff_jitter"):
            _require(
                isinstance(getattr(self, name), (int, float))
                and getattr(self, name) >= 0,
                f"{name} must be >= 0, got {getattr(self, name)!r}",
            )
        _require(
            isinstance(self.base_seed, int) and not isinstance(self.base_seed, bool),
            f"base_seed must be an int, got {self.base_seed!r}",
        )
        _require(
            self.schema == CONFIG_SCHEMA,
            f"unsupported SweepConfig schema {self.schema!r} (this code reads {CONFIG_SCHEMA})",
        )

    @staticmethod
    def _coerce_run(run) -> RunConfig:
        if isinstance(run, str):
            return RunConfig(experiment=run)
        if isinstance(run, dict):
            return RunConfig.from_dict(run)
        raise ConfigError(
            f"each run must be a RunConfig, experiment name, or dict, got {run!r}"
        )

    # -- harness adapters ----------------------------------------------
    def policy(self):
        """The :class:`~repro.experiments.parallel.SweepPolicy` these knobs
        describe (import deferred: config sits below the experiments layer)."""
        from repro.experiments.parallel import SweepPolicy

        return SweepPolicy(
            timeout=self.timeout,
            max_retries=self.retries,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            backoff_jitter=self.backoff_jitter,
            quarantine=self.quarantine,
            quarantine_after=self.quarantine_after,
            isolate=self.isolate,
        )

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["runs"] = [run.to_dict() for run in self.runs]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepConfig":
        if not isinstance(payload, dict):
            raise ConfigError(f"SweepConfig payload must be a dict, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(f"unknown SweepConfig field(s): {', '.join(unknown)}")
        data = dict(payload)
        if "runs" in data:
            data["runs"] = tuple(cls._coerce_run(run) for run in data["runs"])
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace variance)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "SweepConfig":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"SweepConfig JSON does not parse: {exc}") from exc
        return cls.from_dict(payload)
