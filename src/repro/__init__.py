"""repro — processor allocation for optimistic parallelization of irregular programs.

A from-scratch reproduction of Versaci & Pingali (SPAA'11 brief announcement;
full version ICCSA 2012): the conflict-graph model of optimistic
parallelization, the Turán-style worst-case analysis of exploitable
parallelism, and the adaptive hybrid controller (Algorithm 1) that solves the
processor-allocation problem, together with the optimistic-runtime simulator
and the irregular applications needed to evaluate it.

Public API highlights
---------------------
``repro.graph``
    Dynamic computations/conflicts graphs and generators.
``repro.model``
    Conflict-ratio estimators, Turán bounds, unfriendly seating.
``repro.runtime``
    Discrete-time optimistic parallelization engine.
``repro.control``
    Processor-allocation controllers (hybrid Algorithm 1 + baselines).
``repro.apps``
    Irregular workloads: Delaunay refinement, Borůvka, colouring, clustering,
    survey propagation, synthetic profiles.
``repro.experiments``
    One module per paper figure/claim; CLI via ``python -m repro.experiments``.
"""

from repro._version import __version__
from repro.api import for_each, for_each_ordered, run, solve_graph
from repro.config import RunConfig, SweepConfig
from repro.registry import register, registry

__all__ = [
    "__version__",
    "run",
    "for_each",
    "for_each_ordered",
    "solve_graph",
    "RunConfig",
    "SweepConfig",
    "register",
    "registry",
]
