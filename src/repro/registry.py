"""Plugin registry: named factories for every pluggable layer.

One :class:`Registry` per extension point — engines, order policies,
controllers, conflict policies, workloads, experiments — each mapping a
stable string name to a factory callable.  The built-in entries populate
lazily on first lookup (keeping this module import-light and cycle-free);
third parties add their own with :func:`register`::

    import repro

    @repro.register("controller", "my-controller")
    def _make(config):          # factory receives the RunConfig
        return MyController(config.rho, m_max=config.m_max)

    repro.run(repro.RunConfig(workload="consuming", controller="my-controller"),
              graph=my_graph)

Factory calling conventions (what ``repro.api.run`` passes):

========================  ==================================================
registry                  factory signature
========================  ==================================================
``"experiment"``          ``factory(seed, quick) -> ExperimentResult``
``"controller"``          ``factory(config: RunConfig) -> Controller``
``"conflict-policy"``     ``factory(config: RunConfig) -> ConflictPolicy``
``"workload"``            ``factory(graph, config: RunConfig) -> workload``
``"select-backend"``      ``factory(config: RunConfig) -> Workset``
``"order-policy"``        ``factory(**kwargs) -> OrderPolicy``
``"engine"``              ``factory(...) -> Engine`` (constructor passthrough)
========================  ==================================================

Lookup failures are actionable: an unknown name raises
:class:`~repro.errors.RegistryError` listing every available entry, and
duplicate registration raises instead of silently clobbering (pass
``overwrite=True`` to replace deliberately, e.g. in tests).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.errors import RegistryError

__all__ = [
    "Registry",
    "register",
    "registry",
    "select_backend_for",
    "parse_order_spec",
    "parse_workload_spec",
    "workload_is_self_building",
    "order_family",
    "workset_for",
    "ENGINES",
    "ORDER_POLICIES",
    "CONTROLLERS",
    "CONFLICT_POLICIES",
    "SELECT_BACKENDS",
    "WORKLOADS",
    "EXPERIMENTS",
]


class Registry:
    """Mapping of stable names to factory callables, with lazy seeding.

    *populate*, when given, is called once — on first lookup or
    mutation — with the registry itself and installs the built-in
    entries.  This keeps ``import repro.registry`` free of heavy imports
    and of cycles with the layers whose classes it names.
    """

    def __init__(self, kind: str, populate: "Callable[[Registry], None] | None" = None):
        self.kind = kind
        self._entries: dict[str, Callable] = {}
        self._populate = populate
        self._populated = populate is None

    # -- lazy seeding ---------------------------------------------------
    def _ensure_populated(self) -> None:
        if not self._populated:
            self._populated = True  # set first: populate() calls register()
            self._populate(self)

    # -- mutation -------------------------------------------------------
    def register(
        self,
        name: str,
        factory: "Callable | None" = None,
        *,
        overwrite: bool = False,
    ):
        """Register *factory* under *name*; usable as a decorator.

        Raises :class:`~repro.errors.RegistryError` if *name* is already
        taken (unless ``overwrite=True``) so two plugins cannot silently
        shadow each other.
        """
        if factory is None:  # decorator form: @REG.register("name")
            def _decorator(fn: Callable) -> Callable:
                self.register(name, fn, overwrite=overwrite)
                return fn

            return _decorator
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        if not callable(factory):
            raise RegistryError(
                f"{self.kind} factory for {name!r} must be callable, "
                f"got {type(factory).__name__}"
            )
        self._ensure_populated()
        if name in self._entries and not overwrite:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove *name* (missing names raise, like :meth:`get`)."""
        self._ensure_populated()
        if name not in self._entries:
            raise RegistryError(self._unknown_message(name))
        del self._entries[name]

    # -- lookup ---------------------------------------------------------
    def _unknown_message(self, name: str) -> str:
        available = ", ".join(sorted(self._entries)) or "(none registered)"
        return f"unknown {self.kind} {name!r}; available: {available}"

    def get(self, name: str) -> Callable:
        """The factory registered under *name*.

        Unknown names raise with the full sorted list of available
        entries — the error is the documentation.
        """
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(self._unknown_message(name)) from None

    def create(self, name: str, *args, **kwargs):
        """Look up *name* and call its factory with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        """Sorted names of every registered entry."""
        self._ensure_populated()
        return sorted(self._entries)

    # -- mapping protocol (read-only views) ------------------------------
    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:
        state = f"{len(self._entries)} entries" if self._populated else "unpopulated"
        return f"Registry(kind={self.kind!r}, {state})"


# ----------------------------------------------------------------------
# built-in entries (imports deferred into the populate hooks)
# ----------------------------------------------------------------------
def _populate_engines(reg: Registry) -> None:
    from repro.runtime.engine import OptimisticEngine
    from repro.runtime.ordered import OrderedEngine

    reg.register("optimistic", OptimisticEngine)
    reg.register("ordered", OrderedEngine)


def _populate_order_policies(reg: Registry) -> None:
    from repro.runtime.policies import (
        AsyncCommitOrder,
        OrderedCommitOrder,
        RelaxedCommitOrder,
        ShardedCommitOrder,
        UnorderedCommitOrder,
    )

    reg.register("unordered", UnorderedCommitOrder)
    reg.register("ordered", OrderedCommitOrder)
    reg.register("relaxed", RelaxedCommitOrder)
    reg.register("async", AsyncCommitOrder)
    reg.register("sharded", ShardedCommitOrder)


#: numeric-suffix parameter of each built-in order spec ("relaxed:4" ->
#: RelaxedCommitOrder(k=4), "async:8" -> AsyncCommitOrder(window=8),
#: "sharded:4" -> ShardedCommitOrder(shards=4))
_ORDER_SPEC_PARAMS = {"relaxed": "k", "async": "window", "sharded": "shards"}

#: which work-set family each built-in order policy draws from; names
#: absent here (third-party policies) default to the unordered family.
#: "sharded" stays in the unordered family: its batch is the same global
#: uniform draw — only conflict *resolution* is partitioned.
_ORDER_FAMILIES = {
    "unordered": "unordered",
    "ordered": "priority",
    "relaxed": "priority",
    "async": "arrival",
    "sharded": "unordered",
}


def parse_order_spec(order: str) -> "tuple[str, dict]":
    """Split an ``order=`` spec into ``(registry name, factory kwargs)``.

    ``"relaxed:4"`` parses to ``("relaxed", {"k": 4})`` and
    ``"async:8"`` to ``("async", {"window": 8})``; bare ``"async"``
    keeps the policy's default window, while bare ``"relaxed"`` is
    rejected — a relaxation without a depth is meaningless.  Names that
    take no parameter reject a suffix; anything else (including exotic
    third-party names containing ``":"``) passes through verbatim for
    the ``"order-policy"`` registry to accept or reject.
    """
    from repro.errors import ConfigError

    if not isinstance(order, str) or not order:
        raise ConfigError(f"order spec must be a non-empty string, got {order!r}")
    name, sep, suffix = order.partition(":")
    if name == "relaxed" and not sep:
        raise ConfigError(
            'order="relaxed" needs a depth, e.g. "relaxed:4" '
            "(k=1 is the strict ordered policy)"
        )
    if not sep:
        return order, {}
    param = _ORDER_SPEC_PARAMS.get(name)
    if param is None:
        if name in _ORDER_FAMILIES:
            raise ConfigError(f"order policy {name!r} takes no parameter, got {order!r}")
        return order, {}  # third-party name that happens to contain ":"
    try:
        value = int(suffix)
    except ValueError:
        raise ConfigError(
            f"order spec {order!r} needs an integer {param}, got {suffix!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"order spec {order!r} needs {param} >= 1, got {value}")
    return name, {param: value}


def parse_workload_spec(workload: str) -> "tuple[str, dict]":
    """Split a ``workload=`` spec into ``(registry name, factory kwargs)``.

    ``"boruvka:500"`` parses to ``("boruvka", {"scale": 500})`` — the
    app at problem size 500 — and ``"trace:runs/boruvka.jsonl"`` to
    ``("trace", {"path": "runs/boruvka.jsonl"})``, a recorded workload
    trace to replay.  Plain names pass through, as do third-party names
    that happen to contain ``":"``.
    """
    from repro.errors import ConfigError

    if not isinstance(workload, str) or not workload:
        raise ConfigError(
            f"workload spec must be a non-empty string, got {workload!r}"
        )
    name, sep, suffix = workload.partition(":")
    if not sep:
        return workload, {}
    if name == "trace":
        if not suffix:
            raise ConfigError('workload="trace:<path>" needs a trace file path')
        return name, {"path": suffix}
    from repro.apps.catalog import APP_WORKLOADS

    if name in APP_WORKLOADS:
        try:
            value = int(suffix)
        except ValueError:
            raise ConfigError(
                f"workload spec {workload!r} needs an integer scale, got {suffix!r}"
            ) from None
        if value < 1:
            raise ConfigError(
                f"workload spec {workload!r} needs scale >= 1, got {value}"
            )
        return name, {"scale": value}
    return workload, {}  # third-party name that happens to contain ":"


def workload_is_self_building(name: str) -> bool:
    """Workloads that build their own input (``api.run`` takes ``graph=None``).

    True for the application workloads (which synthesise a seeded input
    when none is given) and for ``"trace"`` replays (which rebuild their
    state from the recorded file).
    """
    from repro.apps.catalog import APP_WORKLOADS

    return name == "trace" or name in APP_WORKLOADS


def order_family(name: str) -> str:
    """Work-set family of an order-policy name.

    ``"unordered"`` (bag with uniform draw), ``"priority"``
    (:class:`~repro.runtime.policies.PriorityWorkset`), or ``"arrival"``
    (:class:`~repro.runtime.workset.ArrivalWorkset`).  Third-party names
    default to ``"unordered"``, the family whose work-set protocol any
    :class:`~repro.runtime.workset.Workset` satisfies.
    """
    return _ORDER_FAMILIES.get(name, "unordered")


def workset_for(config) -> "object":
    """Work-set instance matching ``config.order`` (and ``config.select``).

    Unordered-family orders (including ``order=None``) resolve through
    :func:`select_backend_for`; priority-family orders get a fresh
    :class:`~repro.runtime.policies.PriorityWorkset` and arrival-family
    orders an :class:`~repro.runtime.workset.ArrivalWorkset`.
    """
    order = getattr(config, "order", None)
    if order is None:
        return select_backend_for(config)
    name, _ = parse_order_spec(order)
    family = order_family(name)
    if family == "priority":
        from repro.runtime.policies import PriorityWorkset

        return PriorityWorkset()
    if family == "arrival":
        from repro.runtime.workset import ArrivalWorkset

        return ArrivalWorkset()
    return select_backend_for(config)


def _populate_controllers(reg: Registry) -> None:
    # every factory takes the RunConfig and honours (rho, m, m_min, m_max)
    # where the controller supports them
    from repro.control.adaptive import NoiseAdaptiveHybridController
    from repro.control.aimd import AIMDController
    from repro.control.asteal import AStealController
    from repro.control.bisection import BisectionController
    from repro.control.fixed import FixedController
    from repro.control.hybrid import HybridController
    from repro.control.pid import PIController
    from repro.control.recurrence import RecurrenceAController, RecurrenceBController

    def _range_kwargs(config) -> dict:
        kwargs = {"m_max": config.m_max}
        if config.m_min is not None:
            kwargs["m_min"] = config.m_min
        return kwargs

    reg.register("hybrid", lambda config: HybridController(config.rho, **_range_kwargs(config)))
    reg.register("aimd", lambda config: AIMDController(config.rho, **_range_kwargs(config)))
    reg.register("pi", lambda config: PIController(config.rho, **_range_kwargs(config)))
    reg.register(
        "bisection",
        lambda config: BisectionController(config.rho, **_range_kwargs(config)),
    )
    reg.register(
        "recurrence-a",
        lambda config: RecurrenceAController(config.rho, **_range_kwargs(config)),
    )
    reg.register(
        "recurrence-b",
        lambda config: RecurrenceBController(config.rho, **_range_kwargs(config)),
    )
    reg.register(
        "noise-adaptive",
        lambda config: NoiseAdaptiveHybridController(config.rho, **_range_kwargs(config)),
    )
    reg.register(
        "asteal", lambda config: AStealController(config.rho, **_range_kwargs(config))
    )

    def _fixed(config):
        from repro.errors import ConfigError

        if config.m is None:
            raise ConfigError('controller="fixed" needs an explicit m in the RunConfig')
        return FixedController(config.m)

    reg.register("fixed", _fixed)


def _populate_conflict_policies(reg: Registry) -> None:
    from repro.runtime.conflict import ExplicitGraphPolicy, ItemLockPolicy

    reg.register("item-lock", lambda config: ItemLockPolicy())
    reg.register("explicit-graph", lambda config: ExplicitGraphPolicy())


def _populate_select_backends(reg: Registry) -> None:
    from repro.runtime.active_set import ActiveSet
    from repro.runtime.workset import RandomWorkset

    reg.register("workset", lambda config: RandomWorkset())
    reg.register("incremental", lambda config: ActiveSet())


def select_backend_for(config) -> "object":
    """Work-set instance for ``config.select``.

    ``None`` defers to the ``REPRO_SELECT`` environment variable (via
    :func:`repro.runtime.core.resolve_select_backend`); explicit names —
    built-in or third-party — resolve through the ``"select-backend"``
    registry, whose unknown-name error lists every available backend.
    """
    name = config.select
    if name is None:
        from repro.runtime.core import resolve_select_backend

        name = resolve_select_backend(None)
    return SELECT_BACKENDS.create(name, config)


def _populate_workloads(reg: Registry) -> None:
    from repro.runtime.workloads import (
        ConsumingGraphWorkload,
        RegeneratingGraphWorkload,
        ReplayGraphWorkload,
    )

    # workset_for matches the work-set to config.order (PriorityWorkset
    # for ordered/relaxed runs, ArrivalWorkset for async, the selection
    # backend otherwise); the workload seeds it accordingly
    reg.register(
        "replay",
        lambda graph, config: ReplayGraphWorkload(graph, workset=workset_for(config)),
    )
    reg.register(
        "consuming",
        lambda graph, config: ConsumingGraphWorkload(
            graph, workset=workset_for(config)
        ),
    )

    def _regenerating(graph, config):
        # keep n and mean degree stationary: regenerate at the current
        # average degree unless the workload is built directly
        target = max(1, round(graph.average_degree))
        return RegeneratingGraphWorkload(
            graph,
            target_degree=target,
            seed=config.seed,
            workset=workset_for(config),
        )

    reg.register("regenerating", _regenerating)

    # the application workloads: factory source may be None (the app
    # synthesises a seeded input), and the work-set again follows
    # config.order / config.select via workset_for
    from repro.apps.catalog import APP_WORKLOADS

    def _app_factory(app_name):
        def _make(graph, config, scale=None):
            from repro.apps.catalog import ORDERED_APPS, make_app_workload

            # ordered-only apps run on the historical OrderedEngine when
            # no explicit order= is configured — their own priority
            # work-set, not the unordered selection backend
            if app_name in ORDERED_APPS and getattr(config, "order", None) is None:
                workset = None
            else:
                workset = workset_for(config)
            return make_app_workload(
                app_name, graph, config, scale=scale, workset=workset
            )

        return _make

    for app_name in APP_WORKLOADS:
        reg.register(app_name, _app_factory(app_name))

    def _trace(graph, config, path=None):
        from repro.errors import ConfigError

        if path is None:
            raise ConfigError(
                'workload="trace" needs a recorded trace: workload="trace:<path>"'
            )
        if graph is not None:
            raise ConfigError(
                "trace workloads rebuild their state from the recording; "
                "pass graph=None"
            )
        from repro.runtime.wktrace import TraceReplayWorkload, WorkloadTrace

        trace = WorkloadTrace.load(path)
        # an ordered recording replayed without an explicit order= runs
        # on the OrderedEngine, which needs the replay's own priority
        # work-set rather than the unordered selection backend
        if trace.requires_order and getattr(config, "order", None) is None:
            workset = None
        else:
            workset = workset_for(config)
        return TraceReplayWorkload.from_trace(
            trace, path=path, workset=workset
        )

    reg.register("trace", _trace)


def _populate_experiments(reg: Registry) -> None:
    from repro.experiments.runner import DEFAULT_EXPERIMENTS

    for name, factory in DEFAULT_EXPERIMENTS.items():
        reg.register(name, factory)


ENGINES = Registry("engine", _populate_engines)
ORDER_POLICIES = Registry("order policy", _populate_order_policies)
CONTROLLERS = Registry("controller", _populate_controllers)
CONFLICT_POLICIES = Registry("conflict policy", _populate_conflict_policies)
SELECT_BACKENDS = Registry("select backend", _populate_select_backends)
WORKLOADS = Registry("workload", _populate_workloads)
EXPERIMENTS = Registry("experiment", _populate_experiments)

_REGISTRIES: dict[str, Registry] = {
    "engine": ENGINES,
    "order-policy": ORDER_POLICIES,
    "controller": CONTROLLERS,
    "conflict-policy": CONFLICT_POLICIES,
    "select-backend": SELECT_BACKENDS,
    "workload": WORKLOADS,
    "experiment": EXPERIMENTS,
}


def registry(kind: str) -> Registry:
    """The :class:`Registry` for *kind* (``"controller"``, ``"workload"`` …)."""
    try:
        return _REGISTRIES[kind]
    except KeyError:
        available = ", ".join(sorted(_REGISTRIES))
        raise RegistryError(
            f"unknown registry kind {kind!r}; available: {available}"
        ) from None


def register(kind: str, name: str, factory: "Callable | None" = None, *, overwrite: bool = False):
    """Register a third-party *factory* in the *kind* registry.

    Mirrors :meth:`Registry.register`, including the decorator form::

        @repro.register("experiment", "my-study")
        def _run(seed, quick):
            ...
    """
    return registry(kind).register(name, factory, overwrite=overwrite)
