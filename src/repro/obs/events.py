"""Structured trace events of the observability layer.

One engine run produces a stream of :class:`TraceEvent` records — the
runtime's flight recorder.  Events are deliberately *flat and
JSON-serialisable*: a ``step`` index, a ``kind`` tag, and a payload dict
of plain scalars/lists, so that a trace can be exported as JSONL, diffed
textually, checked into the repository as a golden fixture, and replayed
byte-for-byte across refactors (serialisation is canonical: sorted keys,
no whitespace).

Event kinds emitted by the runtime:

``run_start``
    Engine construction: engine class, seed (when replayable), conflict
    policy, and the controller's full configuration
    (:meth:`~repro.control.base.Controller.describe`) — everything a
    replayer needs to reconstruct the decision trajectory.
``select``
    One scheduler draw: requested allocation ``m_t``, tasks actually
    taken, work-set size before the draw.
``step``
    Resolution of the speculative batch: commit/abort accounting plus the
    *positions within the batch* that committed (the commit order ``π_m``
    without process-dependent task uids, so traces stay byte-stable).
    Ordered engines add the conflict/order abort split and the
    barrier/horizon values.
``order_decision``
    A relaxed/async commit-order policy drew its batch through a bounded
    window: the window size and the per-round in-window ranks chosen.
    Strict policies (and depth-1 relaxation) emit nothing, keeping their
    traces byte-identical to the historical engines; the replayer treats
    the kind as informational.  The sharded policy reuses it for the
    per-shard launch/commit counts of one partitioned round.
``halo_exchange``
    A multi-shard round's phase-2 boundary resolution: locally committed
    tasks, halo aborts, and the surviving committed nodes with their
    owning shards — the fields the conflict-serializability trace
    validator checks.  Single-shard runs emit nothing (byte-identity
    with the unordered engine); the replayer treats the kind as
    informational.
``shard_round``
    One shard worker's view of one partitioned round, shipped over the
    telemetry bus (:mod:`repro.obs.distributed`): the worker's
    ``shard:<i>`` source tag, the round's halo-exchange sequence number,
    and the local launch/commit counts.  Only present in per-shard trace
    streams and in merged distributed traces; the supervisor's own trace
    never contains it, and the replayer treats the kind as
    informational.
``decision``
    A controller window closed and a rule fired (or explicitly held):
    windowed ``r``, the branch taken, old and new ``m``.
``clamp``
    A controller update hit the ``[m_min, m_max]`` actuator bound.
``run_end``
    Totals for one ``run()`` invocation.
``workload_capture``
    A :class:`~repro.runtime.wktrace.WorkloadCapture` saved its recorded
    workload trace: destination path, task/commit/abort totals, and the
    trace fingerprint.  Informational — the replayer ignores it.
``workload_replay``
    A :class:`~repro.runtime.wktrace.TraceReplayWorkload` was built from
    a recorded trace: source path, workload label, task/commit totals
    and fingerprint, so a run's provenance names the exact morph
    sequence it executed.  Informational.

The parallel sweep harness (:mod:`repro.experiments.parallel`) emits its
own lifecycle kinds into the same trace so that a sweep's failure history
— every retry, timeout, crash and quarantine decision — is replayable
from the exported JSONL alongside the engine-level events:

``sweep_start`` / ``sweep_end``
    One sweep invocation: config count, job count, and the final
    completed/quarantined/failure totals.
``sweep_task_start``
    One attempt launched: experiment, effective seed, attempt index.
``sweep_task_failed``
    One attempt failed: the failure kind (``error``/``crash``/
    ``timeout``) and message.
``sweep_task_retry``
    A failed attempt will be retried: next attempt index, next seed
    (timeout retries derive a fresh seed), and the back-off delay.
``sweep_task_quarantined``
    A config exhausted its failure budget and was quarantined.
``sweep_task_complete``
    A config produced a result (fresh or from the cache), with the
    effective seed and whether a timeout retry reseeded it.

Sweep kinds carry only deterministic payload fields (no wall-clock), so
sweep traces can be checked in as byte-stable golden fixtures.  The
engine replayer ignores them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ObservabilityError

__all__ = [
    "TraceEvent",
    "RUN_START",
    "SELECT",
    "STEP",
    "ORDER_DECISION",
    "HALO_EXCHANGE",
    "SHARD_ROUND",
    "DECISION",
    "CLAMP",
    "RUN_END",
    "WORKLOAD_CAPTURE",
    "WORKLOAD_REPLAY",
    "SWEEP_START",
    "SWEEP_END",
    "SWEEP_TASK_START",
    "SWEEP_TASK_FAILED",
    "SWEEP_TASK_RETRY",
    "SWEEP_TASK_QUARANTINED",
    "SWEEP_TASK_COMPLETE",
    "SWEEP_KINDS",
    "event_to_json",
    "event_from_json",
]

RUN_START = "run_start"
SELECT = "select"
STEP = "step"
ORDER_DECISION = "order_decision"
HALO_EXCHANGE = "halo_exchange"
SHARD_ROUND = "shard_round"
DECISION = "decision"
CLAMP = "clamp"
RUN_END = "run_end"
WORKLOAD_CAPTURE = "workload_capture"
WORKLOAD_REPLAY = "workload_replay"

SWEEP_START = "sweep_start"
SWEEP_END = "sweep_end"
SWEEP_TASK_START = "sweep_task_start"
SWEEP_TASK_FAILED = "sweep_task_failed"
SWEEP_TASK_RETRY = "sweep_task_retry"
SWEEP_TASK_QUARANTINED = "sweep_task_quarantined"
SWEEP_TASK_COMPLETE = "sweep_task_complete"

#: kinds emitted by the sweep harness (lifecycle channel, not replayed)
SWEEP_KINDS = frozenset(
    {
        SWEEP_START,
        SWEEP_END,
        SWEEP_TASK_START,
        SWEEP_TASK_FAILED,
        SWEEP_TASK_RETRY,
        SWEEP_TASK_QUARANTINED,
        SWEEP_TASK_COMPLETE,
    }
)

_KNOWN_KINDS = (
    frozenset(
        {RUN_START, SELECT, STEP, ORDER_DECISION, HALO_EXCHANGE, SHARD_ROUND,
         DECISION, CLAMP, RUN_END, WORKLOAD_CAPTURE, WORKLOAD_REPLAY}
    )
    | SWEEP_KINDS
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured record in a runtime trace."""

    step: int
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ObservabilityError(f"event step must be >= 0, got {self.step}")
        if not self.kind:
            raise ObservabilityError("event kind must be a non-empty string")

    @property
    def known(self) -> bool:
        """Whether ``kind`` is one of the runtime's standard kinds.

        Applications may emit custom kinds through a recorder; the replayer
        ignores anything it does not recognise.
        """
        return self.kind in _KNOWN_KINDS

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


def event_to_json(event: TraceEvent) -> str:
    """Canonical one-line JSON encoding (sorted keys, no whitespace).

    The canonical form is what makes golden-trace fixtures byte-stable:
    two semantically equal events always serialise identically.
    """
    payload = {"step": event.step, "kind": event.kind, "data": event.data}
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ObservabilityError(
            f"event data for kind {event.kind!r} is not JSON-serialisable"
        ) from exc


def event_from_json(line: str) -> TraceEvent:
    """Parse one JSONL line back into a :class:`TraceEvent`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"malformed trace line: {line[:80]!r}") from exc
    if not isinstance(payload, dict) or "kind" not in payload or "step" not in payload:
        raise ObservabilityError(f"trace line is not an event object: {line[:80]!r}")
    data = payload.get("data", {})
    if not isinstance(data, dict):
        raise ObservabilityError(f"event data must be an object: {line[:80]!r}")
    return TraceEvent(step=int(payload["step"]), kind=str(payload["kind"]), data=data)
