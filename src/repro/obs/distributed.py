"""Cross-process observability for the sharded runtime.

The process-backed shard runtime (:mod:`repro.runtime.sharded`) splits
one logical engine run across ``k + 1`` processes: the supervisor owns
the authoritative trace, and each shard worker sees only its own slice
of every round.  This module is the layer that stitches those views back
together:

* **Distributed traces.**  Every distributed run gets a ``run_id``;
  every stream carries a ``source`` tag in its trace meta line
  (``"supervisor"`` or ``"shard:<i>"``).  The supervisor threads a
  :class:`TraceContext` through the order policy so each multi-shard
  round's ``order_decision``/``halo_exchange`` events carry the round's
  halo-exchange sequence number (``seq``), and workers stamp the same
  ``seq`` on the ``shard_round`` events they ship back.
  :func:`merge_traces` uses those sequence numbers as the causal order:
  the merged trace interleaves every shard's round events immediately
  before the supervisor event that consumed them, independent of input
  file order.  The extra fields are strictly additive, so
  :func:`repro.obs.verify_trace` replays a merged trace unchanged.
* **Telemetry bus.**  Workers piggyback per-round metric/span deltas on
  the reply pipe they already use (no extra channel); the supervisor's
  :class:`TelemetryBus` folds them into the active
  :class:`~repro.obs.metrics.MetricsRegistry` under per-shard labels
  (see :func:`repro.obs.metrics.labelled`), merges worker span snapshots
  under ``shard.worker/``, and drives a rate-limited
  :class:`ShardProgress` live line with per-shard skew statistics.
* **Crash flight recorder.**  Workers append a bounded spill journal of
  round begin/end records (fsynced *before* any fault can fire); when a
  worker dies, hangs or errors, the supervisor's :class:`FlightRecorder`
  salvages the spill tail into a ``flightrec/<run_id>/shard-<i>.jsonl``
  bundle, and :func:`diagnose_crash` turns a bundle into a
  :class:`CrashReport` naming the dead shard, its last round and the
  spans still open at death.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
import uuid
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.events import SHARD_ROUND, TraceEvent, event_to_json
from repro.obs.metrics import labelled
from repro.obs.recorder import load_jsonl_meta

__all__ = [
    "SUPERVISOR_SOURCE",
    "MERGED_SOURCE",
    "new_run_id",
    "shard_source",
    "parse_shard_source",
    "TraceContext",
    "merge_traces",
    "merge_trace_files",
    "write_trace",
    "ShardProgress",
    "TelemetryBus",
    "FlightRecorder",
    "flight_incarnation",
    "flight_round_begin",
    "flight_round_end",
    "CrashReport",
    "diagnose_crash",
]

#: trace-meta ``source`` tag of the supervisor's own stream
SUPERVISOR_SOURCE = "supervisor"
#: trace-meta ``source`` tag of a merged trace
MERGED_SOURCE = "merged"
#: flight-spill record layout version (bump on incompatible change)
FLIGHT_SCHEMA = 1
#: how many spill records a salvaged bundle keeps by default
DEFAULT_FLIGHT_TAIL = 200


def new_run_id(*parts) -> str:
    """A short hex run identifier.

    With *parts*, the id is a pure function of them (sha256-derived), so
    deterministic replays of the same configuration reuse the same id —
    the property the byte-identical merged-trace gate relies on.  With
    no parts, a fresh random id is drawn.
    """
    if parts:
        digest = hashlib.sha256(
            "\x1f".join(str(p) for p in parts).encode("utf-8")
        )
        return digest.hexdigest()[:12]
    return uuid.uuid4().hex[:12]


def shard_source(shard: int) -> str:
    """The ``source`` tag of shard *shard*'s trace stream."""
    return f"shard:{int(shard)}"


def parse_shard_source(source: str) -> "int | None":
    """The shard index of a ``shard:<i>`` source tag (None otherwise)."""
    if isinstance(source, str) and source.startswith("shard:"):
        try:
            return int(source.split(":", 1)[1])
        except ValueError:
            return None
    return None


class TraceContext:
    """Causal context of one distributed run.

    Owned by the supervisor and duck-typed onto the order policy
    (``ShardedCommitOrder.trace_ctx``): each multi-shard round draws the
    next halo-exchange sequence number *once* and stamps it — together
    with the ``run_id`` — on everything the round produces, on both
    sides of the pipe.  Sequence numbers start at 1 and are consumed in
    lock-step with the deterministic round order, so replays and resumed
    runs assign identical numbers.
    """

    __slots__ = ("run_id", "_seq")

    def __init__(self, run_id: "str | None" = None) -> None:
        self.run_id = None if run_id is None else str(run_id)
        self._seq = 0

    @property
    def seq(self) -> int:
        """The most recently issued sequence number (0 before the first)."""
        return self._seq

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq


# ----------------------------------------------------------------------
# trace merging
# ----------------------------------------------------------------------
def merge_traces(streams) -> "tuple[list[TraceEvent], dict]":
    """Merge per-process trace streams into one causally ordered trace.

    *streams* is an iterable of ``(events, meta)`` pairs as returned by
    :func:`repro.obs.load_jsonl_meta`: exactly one stream must be the
    supervisor's (``source`` absent or ``"supervisor"``), the rest are
    shard streams tagged ``shard:<i>``.  The supervisor's local order is
    the backbone; each shard event is placed immediately before the
    first supervisor event carrying the same (or a later) ``seq`` —
    i.e. a round's worker-side records precede the ``order_decision``
    that consumed them.  Ties are broken by ``(seq, shard, local
    position)``, so the result is a pure function of the stream
    *contents*: permuting the input order cannot change the output.

    Returns ``(events, meta)`` where ``meta`` tags the trace as
    ``source="merged"`` and records the participating shards.  Raises
    :class:`~repro.errors.ObservabilityError` on inconsistent streams
    (conflicting ``run_id``, duplicate sources, shard events without a
    ``seq``).
    """
    sup_events: "list[TraceEvent] | None" = None
    sup_meta: dict = {}
    shard_streams: "dict[int, list[TraceEvent]]" = {}
    run_ids: set[str] = set()
    count = 0
    for events, meta in streams:
        count += 1
        meta = dict(meta or {})
        run_id = meta.get("run_id")
        if run_id is not None:
            run_ids.add(str(run_id))
        source = str(meta.get("source", SUPERVISOR_SOURCE))
        shard = parse_shard_source(source)
        if shard is None:
            if source != SUPERVISOR_SOURCE:
                raise ObservabilityError(
                    f"cannot merge trace stream with source {source!r}"
                )
            if sup_events is not None:
                raise ObservabilityError(
                    "merge_traces got more than one supervisor stream"
                )
            sup_events = list(events)
            sup_meta = meta
        else:
            if shard in shard_streams:
                raise ObservabilityError(
                    f"duplicate trace stream for {source!r}"
                )
            shard_streams[shard] = list(events)
    if count == 0:
        raise ObservabilityError("merge_traces got no streams")
    if len(run_ids) > 1:
        raise ObservabilityError(
            f"streams disagree on run_id: {sorted(run_ids)}"
        )
    if sup_events is None:
        raise ObservabilityError(
            "merge_traces needs the supervisor stream (it is the backbone)"
        )

    # shard events bucketed by seq; the sorted-shard outer walk makes each
    # bucket already ordered by (shard, local position)
    buckets: "dict[int, list[TraceEvent]]" = {}
    for shard in sorted(shard_streams):
        for pos, event in enumerate(shard_streams[shard]):
            seq = event.get("seq")
            if seq is None:
                raise ObservabilityError(
                    f"shard:{shard} event #{pos} ({event.kind}) carries no "
                    "'seq' — not a distributed-trace stream?"
                )
            buckets.setdefault(int(seq), []).append(event)
    pending = sorted(buckets, reverse=True)  # pop() walks ascending

    merged: list[TraceEvent] = []

    def flush_through(seq: float) -> None:
        while pending and pending[-1] <= seq:
            merged.extend(buckets[pending.pop()])

    for event in sup_events:
        seq = event.get("seq")
        if seq is not None:
            flush_through(int(seq))
        merged.append(event)
    flush_through(float("inf"))  # rounds the supervisor never recorded

    meta = {
        "source": MERGED_SOURCE,
        "streams": count,
        "shards": sorted(shard_streams),
    }
    if run_ids:
        meta["run_id"] = next(iter(run_ids))
    if sup_meta.get("dropped"):
        meta["dropped"] = sup_meta["dropped"]
    return merged, meta


def merge_trace_files(paths, out=None) -> "tuple[list[TraceEvent], dict]":
    """Load, merge and optionally write distributed trace files.

    *paths* are JSONL trace files written by :func:`write_trace` (each
    carrying its ``source``/``run_id`` meta line); *out*, when given,
    receives the merged trace in the same format.  Input order is
    irrelevant — see :func:`merge_traces`.
    """
    events, meta = merge_traces(load_jsonl_meta(p) for p in paths)
    if out is not None:
        write_trace(out, events, meta)
    return events, meta


def write_trace(path, events, meta: "dict | None" = None) -> Path:
    """Write one trace stream: a ``{"meta": ...}`` line plus canonical events.

    The meta line is the stream's identity (``source``, ``run_id``);
    :func:`repro.obs.load_jsonl` skips it, so any trace consumer —
    including :func:`repro.obs.verify_trace` — reads the file unchanged.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    if meta:
        lines.append(
            json.dumps({"meta": dict(meta)}, sort_keys=True, separators=(",", ":"))
        )
    lines.extend(event_to_json(event) for event in events)
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# live progress monitor
# ----------------------------------------------------------------------
def _stderr_sink(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


class ShardProgress:
    """Periodic one-line live status for a sharded run.

    The sharded sibling of :class:`~repro.obs.analysis.SweepProgress`:
    feed it one :meth:`on_round` per resolved multi-shard round (plus
    halo-barrier waits via :meth:`note_halo_wait_seconds`) and it
    rate-limits itself to one line per *interval* seconds on *sink*,
    reporting per-shard totals and the commit-rate skew — the live
    symptom of a shard stalling the halo barrier.  Clock and sink are
    injectable so tests drive it deterministically without sleeping.
    """

    #: EWMA smoothing factor for the halo-barrier wait
    ALPHA = 0.3

    def __init__(
        self,
        shards: int,
        *,
        interval: float = 5.0,
        sink=None,
        clock=None,
    ) -> None:
        if shards < 1:
            raise ObservabilityError(f"shards must be >= 1, got {shards}")
        if interval < 0:
            raise ObservabilityError(f"interval must be >= 0, got {interval}")
        self.shards = int(shards)
        self.interval = float(interval)
        self._sink = sink if sink is not None else _stderr_sink
        self._clock = clock if clock is not None else time.monotonic
        self.rounds = 0
        self.launched = [0] * self.shards
        self.committed = [0] * self.shards
        self.halo_aborts = 0
        self.ewma_halo_wait_seconds: "float | None" = None
        self._last_emit: "float | None" = None

    # -- feeding -------------------------------------------------------
    def on_round(self, launched, committed, halo_aborts: int = 0) -> None:
        """Accumulate one round's per-shard launch/commit counts."""
        if len(launched) != self.shards or len(committed) != self.shards:
            raise ObservabilityError(
                f"per-shard stats for {len(launched)} shards on a "
                f"{self.shards}-shard monitor"
            )
        self.rounds += 1
        for shard in range(self.shards):
            self.launched[shard] += int(launched[shard])
            self.committed[shard] += int(committed[shard])
        self.halo_aborts += int(halo_aborts)

    def note_halo_wait_seconds(self, seconds: float) -> None:
        seconds = float(seconds)
        if self.ewma_halo_wait_seconds is None:
            self.ewma_halo_wait_seconds = seconds
        else:
            self.ewma_halo_wait_seconds = (
                self.ALPHA * seconds
                + (1.0 - self.ALPHA) * self.ewma_halo_wait_seconds
            )

    # -- reporting -----------------------------------------------------
    def commit_rates(self) -> "list[float]":
        """Cumulative per-shard commit rate (committed / launched)."""
        return [
            c / l if l else 0.0
            for c, l in zip(self.committed, self.launched)
        ]

    def skew(self) -> "tuple[float, float]":
        """(max, min) cumulative per-shard commit rate."""
        rates = self.commit_rates()
        return (max(rates), min(rates)) if rates else (0.0, 0.0)

    def status_line(self) -> str:
        hi, lo = self.skew()
        parts = [
            f"shards[{self.shards}]: round {self.rounds}",
            f"launched {sum(self.launched)}",
            f"committed {sum(self.committed)}",
            f"halo aborts {self.halo_aborts}",
            f"commit rate max {hi:.2f}/min {lo:.2f}",
        ]
        if self.ewma_halo_wait_seconds is not None:
            parts.append(
                f"halo wait EWMA {self.ewma_halo_wait_seconds * 1e3:.1f}ms"
            )
        return " | ".join(parts)

    def maybe_emit(self, force: bool = False) -> "str | None":
        """Emit a status line if *interval* elapsed (or *force*)."""
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.interval
        ):
            return None
        self._last_emit = now
        line = self.status_line()
        self._sink(line)
        return line


# ----------------------------------------------------------------------
# supervisor-side telemetry bus
# ----------------------------------------------------------------------
class TelemetryBus:
    """Aggregates per-round worker telemetry on the supervisor side.

    One bus per distributed run.  The shard pool feeds it twice per
    round: :meth:`ingest` with each worker reply's piggybacked telemetry
    (event payloads and span-snapshot deltas), and :meth:`note_round`
    with the supervisor's own per-shard accounting and timings.  The bus
    fans those out to whichever channels are attached:

    * *trace_dir* — per-shard event buffers, written as one
      ``shard-<i>.jsonl`` stream per shard on :meth:`close` (bounded by
      *capacity* events per shard, mirroring the recorder's ring);
    * *metrics* — per-shard labelled counters (``shard.launched``,
      ``shard.committed``), the ``shard.halo_aborts`` counter, the
      ``shard.halo_wait_seconds`` histogram and the
      ``shard.commit_rate_max``/``min`` skew gauges;
    * *profiler* — worker span deltas merged under ``shard.worker/``
      plus supervisor-side ``shard.round`` wall-clock, the same shape
      the sweep supervisor produces for ``--profile``;
    * *monitor* — a :class:`ShardProgress` fed and rate-limit-emitted
      every round.
    """

    def __init__(
        self,
        shards: int,
        *,
        run_id: "str | None" = None,
        trace_dir=None,
        metrics=None,
        profiler=None,
        monitor: "ShardProgress | None" = None,
        capacity: int = 4096,
    ) -> None:
        if shards < 1:
            raise ObservabilityError(f"shards must be >= 1, got {shards}")
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        self.shards = int(shards)
        self.run_id = None if run_id is None else str(run_id)
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        self.metrics = metrics
        self.profiler = profiler
        self.monitor = monitor
        self.capacity = int(capacity)
        self._events = [deque(maxlen=self.capacity) for _ in range(self.shards)]
        self._dropped = [0] * self.shards
        self._launched = [0] * self.shards
        self._committed = [0] * self.shards
        self.rounds = 0

    @property
    def wants_events(self) -> bool:
        """Whether workers should ship per-round trace events."""
        return self.trace_dir is not None

    @property
    def wants_spans(self) -> bool:
        """Whether workers should ship per-round span snapshots."""
        return self.profiler is not None

    # -- worker-side deltas --------------------------------------------
    def ingest(self, shard: int, telem: "dict | None") -> None:
        """Fold one worker reply's piggybacked telemetry into the bus."""
        if not telem:
            return
        if self.wants_events:
            buf = self._events[shard]
            for payload in telem.get("events", ()):
                if len(buf) == buf.maxlen:
                    self._dropped[shard] += 1
                buf.append(
                    TraceEvent(
                        step=int(payload.get("step", 0)),
                        kind=str(payload.get("kind", SHARD_ROUND)),
                        data=dict(payload.get("data") or {}),
                    )
                )
        spans = telem.get("spans")
        if spans and self.profiler is not None:
            self.profiler.merge(spans, prefix=("shard.worker",))

    # -- supervisor-side accounting ------------------------------------
    def note_round(
        self,
        stats: dict,
        *,
        halo_wait_seconds: "float | None" = None,
        round_seconds: "float | None" = None,
    ) -> None:
        """Account one resolved round (*stats* per-shard launched/committed)."""
        launched = [int(x) for x in stats["launched"]]
        committed = [int(x) for x in stats["committed"]]
        halo_aborts = int(stats.get("halo_aborts", 0))
        self.rounds += 1
        for shard in range(self.shards):
            self._launched[shard] += launched[shard]
            self._committed[shard] += committed[shard]
        registry = self.metrics
        if registry is not None:
            for shard in range(self.shards):
                registry.counter(
                    labelled("shard.launched", shard=shard)
                ).inc(launched[shard])
                registry.counter(
                    labelled("shard.committed", shard=shard)
                ).inc(committed[shard])
            registry.counter("shard.halo_aborts").inc(halo_aborts)
            rates = [
                c / l if l else 0.0
                for c, l in zip(self._committed, self._launched)
            ]
            registry.gauge("shard.commit_rate_max").set(max(rates))
            registry.gauge("shard.commit_rate_min").set(min(rates))
            if halo_wait_seconds is not None:
                registry.histogram("shard.halo_wait_seconds").observe(
                    float(halo_wait_seconds)
                )
        if self.profiler is not None and round_seconds is not None:
            self.profiler.add("shard.round", int(round_seconds * 1e9))
        if self.monitor is not None:
            self.monitor.on_round(launched, committed, halo_aborts)
            if halo_wait_seconds is not None:
                self.monitor.note_halo_wait_seconds(halo_wait_seconds)
            self.monitor.maybe_emit()

    # -- trace output --------------------------------------------------
    def shard_stream(self, shard: int) -> "tuple[list[TraceEvent], dict]":
        """One shard's buffered events plus its stream meta."""
        meta: dict = {"source": shard_source(shard)}
        if self.run_id is not None:
            meta["run_id"] = self.run_id
        if self._dropped[shard]:
            meta["capacity"] = self.capacity
            meta["dropped"] = self._dropped[shard]
        return list(self._events[shard]), meta

    def write_traces(self) -> "list[Path]":
        """Write every shard stream under ``trace_dir`` (one file each)."""
        if self.trace_dir is None:
            raise ObservabilityError("telemetry bus has no trace_dir")
        paths = []
        for shard in range(self.shards):
            events, meta = self.shard_stream(shard)
            paths.append(
                write_trace(self.trace_dir / f"shard-{shard}.jsonl", events, meta)
            )
        return paths

    def close(self) -> "list[Path]":
        """Flush the monitor and write shard traces (when configured)."""
        if self.monitor is not None:
            self.monitor.maybe_emit(force=True)
        return self.write_traces() if self.trace_dir is not None else []


# ----------------------------------------------------------------------
# crash flight recorder
# ----------------------------------------------------------------------
def flight_incarnation(run_id, shard: int, attempt: int) -> dict:
    """Spill record opening one worker incarnation."""
    return {
        "flight": {
            "schema": FLIGHT_SCHEMA,
            "run_id": None if run_id is None else str(run_id),
            "shard": int(shard),
            "attempt": int(attempt),
        }
    }


def flight_round_begin(step, seq, size: int, attempt: int) -> dict:
    """Spill record written (and fsynced) before a round is served."""
    return {
        "round_begin": {
            "step": None if step is None else int(step),
            "seq": None if seq is None else int(seq),
            "size": int(size),
            "attempt": int(attempt),
            "open_spans": ["shard.round"],
        }
    }


def flight_round_end(step, launched: int, committed: int, spans=None) -> dict:
    """Spill record written after a round's reply was sent."""
    return {
        "round_end": {
            "step": None if step is None else int(step),
            "launched": int(launched),
            "committed": int(committed),
            "spans": spans,
        }
    }


class FlightRecorder:
    """Supervisor-side salvage of dead workers' spill journals.

    Workers append one :func:`flight_round_begin` record — fsynced — to
    their per-shard spill file *before* serving each round (and before
    any injected fault can fire), and one :func:`flight_round_end` after
    the reply is sent.  When the pool observes a crash, timeout or
    worker error, :meth:`salvage` copies the spill's tail into the
    bundle ``<base>/<run_id>/shard-<i>.jsonl`` with a leading meta line
    recording the failure; :func:`diagnose_crash` reads bundles back.
    A later incarnation of the same shard appends to the same spill, so
    the bundle of a second death supersedes the first (last crash wins).
    """

    def __init__(self, base_dir, run_id, shards: int) -> None:
        if shards < 1:
            raise ObservabilityError(f"shards must be >= 1, got {shards}")
        self.run_id = str(run_id)
        self.shards = int(shards)
        self.dir = Path(base_dir) / self.run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        #: bundles written so far, in salvage order
        self.salvaged: "list[Path]" = []

    def spill_path(self, shard: int) -> Path:
        return self.dir / f"spill-{int(shard)}.jsonl"

    def bundle_path(self, shard: int) -> Path:
        return self.dir / f"shard-{int(shard)}.jsonl"

    def worker_payload(self, shard: int) -> dict:
        """What a spawning worker needs to write its spill."""
        return {"path": str(self.spill_path(shard)), "run_id": self.run_id}

    def salvage(
        self,
        shard: int,
        *,
        reason: str,
        attempt: int,
        tail: int = DEFAULT_FLIGHT_TAIL,
    ) -> Path:
        """Copy the spill tail of a dead worker into its crash bundle."""
        spill = self.spill_path(shard)
        lines: "list[str]" = []
        if spill.exists():
            lines = [
                line
                for line in spill.read_text(encoding="utf-8").splitlines()
                if line.strip()
            ]
        kept = lines[-tail:] if tail and len(lines) > tail else lines
        meta = {
            "flight_bundle": {
                "schema": FLIGHT_SCHEMA,
                "run_id": self.run_id,
                "shard": int(shard),
                "source": shard_source(shard),
                "reason": str(reason),
                "attempt": int(attempt),
                "salvaged_lines": len(kept),
                "total_lines": len(lines),
            }
        }
        bundle = self.bundle_path(shard)
        bundle.write_text(
            "".join(
                line + "\n"
                for line in [json.dumps(meta, sort_keys=True)] + kept
            ),
            encoding="utf-8",
        )
        self.salvaged.append(bundle)
        return bundle


@dataclass(frozen=True)
class CrashReport:
    """What a dead shard worker was doing when it died.

    Reconstructed from a flight-recorder bundle by
    :func:`diagnose_crash`: the failure the supervisor observed, the
    last round the worker began (step, sequence number, batch size),
    whether that round ever completed — its ``open_spans`` are the spans
    still running at death — and the tail of the spill journal.
    """

    bundle: str
    run_id: "str | None"
    shard: int
    reason: str
    attempt: int
    rounds_started: int
    rounds_completed: int
    last_step: "int | None"
    last_seq: "int | None"
    open_spans: tuple
    tail: tuple
    spans: "dict | None"

    @property
    def died_mid_round(self) -> bool:
        return self.rounds_started > self.rounds_completed

    def render(self) -> str:
        lines = [
            f"crash flight report: shard {self.shard}"
            + (f" (run {self.run_id})" if self.run_id else ""),
            f"  reason: {self.reason}",
            f"  dead incarnation: attempt {self.attempt}",
            f"  rounds: {self.rounds_started} begun, "
            f"{self.rounds_completed} completed",
        ]
        if self.last_step is not None or self.last_seq is not None:
            where = f"step {self.last_step}"
            if self.last_seq is not None:
                where += f", seq {self.last_seq}"
            lines.append(f"  last round at death: {where}")
        if self.open_spans:
            lines.append(
                "  open spans at death: " + ", ".join(self.open_spans)
            )
        else:
            lines.append("  open spans at death: none")
        if self.tail:
            lines.append(f"  last {len(self.tail)} spill records:")
            for record in self.tail:
                lines.append(
                    "    "
                    + json.dumps(record, sort_keys=True, separators=(",", ":"))
                )
        return "\n".join(lines)


def diagnose_crash(bundle, last: int = 10) -> CrashReport:
    """Analyse one flight-recorder bundle into a :class:`CrashReport`.

    *bundle* is a ``shard-<i>.jsonl`` file written by
    :meth:`FlightRecorder.salvage`.  The report pairs ``round_begin``
    and ``round_end`` records: a begin without its end means the worker
    died mid-round, and that begin's ``open_spans`` are what was running
    at death.  *last* bounds the spill tail included verbatim.
    """
    path = Path(bundle)
    if not path.exists():
        raise ObservabilityError(f"no flight bundle at {path}")
    head: "dict | None" = None
    records: "list[dict]" = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{lineno}: malformed flight record: {line[:80]!r}"
            ) from exc
        if not isinstance(payload, dict):
            raise ObservabilityError(
                f"{path}:{lineno}: flight record is not an object"
            )
        if "flight_bundle" in payload:
            head = payload["flight_bundle"]
        else:
            records.append(payload)
    if head is None:
        raise ObservabilityError(f"{path} has no flight_bundle meta line")

    started = completed = 0
    open_begin: "dict | None" = None
    last_step = last_seq = None
    attempt = int(head.get("attempt", 0))
    spans = None
    for record in records:
        if "flight" in record:
            # a fresh incarnation implicitly abandons any open round
            open_begin = None
        elif "round_begin" in record:
            begin = record["round_begin"]
            started += 1
            open_begin = begin
            last_step = begin.get("step")
            last_seq = begin.get("seq")
        elif "round_end" in record:
            completed += 1
            open_begin = None
            end = record["round_end"]
            if end.get("spans") is not None:
                spans = end["spans"]
    open_spans = (
        tuple(str(s) for s in open_begin.get("open_spans", ()))
        if open_begin is not None
        else ()
    )
    return CrashReport(
        bundle=str(path),
        run_id=head.get("run_id"),
        shard=int(head.get("shard", -1)),
        reason=str(head.get("reason", "unknown")),
        attempt=attempt,
        rounds_started=started,
        rounds_completed=completed,
        last_step=None if last_step is None else int(last_step),
        last_seq=None if last_seq is None else int(last_seq),
        open_spans=open_spans,
        tail=tuple(records[-last:]) if last else (),
        spans=spans,
    )
