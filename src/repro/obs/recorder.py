"""Trace recorder: in-memory ring buffer with JSONL export/import.

A :class:`TraceRecorder` collects :class:`~repro.obs.events.TraceEvent`
records into a bounded ring buffer (old events fall off the front once
``capacity`` is reached — production traces must not grow without bound),
and serialises to/from JSONL.

A module-level *active recorder* lets high-level entry points (the
experiments CLI, scripts) turn tracing on without threading a recorder
argument through every engine constructor: engines built while a recorder
is active attach to it automatically.  When no recorder is active the
engines keep a ``None`` handle and skip every emission — the disabled
path costs one attribute test per step.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.errors import ObservabilityError
from repro.obs.events import TraceEvent, event_from_json, event_to_json

__all__ = [
    "TraceRecorder",
    "load_jsonl",
    "load_jsonl_meta",
    "active_recorder",
    "activate",
    "deactivate",
    "recording",
    "describe_seed",
]

#: default ring capacity — generous for any experiment in this repo while
#: still bounding a runaway production run (~tens of MB of events)
DEFAULT_CAPACITY = 1 << 20


class TraceRecorder:
    """Bounded event sink with canonical JSONL round-tripping."""

    def __init__(self, capacity: "int | None" = DEFAULT_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ObservabilityError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: events that fell off the front of the ring
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, kind: str, step: int, **data) -> TraceEvent:
        """Append one event; returns it (handy for tests)."""
        if self.capacity is not None and len(self._ring) == self.capacity:
            self.dropped += 1
        event = TraceEvent(step=int(step), kind=kind, data=data)
        self._ring.append(event)
        return event

    def record(self, event: TraceEvent) -> None:
        """Append an already-built event."""
        if self.capacity is not None and len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder(events={len(self._ring)}, dropped={self.dropped}, "
            f"capacity={self.capacity})"
        )

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Canonical JSONL text of the whole buffer (oldest first).

        When the ring wrapped, a leading ``{"meta": ...}`` line records
        how many events fell off the front — a truncated trace must not
        pass itself off as complete on import.  Complete traces carry no
        meta line, so existing golden fixtures stay byte-identical.
        """
        body = "".join(event_to_json(e) + "\n" for e in self._ring)
        if not self.dropped:
            return body
        meta = json.dumps(
            {"meta": {"capacity": self.capacity, "dropped": self.dropped}},
            sort_keys=True,
            separators=(",", ":"),
        )
        return meta + "\n" + body

    def save_jsonl(self, path: "str | Path") -> None:
        """Write the buffer as one canonical JSON object per line."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")


def load_jsonl(path: "str | Path") -> list[TraceEvent]:
    """Reload a JSONL trace file into a list of events (meta lines skipped)."""
    return load_jsonl_meta(path)[0]


def load_jsonl_meta(path: "str | Path") -> "tuple[list[TraceEvent], dict]":
    """Reload a JSONL trace plus its export metadata.

    Returns ``(events, meta)`` where ``meta`` is the payload of the
    trace's ``{"meta": ...}`` line — ``{"capacity": ..., "dropped": N}``
    for a trace that wrapped its ring — or ``{}`` for a complete trace.
    """
    events: list[TraceEvent] = []
    meta: dict = {}
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{lineno}: malformed trace line: {line[:80]!r}"
            ) from exc
        if isinstance(payload, dict) and "meta" in payload and "kind" not in payload:
            if not isinstance(payload["meta"], dict):
                raise ObservabilityError(
                    f"{path}:{lineno}: trace meta must be an object"
                )
            meta.update(payload["meta"])
            continue
        try:
            events.append(event_from_json(line))
        except ObservabilityError as exc:
            raise ObservabilityError(f"{path}:{lineno}: {exc}") from exc
    return events, meta


# ----------------------------------------------------------------------
# active-recorder plumbing
# ----------------------------------------------------------------------
_active: "TraceRecorder | None" = None


def active_recorder() -> "TraceRecorder | None":
    """The recorder engines should attach to, or ``None`` when disabled."""
    return _active


def activate(recorder: TraceRecorder) -> TraceRecorder:
    """Make *recorder* the process-wide default sink for new engines."""
    global _active
    if not isinstance(recorder, TraceRecorder):
        raise ObservabilityError(
            f"can only activate a TraceRecorder, got {type(recorder).__name__}"
        )
    _active = recorder
    return recorder


def deactivate() -> None:
    """Clear the active recorder (new engines record nothing)."""
    global _active
    _active = None


@contextmanager
def recording(path: "str | Path | None" = None, capacity: "int | None" = DEFAULT_CAPACITY):
    """Context manager: activate a fresh recorder, optionally save on exit.

    ::

        with recording("run.jsonl") as rec:
            for_each(tasks, operator, rho=0.25, seed=7)
        # run.jsonl now holds the full structured trace
    """
    global _active
    recorder = TraceRecorder(capacity=capacity)
    previous = _active
    activate(recorder)
    try:
        yield recorder
    finally:
        _active = previous
        if path is not None:
            recorder.save_jsonl(path)


def describe_seed(seed) -> "int | None":
    """A replayable representation of an engine seed.

    Integer (and numpy-integer) seeds and ``None`` are recorded verbatim;
    shared :class:`~numpy.random.Generator` objects have consumed state
    and cannot be re-created from the trace, so they record as ``None``
    (the trace is still inspectable, just not engine-replayable).
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return None if seed is None else int(seed)
    return None
