"""Telemetry export: OpenMetrics text exposition and canonical JSON.

Two serialisations of a :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_openmetrics` — the Prometheus/OpenMetrics text format
  (``# TYPE`` headers, ``_total`` counters, cumulative
  ``_bucket{le="..."}`` histogram series, terminated by ``# EOF``), so a
  run's telemetry can be scraped or pushed to any Prometheus-compatible
  stack without adapters.
* :func:`snapshot_registry` / :func:`restore_registry` — a *lossless*
  kinded JSON snapshot.  Unlike ``MetricsRegistry.snapshot()`` (a human
  summary), this one carries the Welford internals and bucket tables, so
  ``restore_registry(json.loads(json.dumps(snapshot_registry(reg))))``
  rebuilds a registry whose :meth:`render` is byte-identical — the
  round-trip property the telemetry files are tested against.

Both outputs are deterministically sorted by metric name, making
telemetry files diffable across runs.  Non-finite floats (a gauge that
was never set is NaN) are encoded as the strings ``"nan"``/``"inf"``/
``"-inf"`` so snapshots stay strict JSON.

:func:`write_telemetry` bundles the pair: given ``out/telemetry`` it
writes ``out/telemetry.prom`` and ``out/telemetry.json``.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "render_openmetrics",
    "snapshot_registry",
    "restore_registry",
    "write_telemetry",
]

#: kinded-snapshot layout version (bump on incompatible change)
SNAPSHOT_SCHEMA = 1

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitise a dotted registry name into an OpenMetrics metric name."""
    out = _NAME_OK.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _split_labels(name: str) -> "tuple[str, str]":
    """Split a registry name into ``(base, label_suffix)``.

    Labelled names (see :func:`repro.obs.metrics.labelled`) carry an
    OpenMetrics label set inline — ``shard.launched{shard="2"}`` — which
    must survive exposition verbatim while only the *base* is sanitised.
    """
    if name.endswith("}") and "{" in name:
        base, _, rest = name.partition("{")
        return base, "{" + rest
    return name, ""


def _with_label(labels: str, extra: str) -> str:
    """Merge one ``k="v"`` pair into an existing label suffix."""
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def _fmt(value: float) -> str:
    """OpenMetrics sample-value formatting (NaN / +Inf / -Inf spelled out)."""
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _encode_float(x: float) -> "float | str":
    """JSON-safe float: non-finite values become tagged strings."""
    if math.isnan(x):
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return x


def _decode_float(x: "float | int | str") -> float:
    if isinstance(x, str):
        try:
            return float(x)
        except ValueError as exc:
            raise ObservabilityError(f"bad encoded float {x!r}") from exc
    return float(x)


# ----------------------------------------------------------------------
# OpenMetrics text exposition
# ----------------------------------------------------------------------
def render_openmetrics(registry: MetricsRegistry) -> str:
    """The registry as OpenMetrics text exposition (ends with ``# EOF``).

    Histogram bucket series are cumulative ``le`` counts; empty buckets
    below the first observation are elided (the series stays monotone,
    and the mandatory ``+Inf`` bucket always closes it).

    Labelled series (``name{shard="2"}``, see
    :func:`repro.obs.metrics.labelled`) share one ``# TYPE`` header per
    base name; the sorted registry walk keeps the variants adjacent, so
    the exposition stays grouped and diffable.
    """
    lines: list[str] = []
    typed: dict[str, str] = {}
    for name in registry.names():
        metric = registry._metrics[name]  # registry-internal walk, same package
        base, labels = _split_labels(name)
        om = _metric_name(base)
        if isinstance(metric, Counter):
            kind = "counter"
        elif isinstance(metric, Gauge):
            kind = "gauge"
        elif isinstance(metric, Histogram):
            kind = "histogram"
        else:  # pragma: no cover - registry only stores the three kinds
            raise ObservabilityError(
                f"cannot export metric {name!r} of type {type(metric).__name__}"
            )
        first = om not in typed
        if typed.setdefault(om, kind) != kind:
            raise ObservabilityError(
                f"metric {base!r} exported as both {typed[om]} and {kind}; "
                "labelled variants of one name must share a kind"
            )
        if first:  # one header per base name; labelled variants share it
            lines.append(f"# TYPE {om} {kind}")
        if kind == "counter":
            lines.append(f"{om}_total{labels} {metric.value}")
        elif kind == "gauge":
            lines.append(f"{om}{labels} {_fmt(metric.value)}")
        else:
            cumulative = 0
            for bound, count in metric.buckets():
                if math.isinf(bound):
                    continue  # folded into +Inf below
                cumulative += count
                le = _with_label(labels, f'le="{_fmt(bound)}"')
                lines.append(f"{om}_bucket{le} {cumulative}")
            inf = _with_label(labels, 'le="+Inf"')
            lines.append(f"{om}_bucket{inf} {metric.count}")
            total = metric.mean * metric.count if metric.count else 0.0
            lines.append(f"{om}_sum{labels} {_fmt(total)}")
            lines.append(f"{om}_count{labels} {metric.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# lossless kinded JSON snapshot
# ----------------------------------------------------------------------
def snapshot_registry(registry: MetricsRegistry) -> dict:
    """Kinded full-state dump; JSON-serialisable and lossless.

    Histograms carry the Welford accumulator fields (``m2`` included —
    Python's float repr round-trips exactly through JSON) plus the
    bucket bounds and per-bucket counts, so :func:`restore_registry`
    rebuilds the identical distribution summary.
    """
    metrics: dict[str, dict] = {}
    for name in registry.names():
        metric = registry._metrics[name]
        if isinstance(metric, Counter):
            metrics[name] = {"kind": "counter", "value": metric.value}
        elif isinstance(metric, Gauge):
            metrics[name] = {"kind": "gauge", "value": _encode_float(metric.value)}
        elif isinstance(metric, Histogram):
            stats = metric._stats  # lossless dump needs the accumulator fields
            metrics[name] = {
                "kind": "histogram",
                "count": stats.count,
                "mean": _encode_float(stats._mean),
                "m2": _encode_float(stats._m2),
                "min": _encode_float(stats.min),
                "max": _encode_float(stats.max),
                "bounds": [_encode_float(b) for b in metric._bounds],
                "bucket_counts": list(metric._bucket_counts),
                "overflow": metric._overflow,
            }
        else:  # pragma: no cover
            raise ObservabilityError(
                f"cannot snapshot metric {name!r} of type {type(metric).__name__}"
            )
    return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


def restore_registry(snapshot: dict) -> MetricsRegistry:
    """Inverse of :func:`snapshot_registry`."""
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ObservabilityError("telemetry snapshot has no 'metrics' table")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ObservabilityError(
            f"telemetry snapshot schema {snapshot.get('schema')!r} != {SNAPSHOT_SCHEMA}"
        )
    registry = MetricsRegistry()
    for name, entry in snapshot["metrics"].items():
        try:
            kind = entry["kind"]
            if kind == "counter":
                registry.counter(name).inc(int(entry["value"]))
            elif kind == "gauge":
                registry.gauge(name).value = _decode_float(entry["value"])
            elif kind == "histogram":
                hist = registry.histogram(name)
                bounds = tuple(_decode_float(b) for b in entry["bounds"])
                if bounds != hist._bounds:
                    # snapshot was taken with a custom ladder
                    hist._bounds = bounds
                    hist._bucket_counts = [0] * len(bounds)
                counts = [int(c) for c in entry["bucket_counts"]]
                if len(counts) != len(hist._bounds):
                    raise ObservabilityError(
                        f"histogram {name!r}: {len(counts)} bucket counts "
                        f"for {len(hist._bounds)} bounds"
                    )
                stats = hist._stats
                stats.count = int(entry["count"])
                stats._mean = _decode_float(entry["mean"])
                stats._m2 = _decode_float(entry["m2"])
                stats.min = _decode_float(entry["min"])
                stats.max = _decode_float(entry["max"])
                hist._bucket_counts = counts
                hist._overflow = int(entry["overflow"])
            else:
                raise ObservabilityError(
                    f"unknown metric kind {kind!r} for {name!r}"
                )
        except ObservabilityError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed telemetry snapshot entry for {name!r}"
            ) from exc
    return registry


def write_telemetry(base: "str | Path", registry: MetricsRegistry) -> "tuple[Path, Path]":
    """Write ``<base>.prom`` and ``<base>.json``; return the two paths."""
    base = Path(base)
    if base.parent and not base.parent.exists():
        base.parent.mkdir(parents=True, exist_ok=True)
    prom_path = base.with_name(base.name + ".prom")
    json_path = base.with_name(base.name + ".json")
    prom_path.write_text(render_openmetrics(registry), encoding="utf-8")
    json_path.write_text(
        json.dumps(snapshot_registry(registry), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return prom_path, json_path
