"""Lightweight metrics registry: counters, gauges, histograms.

The runtime's second observability channel (the first is the event trace):
cheap named aggregates suitable for steady-state monitoring.  Histograms
reuse the Welford accumulator of :class:`repro.utils.stats.RunningStats`,
so mean/variance stay numerically stable over arbitrarily long runs.

Names are dot-separated; a :meth:`MetricsRegistry.scope` returns a view
that prefixes every name, which is how the engine gives its controller a
``controller.*`` namespace without either side knowing about the other's
naming scheme::

    registry = MetricsRegistry()
    engine_metrics = registry.scope("engine")
    engine_metrics.counter("commits").inc(17)   # registry key "engine.commits"

Like the trace recorder, a module-level *active registry* lets the CLI
switch metrics on for code that builds engines internally.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from contextlib import contextmanager

from repro.errors import ObservabilityError
from repro.utils.stats import RunningStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "DEFAULT_BUCKETS",
    "labelled",
    "active_metrics",
    "activate_metrics",
    "deactivate_metrics",
    "collecting_metrics",
]


def labelled(name: str, **labels) -> str:
    """Suffix a metric name with a canonical OpenMetrics label set.

    Registry names are opaque strings, so per-shard (or otherwise
    dimensioned) series are just names carrying their labels inline::

        labelled("shard.launched", shard=2)  ->  'shard.launched{shard="2"}'

    Labels are sorted by key and values are escaped per the OpenMetrics
    text format, so the same label set always produces the same name —
    the property the registry's get-or-create semantics and the export
    layer's grouping both rely on.
    """
    if not labels:
        return str(name)
    parts = []
    for key in sorted(labels):
        if not _LABEL_KEY_OK.match(key):
            raise ObservabilityError(
                f"bad metric label name {key!r} (want [a-zA-Z_][a-zA-Z0-9_]*)"
            )
        value = str(labels[key])
        value = (
            value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        parts.append(f'{key}="{value}"')
    return f"{name}{{{','.join(parts)}}}"


_LABEL_KEY_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _geometric_125_ladder(lo_decade: int, hi_decade: int) -> tuple[float, ...]:
    """1-2-5 bucket bounds spanning ``[10^lo, 10^hi]`` decades."""
    bounds: list[float] = []
    for decade in range(lo_decade, hi_decade + 1):
        scale = 10.0 ** decade
        bounds.extend((1.0 * scale, 2.0 * scale, 5.0 * scale))
    return tuple(bounds)


#: default histogram bucket upper bounds — a 1-2-5 geometric ladder wide
#: enough for conflict ratios (~1e-3..1), allocations (1..1e4) and span
#: latencies in seconds (1e-9..1e3) alike, at ~2.6% worst-case relative
#: quantile error per bucket
DEFAULT_BUCKETS = _geometric_125_ladder(-9, 9)


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ObservabilityError(f"counters only go up; inc({n})")
        self.value += int(n)

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Streaming distribution summary: Welford moments plus fixed buckets.

    The Welford accumulator gives exact streaming mean/std/extremes; the
    fixed geometric bucket ladder adds quantile estimates (p50/p95/p99)
    with bounded relative error, which moments alone cannot provide.
    Bucket bounds are *upper* bounds with cumulative ``le`` semantics, so
    the bucket table exports directly as OpenMetrics ``_bucket{le=...}``
    series (see :mod:`repro.obs.export`).
    """

    __slots__ = ("_stats", "_bounds", "_bucket_counts", "_overflow")

    def __init__(self, buckets: "tuple[float, ...] | None" = None) -> None:
        self._stats = RunningStats()
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                "histogram buckets must be a non-empty strictly increasing sequence"
            )
        self._bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._overflow = 0

    def observe(self, x: float) -> None:
        x = float(x)
        self._stats.push(x)
        i = bisect_left(self._bounds, x)
        if i < len(self._bounds):
            self._bucket_counts[i] += 1
        else:
            self._overflow += 1

    @property
    def count(self) -> int:
        return self._stats.count

    @property
    def mean(self) -> float:
        return self._stats.mean

    @property
    def std(self) -> float:
        return self._stats.std

    @property
    def min(self) -> float:
        return self._stats.min

    @property
    def max(self) -> float:
        return self._stats.max

    def buckets(self) -> "list[tuple[float, int]]":
        """Non-empty ``(upper_bound, count)`` pairs, plus ``(inf, n)`` overflow."""
        out = [
            (bound, n)
            for bound, n in zip(self._bounds, self._bucket_counts)
            if n
        ]
        if self._overflow:
            out.append((math.inf, self._overflow))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket table.

        Linear interpolation within the containing bucket, clamped to
        the exact observed ``[min, max]``; NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        n = self._stats.count
        if n == 0:
            return math.nan
        target = q * n
        cumulative = 0
        lower = self._stats.min
        for bound, count in zip(self._bounds, self._bucket_counts):
            if count:
                cumulative += count
                if cumulative >= target:
                    frac = 1.0 - (cumulative - target) / count
                    est = lower + frac * (bound - lower)
                    return min(max(est, self._stats.min), self._stats.max)
            lower = max(lower, bound)
        return self._stats.max  # target falls in the overflow bucket

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.6g})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named metrics.

    A name is permanently bound to its first-requested kind; asking for
    the same name as a different kind raises, which catches the classic
    "two subsystems disagree about engine.aborts" bug early.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str):
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, _KINDS[kind]):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__.lower()}, requested as {kind}"
                )
            return existing
        metric = _KINDS[kind]()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def scope(self, prefix: str) -> "MetricsScope":
        """A view that prefixes every metric name with ``prefix.``."""
        return MetricsScope(self, prefix)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, object]:
        """Plain-data dump: counters/gauges to numbers, histograms to dicts."""
        out: dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "std": metric.std,
                    "min": metric.min,
                    "max": metric.max,
                    "p50": metric.quantile(0.50),
                    "p95": metric.quantile(0.95),
                    "p99": metric.quantile(0.99),
                }
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def render(self) -> str:
        """Readable multi-line report, names sorted."""
        lines = ["metrics:"]
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    f"  {name}: n={metric.count} mean={metric.mean:.6g} "
                    f"std={metric.std:.6g} min={metric.min:.6g} max={metric.max:.6g} "
                    f"p50={metric.quantile(0.5):.6g} p95={metric.quantile(0.95):.6g}"
                )
            elif isinstance(metric, Counter):
                lines.append(f"  {name}: {metric.value}")
            else:
                lines.append(f"  {name}: {metric.value:.6g}")
        return "\n".join(lines)


class MetricsScope:
    """Prefixing proxy over a :class:`MetricsRegistry` (or another scope)."""

    def __init__(self, registry: "MetricsRegistry | MetricsScope", prefix: str):
        if not prefix:
            raise ObservabilityError("scope prefix must be non-empty")
        self._registry = registry
        self._prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._qualify(name))

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._qualify(name))

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self, prefix)


# ----------------------------------------------------------------------
# active-registry plumbing (mirrors repro.obs.recorder)
# ----------------------------------------------------------------------
_active: "MetricsRegistry | None" = None


def active_metrics() -> "MetricsRegistry | None":
    """The registry engines should report into, or ``None`` when disabled."""
    return _active


def activate_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    global _active
    if not isinstance(registry, MetricsRegistry):
        raise ObservabilityError(
            f"can only activate a MetricsRegistry, got {type(registry).__name__}"
        )
    _active = registry
    return registry


def deactivate_metrics() -> None:
    global _active
    _active = None


@contextmanager
def collecting_metrics():
    """Context manager: activate a fresh registry, yield it."""
    global _active
    registry = MetricsRegistry()
    previous = _active
    activate_metrics(registry)
    try:
        yield registry
    finally:
        _active = previous
