"""Lightweight metrics registry: counters, gauges, histograms.

The runtime's second observability channel (the first is the event trace):
cheap named aggregates suitable for steady-state monitoring.  Histograms
reuse the Welford accumulator of :class:`repro.utils.stats.RunningStats`,
so mean/variance stay numerically stable over arbitrarily long runs.

Names are dot-separated; a :meth:`MetricsRegistry.scope` returns a view
that prefixes every name, which is how the engine gives its controller a
``controller.*`` namespace without either side knowing about the other's
naming scheme::

    registry = MetricsRegistry()
    engine_metrics = registry.scope("engine")
    engine_metrics.counter("commits").inc(17)   # registry key "engine.commits"

Like the trace recorder, a module-level *active registry* lets the CLI
switch metrics on for code that builds engines internally.
"""

from __future__ import annotations

import math
from contextlib import contextmanager

from repro.errors import ObservabilityError
from repro.utils.stats import RunningStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "active_metrics",
    "activate_metrics",
    "deactivate_metrics",
    "collecting_metrics",
]


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ObservabilityError(f"counters only go up; inc({n})")
        self.value += int(n)

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Streaming distribution summary (Welford moments + extremes)."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats = RunningStats()

    def observe(self, x: float) -> None:
        self._stats.push(float(x))

    @property
    def count(self) -> int:
        return self._stats.count

    @property
    def mean(self) -> float:
        return self._stats.mean

    @property
    def std(self) -> float:
        return self._stats.std

    @property
    def min(self) -> float:
        return self._stats.min

    @property
    def max(self) -> float:
        return self._stats.max

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.6g})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named metrics.

    A name is permanently bound to its first-requested kind; asking for
    the same name as a different kind raises, which catches the classic
    "two subsystems disagree about engine.aborts" bug early.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str):
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, _KINDS[kind]):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__.lower()}, requested as {kind}"
                )
            return existing
        metric = _KINDS[kind]()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def scope(self, prefix: str) -> "MetricsScope":
        """A view that prefixes every metric name with ``prefix.``."""
        return MetricsScope(self, prefix)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, object]:
        """Plain-data dump: counters/gauges to numbers, histograms to dicts."""
        out: dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "std": metric.std,
                    "min": metric.min,
                    "max": metric.max,
                }
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def render(self) -> str:
        """Readable multi-line report, names sorted."""
        lines = ["metrics:"]
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    f"  {name}: n={metric.count} mean={metric.mean:.6g} "
                    f"std={metric.std:.6g} min={metric.min:.6g} max={metric.max:.6g}"
                )
            elif isinstance(metric, Counter):
                lines.append(f"  {name}: {metric.value}")
            else:
                lines.append(f"  {name}: {metric.value:.6g}")
        return "\n".join(lines)


class MetricsScope:
    """Prefixing proxy over a :class:`MetricsRegistry` (or another scope)."""

    def __init__(self, registry: "MetricsRegistry | MetricsScope", prefix: str):
        if not prefix:
            raise ObservabilityError("scope prefix must be non-empty")
        self._registry = registry
        self._prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._qualify(name))

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._qualify(name))

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self, prefix)


# ----------------------------------------------------------------------
# active-registry plumbing (mirrors repro.obs.recorder)
# ----------------------------------------------------------------------
_active: "MetricsRegistry | None" = None


def active_metrics() -> "MetricsRegistry | None":
    """The registry engines should report into, or ``None`` when disabled."""
    return _active


def activate_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    global _active
    if not isinstance(registry, MetricsRegistry):
        raise ObservabilityError(
            f"can only activate a MetricsRegistry, got {type(registry).__name__}"
        )
    _active = registry
    return registry


def deactivate_metrics() -> None:
    global _active
    _active = None


@contextmanager
def collecting_metrics():
    """Context manager: activate a fresh registry, yield it."""
    global _active
    registry = MetricsRegistry()
    previous = _active
    activate_metrics(registry)
    try:
        yield registry
    finally:
        _active = previous
