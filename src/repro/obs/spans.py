"""Timed hierarchical spans — the third observability channel.

Traces say *what* the runtime did, metrics say *how much*; spans say
*where the time went*.  A :class:`SpanProfiler` aggregates
``perf_counter_ns`` timings per span *path* — the stack of span names
open when the timing was taken — so one engine run yields a tree like::

    step                      300x   412.8 ms
      controller.decide       300x     1.9 ms
      select                  300x     8.4 ms
      resolve                 300x   231.0 ms
        kernel.commit_from_slots 300x 204.7 ms
      commit                  300x   166.2 ms
      controller.update       300x     2.1 ms

Design points, mirroring the recorder/metrics activation pattern:

* a module-level *active profiler* (:func:`active_profiler`,
  :func:`profiling`) lets the CLI switch span collection on for engines
  built deep inside an experiment;
* the **disabled path is near-zero**: engines hold a ``None`` profiler
  handle and enter a shared stateless no-op context manager
  (:data:`NULL_SPAN`), costing one attribute test per phase;
* spans aggregate in place (count / total / min / max per path) instead
  of recording individual events, so profiling a million steps costs a
  dict update per span, not memory proportional to the run;
* optional **1-in-N step sampling** (``sample_every``): a sampled-out
  step span suppresses itself *and every span nested inside it*, scaling
  the already-small overhead down arbitrarily;
* a span is closed in ``finally`` semantics — an operator that raises
  mid-step still gets its time attributed to the right path;
* :meth:`SpanProfiler.snapshot` is a plain JSON-able dict that survives
  a worker pipe, and :meth:`SpanProfiler.merge` folds such payloads into
  the supervisor's profiler (how the parallel sweep harness aggregates
  per-attempt spans across processes).

Span names may contain dots (``controller.decide``); ``/`` is reserved
as the path separator in snapshots and renders.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.errors import ObservabilityError

__all__ = [
    "SpanStat",
    "SpanProfiler",
    "NULL_SPAN",
    "active_profiler",
    "activate_profiler",
    "deactivate_profiler",
    "profiling",
]

#: snapshot payload layout version (bump on incompatible change)
SNAPSHOT_SCHEMA = 1


class _NullSpan:
    """Shared stateless no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False

    def __repr__(self) -> str:  # stable repr: docs are generated from it
        return "NULL_SPAN"


#: the one no-op span everyone shares; reentrant and reusable
NULL_SPAN = _NullSpan()


class SpanStat:
    """Aggregated timings of one span path."""

    __slots__ = ("count", "total_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.min_ns = 0
        self.max_ns = 0

    def add(self, elapsed_ns: int, count: int = 1) -> None:
        if self.count == 0:
            self.min_ns = self.max_ns = elapsed_ns
        else:
            # merged payloads carry per-call extremes, live spans per-call
            # durations; either way min/max stay per-call bounds
            if elapsed_ns < self.min_ns:
                self.min_ns = elapsed_ns
            if elapsed_ns > self.max_ns:
                self.max_ns = elapsed_ns
        self.count += count
        self.total_ns += elapsed_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    @property
    def total_s(self) -> float:
        return self.total_ns * 1e-9

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }

    def __repr__(self) -> str:
        return f"SpanStat(count={self.count}, total_ns={self.total_ns})"


class _Span:
    """One live timed span; created and entered by :meth:`SpanProfiler.span`."""

    __slots__ = ("_prof", "_name", "_start")

    def __init__(self, prof: "SpanProfiler", name: str):
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_Span":
        prof = self._prof
        prof._path = prof._path + (self._name,)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        # runs on exceptions too: a failing task body still closes its
        # span and the time it burned is attributed where it was spent
        elapsed = time.perf_counter_ns() - self._start
        prof = self._prof
        prof._record(prof._path, elapsed)
        prof._path = prof._path[:-1]
        return False


class _SuppressedSpan:
    """A sampled-out span: silences itself and everything nested inside."""

    __slots__ = ("_prof",)

    def __init__(self, prof: "SpanProfiler"):
        self._prof = prof

    def __enter__(self) -> None:
        self._prof._suppress += 1
        return None

    def __exit__(self, *exc: object) -> bool:
        self._prof._suppress -= 1
        return False


class SpanProfiler:
    """Hierarchical span aggregator keyed by span path.

    ``sample_every=N`` records only every N-th *step* span (see
    :meth:`step_span`); plain :meth:`span` calls are always recorded
    unless nested inside a sampled-out step.
    """

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ObservabilityError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = int(sample_every)
        self._stats: dict[tuple[str, ...], SpanStat] = {}
        self._path: tuple[str, ...] = ()
        self._suppress = 0

    # -- recording ------------------------------------------------------
    def _record(self, path: tuple[str, ...], elapsed_ns: int) -> None:
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = SpanStat()
        stat.add(elapsed_ns)

    def span(self, name: str):
        """Context manager timing one ``name`` span under the open path."""
        if self._suppress:
            return NULL_SPAN
        if not name or "/" in name:
            raise ObservabilityError(
                f"span name must be non-empty and '/'-free, got {name!r}"
            )
        return _Span(self, name)

    def step_span(self, step: int):
        """The engine's per-step root span, honouring ``sample_every``.

        A sampled-out step returns a suppressing context manager, so
        every span the engine (or operator code) opens inside that step
        is a no-op too — the whole step costs one modulo test.
        """
        if self._suppress or (step % self.sample_every):
            return _SuppressedSpan(self)
        return _Span(self, "step")

    def add(self, path: "str | tuple[str, ...]", elapsed_ns: int, count: int = 1) -> None:
        """Credit an externally measured duration to *path*.

        For callers that time work without opening a live span — e.g.
        the sweep supervisor attributing a worker attempt's wall clock.
        """
        key = tuple(path.split("/")) if isinstance(path, str) else tuple(path)
        if not key or any(not part or "/" in part for part in key):
            raise ObservabilityError(f"invalid span path {path!r}")
        stat = self._stats.get(key)
        if stat is None:
            stat = self._stats[key] = SpanStat()
        stat.add(int(elapsed_ns), count=int(count))

    # -- introspection --------------------------------------------------
    def stats(self) -> dict[str, SpanStat]:
        """``{"a/b/c": SpanStat}`` view, sorted by path."""
        return {
            "/".join(path): stat
            for path, stat in sorted(self._stats.items())
        }

    def total_ns(self, path: "str | tuple[str, ...]") -> int:
        """Total nanoseconds recorded under one exact path (0 if absent)."""
        key = tuple(path.split("/")) if isinstance(path, str) else tuple(path)
        stat = self._stats.get(key)
        return 0 if stat is None else stat.total_ns

    def __len__(self) -> int:
        return len(self._stats)

    def __bool__(self) -> bool:  # an empty profiler is still "on"
        return True

    def __repr__(self) -> str:
        return (
            f"SpanProfiler(paths={len(self._stats)}, "
            f"sample_every={self.sample_every})"
        )

    # -- serialisation / merge -----------------------------------------
    def snapshot(self) -> dict:
        """Plain JSON-able dump: schema tag plus per-path aggregates.

        Paths are ``/``-joined and sorted, so the snapshot is
        deterministic and diffable like the metrics snapshot.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "sample_every": self.sample_every,
            "spans": {
                "/".join(path): stat.as_dict()
                for path, stat in sorted(self._stats.items())
            },
        }

    def merge(self, snapshot: dict, prefix: "tuple[str, ...] | str" = ()) -> None:
        """Fold a :meth:`snapshot` payload into this profiler.

        The sweep supervisor calls this with each worker's shipped span
        payload; *prefix* re-roots the merged paths (e.g. under
        ``("sweep.worker",)``) so cross-process time is distinguishable
        from spans measured in this process.
        """
        if not isinstance(snapshot, dict) or "spans" not in snapshot:
            raise ObservabilityError("span snapshot has no 'spans' table")
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ObservabilityError(
                f"span snapshot schema {snapshot.get('schema')!r} != {SNAPSHOT_SCHEMA}"
            )
        root = tuple(prefix.split("/")) if isinstance(prefix, str) else tuple(prefix)
        for joined, entry in snapshot["spans"].items():
            path = root + tuple(joined.split("/"))
            try:
                count = int(entry["count"])
                total = int(entry["total_ns"])
                lo = int(entry["min_ns"])
                hi = int(entry["max_ns"])
            except (TypeError, KeyError, ValueError) as exc:
                raise ObservabilityError(
                    f"malformed span snapshot entry for {joined!r}"
                ) from exc
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = SpanStat()
            if stat.count == 0:
                stat.min_ns, stat.max_ns = lo, hi
            else:
                stat.min_ns = min(stat.min_ns, lo)
                stat.max_ns = max(stat.max_ns, hi)
            stat.count += count
            stat.total_ns += total

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        """Readable span tree with per-path count/total/mean and share.

        The share column is the fraction of the *parent's* total; roots
        show their share of the sum over all roots.
        """
        if not self._stats:
            return "spans: (none recorded)"
        items = sorted(self._stats.items())
        roots_total = sum(
            stat.total_ns for path, stat in items if len(path) == 1
        )
        lines = ["spans:"]
        for path, stat in items:
            if len(path) == 1:
                parent_total = roots_total
            else:
                parent = self._stats.get(path[:-1])
                parent_total = parent.total_ns if parent is not None else 0
            share = stat.total_ns / parent_total if parent_total else 0.0
            indent = "  " * len(path)
            lines.append(
                f"{indent}{path[-1]}: {stat.count}x "
                f"total={stat.total_ns / 1e6:.3f}ms "
                f"mean={stat.mean_ns / 1e3:.3f}us "
                f"({share:.1%})"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# active-profiler plumbing (mirrors repro.obs.recorder / .metrics)
# ----------------------------------------------------------------------
_active: "SpanProfiler | None" = None


def active_profiler() -> "SpanProfiler | None":
    """The profiler engines should attach to, or ``None`` when disabled."""
    return _active


def activate_profiler(profiler: SpanProfiler) -> SpanProfiler:
    global _active
    if not isinstance(profiler, SpanProfiler):
        raise ObservabilityError(
            f"can only activate a SpanProfiler, got {type(profiler).__name__}"
        )
    _active = profiler
    return profiler


def deactivate_profiler() -> None:
    global _active
    _active = None


@contextmanager
def profiling(sample_every: int = 1):
    """Context manager: activate a fresh profiler, yield it."""
    global _active
    profiler = SpanProfiler(sample_every=sample_every)
    previous = _active
    activate_profiler(profiler)
    try:
        yield profiler
    finally:
        _active = previous
