"""Deterministic replay of recorded runs.

A trace (see :mod:`repro.obs.events`) carries everything needed to
reconstruct a controller's decision trajectory *without* re-running the
workload: the ``run_start`` event stores the controller's full
configuration, and each ``step`` event stores the observation
``(r_t, launched_t)`` the controller ingested.  Feeding those recorded
observations into a freshly built controller must reproduce the recorded
``m_t`` sequence exactly — controllers are pure functions of their
observation history.  :func:`verify_trace` checks precisely this, and is
the golden-trace regression primitive of the test suite.

When the trace also records an integer seed, the *entire engine run* can
be reproduced: rebuild the same workload, pass the same seed, and either
the reconstructed controller or a :class:`ReplayController` (which simply
replays the recorded ``m_t``) drives the engine through the identical
``(m_t, r_t)`` trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.base import Controller
from repro.errors import ObservabilityError, ReplayMismatchError
from repro.obs.events import DECISION, RUN_START, SELECT, STEP, TraceEvent

__all__ = [
    "split_runs",
    "trajectory",
    "recorded_seed",
    "controller_from_config",
    "controller_from_trace",
    "register_controller_builder",
    "ReplayReport",
    "replay_decisions",
    "verify_trace",
    "ReplayController",
]


def split_runs(events: "list[TraceEvent]") -> list[list[TraceEvent]]:
    """Split a trace into per-run segments at each ``run_start``.

    Events before the first ``run_start`` (possible when the recorder's
    ring buffer overflowed and dropped the head) are discarded — a
    truncated run cannot be replayed from its middle.
    """
    segments: list[list[TraceEvent]] = []
    current: "list[TraceEvent] | None" = None
    for event in events:
        if event.kind == RUN_START:
            current = [event]
            segments.append(current)
        elif current is not None:
            current.append(event)
    return segments


def trajectory(events: "list[TraceEvent]") -> tuple[np.ndarray, np.ndarray]:
    """Extract ``(m_t, r_t)`` from the ``step`` events of one segment."""
    ms, rs = [], []
    for event in events:
        if event.kind == STEP:
            ms.append(int(event.data["requested"]))
            rs.append(float(event.data["conflict_ratio"]))
    return np.asarray(ms, dtype=np.int64), np.asarray(rs, dtype=float)


def recorded_seed(events: "list[TraceEvent]") -> "int | None":
    """The engine seed stored in the segment's ``run_start`` (or None)."""
    for event in events:
        if event.kind == RUN_START:
            seed = event.get("seed")
            return None if seed is None else int(seed)
    return None


# ----------------------------------------------------------------------
# controller reconstruction
# ----------------------------------------------------------------------
def _hybrid_params(cfg: "dict | None"):
    from repro.control.hybrid import HybridParams

    return None if cfg is None else HybridParams(**cfg)


def _build_hybrid(cfg: dict) -> Controller:
    from repro.control.hybrid import HybridController

    return HybridController(
        cfg["rho"],
        m0=cfg["m0"],
        m_min=cfg["m_min"],
        m_max=cfg["m_max"],
        params=_hybrid_params(cfg.get("params")),
        small_params=_hybrid_params(cfg.get("small_params")),
        small_m_threshold=cfg.get("small_m_threshold", 20),
    )


def _build_probing(cfg: dict) -> Controller:
    from repro.control.probing import ProbingHybridController

    return ProbingHybridController(
        cfg["rho"],
        cfg["n"],
        # only the product probe_windows x probe_window_steps matters
        probe_windows=cfg["probe_steps"],
        probe_window_steps=1,
        d_min=cfg["d_min"],
        m_min=cfg["m_min"],
        m_max=cfg["m_max"],
        params=_hybrid_params(cfg.get("params")),
    )


def _build_fixed(cfg: dict) -> Controller:
    from repro.control.fixed import FixedController

    return FixedController(cfg["m"])


def _build_oracle(cfg: dict) -> Controller:
    from repro.control.oracle import OracleController

    return OracleController(cfg["mu"], m_min=cfg["m_min"], m_max=cfg["m_max"])


def _kwargs_builder(import_path: str):
    def build(cfg: dict) -> Controller:
        module_name, _, class_name = import_path.rpartition(".")
        module = __import__(module_name, fromlist=[class_name])
        return getattr(module, class_name)(**cfg)

    return build


_BUILDERS = {
    "HybridController": _build_hybrid,
    "ProbingHybridController": _build_probing,
    "FixedController": _build_fixed,
    "OracleController": _build_oracle,
    "RecurrenceAController": _kwargs_builder("repro.control.recurrence.RecurrenceAController"),
    "RecurrenceBController": _kwargs_builder("repro.control.recurrence.RecurrenceBController"),
    "AIMDController": _kwargs_builder("repro.control.aimd.AIMDController"),
    "PIController": _kwargs_builder("repro.control.pid.PIController"),
    "AStealController": _kwargs_builder("repro.control.asteal.AStealController"),
    "BisectionController": _kwargs_builder("repro.control.bisection.BisectionController"),
    "NoiseAdaptiveHybridController": _kwargs_builder(
        "repro.control.adaptive.NoiseAdaptiveHybridController"
    ),
}


def register_controller_builder(name: str, builder) -> None:
    """Register a replay builder for a controller type defined upstack.

    The built-in table covers :mod:`repro.control`; controllers that live
    in higher layers (experiments, applications) register themselves here
    at import time so their recorded runs stay replay-verifiable.
    *builder* receives the ``run_start`` controller config (minus the
    ``type`` key) and returns a fresh controller.  Re-registering a name
    replaces the previous builder.
    """
    _BUILDERS[str(name)] = builder


def controller_from_config(config: dict) -> Controller:
    """Rebuild a controller from a :meth:`Controller.describe` dict."""
    if "type" not in config:
        raise ObservabilityError("controller config has no 'type' field")
    cfg = dict(config)
    kind = cfg.pop("type")
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise ObservabilityError(
            f"no replay builder registered for controller type {kind!r}"
        )
    return builder(cfg)


def controller_from_trace(events: "list[TraceEvent]") -> Controller:
    """Rebuild the controller recorded in one segment's ``run_start``."""
    for event in events:
        if event.kind == RUN_START:
            config = event.get("controller")
            if not isinstance(config, dict):
                raise ObservabilityError("run_start has no controller config")
            return controller_from_config(config)
    raise ObservabilityError("trace segment has no run_start event")


# ----------------------------------------------------------------------
# decision replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one run segment's decision trajectory."""

    controller_type: str
    steps: int
    m_recorded: np.ndarray
    m_replayed: np.ndarray
    r_recorded: np.ndarray
    decisions: int

    @property
    def matches(self) -> bool:
        return bool(np.array_equal(self.m_recorded, self.m_replayed))

    def first_divergence(self) -> int:
        """Index of the first mismatching step (-1 when identical)."""
        if self.matches:
            return -1
        limit = min(len(self.m_recorded), len(self.m_replayed))
        diff = np.nonzero(self.m_recorded[:limit] != self.m_replayed[:limit])[0]
        return int(diff[0]) if diff.size else limit


def replay_decisions(
    events: "list[TraceEvent]", controller: "Controller | None" = None
) -> ReplayReport:
    """Re-derive ``m_t`` by feeding recorded observations to a controller.

    With no *controller* given, one is reconstructed from the segment's
    ``run_start`` configuration.  The replayed proposals are compared
    against the recorded ones in the returned report; use
    :func:`verify_trace` to turn a mismatch into an exception.
    """
    if controller is None:
        controller = controller_from_trace(events)
        # controllers that consumed runtime-side state during the live run
        # (e.g. per-shard statistics) re-source it from the segment's own
        # events instead — the trace is the complete observation record
        binder = getattr(controller, "bind_replay_segment", None)
        if binder is not None:
            binder(events)
    config = None
    for event in events:
        if event.kind == RUN_START:
            config = event.get("controller", {})
            break
    m_recorded, r_recorded = trajectory(events)
    launched = [
        int(e.data["launched"]) for e in events if e.kind == STEP
    ]
    decisions = sum(1 for e in events if e.kind == DECISION)
    m_replayed = []
    for r, n in zip(r_recorded, launched):
        m_replayed.append(controller.propose())
        controller.observe(float(r), n)
    kind = (config or {}).get("type", type(controller).__name__)
    return ReplayReport(
        controller_type=str(kind),
        steps=len(m_recorded),
        m_recorded=m_recorded,
        m_replayed=np.asarray(m_replayed, dtype=np.int64),
        r_recorded=r_recorded,
        decisions=decisions,
    )


def verify_trace(events: "list[TraceEvent]") -> list[ReplayReport]:
    """Replay every run segment of a trace; raise on any divergence.

    Returns one :class:`ReplayReport` per segment.  Segments whose
    controller type has no registered builder raise
    :class:`~repro.errors.ObservabilityError`; a reproduced-but-different
    trajectory raises :class:`~repro.errors.ReplayMismatchError` naming
    the first diverging step.
    """
    reports = []
    for index, segment in enumerate(split_runs(events)):
        report = replay_decisions(segment)
        if not report.matches:
            t = report.first_divergence()
            rec = report.m_recorded[t] if t < len(report.m_recorded) else "<end>"
            rep = report.m_replayed[t] if t < len(report.m_replayed) else "<end>"
            raise ReplayMismatchError(
                f"run {index} ({report.controller_type}): replay diverged at "
                f"step {t}: recorded m={rec}, replayed m={rep}"
            )
        reports.append(report)
    return reports


class ReplayController(Controller):
    """Drives an engine through a pre-recorded allocation sequence.

    Useful for post-hoc diagnostics: replaying the recorded ``m_t``
    against the rebuilt workload (same seed) reproduces the full
    ``r_t`` trajectory, after which any instrumentation — CC-graph
    snapshots, cost models, alternative metrics — can be attached to a
    run that is *guaranteed* to be the one observed in production.
    """

    def __init__(self, m_sequence) -> None:
        super().__init__()
        self._sequence = [int(m) for m in m_sequence]
        if not self._sequence:
            raise ObservabilityError("replay needs a non-empty m sequence")
        if min(self._sequence) < 1:
            raise ObservabilityError("recorded allocations must all be >= 1")
        self._cursor = 0

    @classmethod
    def from_trace(cls, events: "list[TraceEvent]") -> "ReplayController":
        """Build from the ``select``/``step`` events of one segment."""
        ms = [int(e.data["requested"]) for e in events if e.kind == SELECT]
        if not ms:  # select events may be filtered out; fall back to steps
            ms = trajectory(events)[0].tolist()
        return cls(ms)

    def _next_m(self) -> int:
        if self._cursor >= len(self._sequence):
            raise ReplayMismatchError(
                f"replay exhausted after {len(self._sequence)} recorded steps"
            )
        m = self._sequence[self._cursor]
        self._cursor += 1
        return m

    def _do_reset(self) -> None:
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return len(self._sequence) - self._cursor

    def describe(self) -> dict:
        return {"type": "ReplayController", "steps": len(self._sequence)}
