"""Analysis over the three observability channels.

Three consumers, one per channel:

* :func:`profile_report` — critical-path and overhead attribution from a
  :class:`~repro.obs.spans.SpanProfiler`: per-phase share of the step
  wall-clock, unattributed self-time, and the phase coverage fraction
  (how much of each step the instrumented phases explain — the
  acceptance gate wants ≥95%).
* :func:`convergence_report` — controller dynamics from a recorded
  trace: settling time into the ``|r̄ − ρ| ≤ ε`` band, steady-state
  tracking error, and decision/clamp counts.  Pure function of the
  events, so golden traces give bit-stable reports.
* :class:`SweepProgress` — a periodic one-line live status for running
  sweeps (completed/retried/quarantined, EWMA attempt latency, ETA),
  with injectable clock and sink so tests never sleep.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass, field

from repro.errors import ObservabilityError
from repro.obs.events import (
    CLAMP,
    DECISION,
    RUN_START,
    STEP,
    SWEEP_TASK_COMPLETE,
    SWEEP_TASK_FAILED,
    SWEEP_TASK_QUARANTINED,
    SWEEP_TASK_RETRY,
    TraceEvent,
)
from repro.obs.spans import SpanProfiler

__all__ = [
    "PhaseBreakdown",
    "ProfileReport",
    "profile_report",
    "ConvergenceReport",
    "convergence_report",
    "SweepProgress",
]


# ----------------------------------------------------------------------
# span-based profiling report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseBreakdown:
    """One direct child phase of the profiled root span."""

    name: str
    count: int
    total_ns: int
    share: float  # fraction of the root's total


@dataclass(frozen=True)
class ProfileReport:
    """Where the step wall-clock went, per the span profiler."""

    root: str
    steps: int
    wall_ns: int
    phases: tuple[PhaseBreakdown, ...]  # sorted by total desc
    self_ns: int  # root time not inside any direct child

    @property
    def coverage(self) -> float:
        """Fraction of root wall-clock attributed to the phases."""
        if not self.wall_ns:
            return 0.0
        return sum(p.total_ns for p in self.phases) / self.wall_ns

    @property
    def critical_phase(self) -> "str | None":
        """The phase eating the most time — where optimisation pays."""
        return self.phases[0].name if self.phases else None

    def render(self) -> str:
        lines = [
            f"profile: {self.steps}x {self.root}, "
            f"wall={self.wall_ns / 1e6:.3f}ms, "
            f"phase coverage {self.coverage:.1%}"
        ]
        for p in self.phases:
            lines.append(
                f"  {p.name}: {p.count}x total={p.total_ns / 1e6:.3f}ms "
                f"({p.share:.1%})"
            )
        lines.append(f"  (self): total={self.self_ns / 1e6:.3f}ms")
        return "\n".join(lines)


def profile_report(profiler: SpanProfiler, root: str = "step") -> ProfileReport:
    """Attribute the *root* span's wall-clock to its direct children.

    Deeper descendants (e.g. ``step/resolve/kernel.*``) are already
    counted inside their parent phase and are not double-counted here.
    """
    if not isinstance(profiler, SpanProfiler):
        raise ObservabilityError(
            f"profile_report needs a SpanProfiler, got {type(profiler).__name__}"
        )
    root_key = tuple(root.split("/"))
    stats = profiler._stats  # read-only walk over the aggregate table
    root_stat = stats.get(root_key)
    if root_stat is None:
        raise ObservabilityError(
            f"no {root!r} spans recorded — was the profiler active during the run?"
        )
    depth = len(root_key) + 1
    children = [
        (path[-1], stat)
        for path, stat in stats.items()
        if len(path) == depth and path[:-1] == root_key
    ]
    children.sort(key=lambda item: (-item[1].total_ns, item[0]))
    wall = root_stat.total_ns
    phases = tuple(
        PhaseBreakdown(
            name=name,
            count=stat.count,
            total_ns=stat.total_ns,
            share=stat.total_ns / wall if wall else 0.0,
        )
        for name, stat in children
    )
    return ProfileReport(
        root=root,
        steps=root_stat.count,
        wall_ns=wall,
        phases=phases,
        self_ns=wall - sum(p.total_ns for p in phases),
    )


# ----------------------------------------------------------------------
# controller convergence report from trace events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConvergenceReport:
    """Controller tracking quality extracted from one recorded run.

    ``settling_step`` is the earliest step from which the windowed
    conflict ratio stays inside the ``|r̄ − ρ| ≤ ε`` band for the rest
    of the run (``None`` if it never settles); ``tracking_error`` is the
    RMS of ``r̄ − ρ`` over the settled suffix (over the final half of
    the run when unsettled, so a diverging controller still reports a
    number instead of nothing).
    """

    rho: float
    epsilon: float
    window: int
    steps: int
    settling_step: "int | None"
    tracking_error: float
    decisions: int
    decisions_by_rule: dict[str, int] = field(default_factory=dict)
    clamps: int = 0

    @property
    def settled(self) -> bool:
        return self.settling_step is not None

    def render(self) -> str:
        settle = (
            f"settled at step {self.settling_step}"
            if self.settled
            else "never settled"
        )
        rules = ", ".join(
            f"{rule}={count}"
            for rule, count in sorted(self.decisions_by_rule.items())
        )
        return (
            f"convergence: rho={self.rho:g} eps={self.epsilon:g} "
            f"window={self.window} steps={self.steps}\n"
            f"  {settle} (|r̄-rho| <= {self.epsilon:g} band)\n"
            f"  steady-state tracking error (RMS): {self.tracking_error:.4f}\n"
            f"  decisions: {self.decisions} ({rules or 'none'}), "
            f"clamps: {self.clamps}"
        )


def convergence_report(
    events: "list[TraceEvent]",
    *,
    rho: "float | None" = None,
    epsilon: float = 0.05,
    window: int = 8,
) -> ConvergenceReport:
    """Build a :class:`ConvergenceReport` from one run's trace events.

    ``r̄_t`` is the launch-weighted conflict ratio over the trailing
    *window* steps (total aborts / total launches), the same windowed
    statistic the paper's controller reasons about.  ``rho`` defaults to
    the target recorded in the run's ``run_start`` controller config.
    """
    if window < 1:
        raise ObservabilityError(f"window must be >= 1, got {window}")
    if epsilon <= 0:
        raise ObservabilityError(f"epsilon must be > 0, got {epsilon}")
    steps: list[TraceEvent] = []
    decisions_by_rule: dict[str, int] = {}
    clamps = 0
    seen_run_start = False
    for event in events:
        if event.kind == RUN_START:
            if seen_run_start:
                break  # report covers the first recorded run only
            seen_run_start = True
            if rho is None:
                controller = event.get("controller") or {}
                rho = controller.get("rho")
        elif event.kind == STEP:
            steps.append(event)
        elif event.kind == DECISION:
            rule = str(event.get("rule", "unknown"))
            decisions_by_rule[rule] = decisions_by_rule.get(rule, 0) + 1
        elif event.kind == CLAMP:
            clamps += 1
    if rho is None:
        raise ObservabilityError(
            "no rho target: trace has no run_start controller config "
            "with a 'rho' field and none was passed explicitly"
        )
    rho = float(rho)
    if not steps:
        raise ObservabilityError("trace contains no step events")

    aborted = [int(e.get("aborted", 0)) for e in steps]
    launched = [int(e.get("launched", 0)) for e in steps]
    n = len(steps)
    r_bar: list[float] = []
    for t in range(n):
        lo = max(0, t - window + 1)
        launches = sum(launched[lo : t + 1])
        r_bar.append(sum(aborted[lo : t + 1]) / launches if launches else 0.0)

    in_band = [abs(r - rho) <= epsilon for r in r_bar]
    settling_step = None
    # earliest suffix start where the trajectory never leaves the band
    for t in range(n - 1, -1, -1):
        if in_band[t]:
            settling_step = t
        else:
            break
    if settling_step is not None:
        settling_step = int(steps[settling_step].step)
        tail = [r for e, r in zip(steps, r_bar) if e.step >= settling_step]
    else:
        tail = r_bar[n // 2 :]
    tracking_error = math.sqrt(
        sum((r - rho) ** 2 for r in tail) / len(tail)
    )
    return ConvergenceReport(
        rho=rho,
        epsilon=epsilon,
        window=window,
        steps=n,
        settling_step=settling_step,
        tracking_error=tracking_error,
        decisions=sum(decisions_by_rule.values()),
        decisions_by_rule=decisions_by_rule,
        clamps=clamps,
    )


# ----------------------------------------------------------------------
# live sweep monitor
# ----------------------------------------------------------------------
class SweepProgress:
    """Periodic one-line status for a running sweep.

    Feed it the sweep's lifecycle events (:meth:`on_event`) and attempt
    latencies (:meth:`note_attempt_seconds`); it rate-limits itself to
    one line per *interval* seconds on *sink*.  Clock and sink are
    injectable so tests drive it deterministically without sleeping.
    """

    #: EWMA smoothing factor for attempt latency
    ALPHA = 0.3

    def __init__(
        self,
        total: int,
        *,
        jobs: int = 1,
        interval: float = 5.0,
        sink=None,
        clock=None,
    ) -> None:
        if total < 0:
            raise ObservabilityError(f"total must be >= 0, got {total}")
        if interval < 0:
            raise ObservabilityError(f"interval must be >= 0, got {interval}")
        self.total = int(total)
        self.jobs = max(1, int(jobs))
        self.interval = float(interval)
        self._sink = sink if sink is not None else _stderr_sink
        self._clock = clock if clock is not None else time.monotonic
        self.completed = 0
        self.retried = 0
        self.quarantined = 0
        self.failures = 0
        self.ewma_attempt_seconds: "float | None" = None
        self._last_emit: "float | None" = None

    # -- feeding -------------------------------------------------------
    def on_event(self, kind: str, data: "dict | None" = None) -> None:
        """Count one sweep lifecycle event (unknown kinds are ignored)."""
        if kind == SWEEP_TASK_COMPLETE:
            self.completed += 1
        elif kind == SWEEP_TASK_RETRY:
            self.retried += 1
        elif kind == SWEEP_TASK_QUARANTINED:
            self.quarantined += 1
        elif kind == SWEEP_TASK_FAILED:
            self.failures += 1

    def note_attempt_seconds(self, seconds: float) -> None:
        seconds = float(seconds)
        if self.ewma_attempt_seconds is None:
            self.ewma_attempt_seconds = seconds
        else:
            self.ewma_attempt_seconds = (
                self.ALPHA * seconds + (1.0 - self.ALPHA) * self.ewma_attempt_seconds
            )

    # -- reporting -----------------------------------------------------
    @property
    def remaining(self) -> int:
        return max(0, self.total - self.completed - self.quarantined)

    def eta_seconds(self) -> "float | None":
        """Remaining wall-clock estimate: EWMA latency × remaining / jobs."""
        if self.ewma_attempt_seconds is None or self.remaining == 0:
            return None
        return self.ewma_attempt_seconds * self.remaining / self.jobs

    def status_line(self) -> str:
        parts = [
            f"sweep: {self.completed}/{self.total} done",
            f"{self.retried} retried",
            f"{self.quarantined} quarantined",
        ]
        if self.ewma_attempt_seconds is not None:
            parts.append(f"attempt EWMA {self.ewma_attempt_seconds:.2f}s")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        return " | ".join(parts)

    def maybe_emit(self, force: bool = False) -> "str | None":
        """Emit a status line if *interval* elapsed (or *force*)."""
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.interval
        ):
            return None
        self._last_emit = now
        line = self.status_line()
        self._sink(line)
        return line


def _stderr_sink(line: str) -> None:
    print(line, file=sys.stderr, flush=True)
