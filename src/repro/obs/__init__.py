"""Observability layer: traces, metrics, timed spans, replay, export.

The three channels and what each answers (see docs/observability.md):

* **event traces** (:mod:`repro.obs.events`, :mod:`repro.obs.recorder`) —
  *what happened*: per-step structured records of everything the runtime
  did and why the controller decided what it decided, in a bounded ring
  buffer with canonical JSONL export/import;
* **metrics** (:mod:`repro.obs.metrics`) — *how much*: named counters/
  gauges/histograms (with bucket quantiles) aggregated across a run,
  cheap enough to leave on;
* **timed spans** (:mod:`repro.obs.spans`) — *where the time went*:
  hierarchical ``perf_counter_ns`` phase timings aggregated per span
  path, with optional 1-in-N step sampling.

On top of the channels:

* **deterministic replay** (:mod:`repro.obs.replay`) — a trace alone
  reproduces the controller's ``m_t`` decision trajectory; a trace plus
  the original seed reproduces the entire engine run;
* **export** (:mod:`repro.obs.export`) — OpenMetrics text exposition and
  a lossless JSON snapshot of the metrics registry;
* **analysis** (:mod:`repro.obs.analysis`) — span-based profiling
  reports, controller-convergence reports from traces, and a live sweep
  progress monitor;
* **distributed** (:mod:`repro.obs.distributed`) — cross-process
  observability for the sharded runtime: ``run_id``-tagged per-shard
  trace streams merged into one causally ordered trace
  (:func:`merge_traces`), a supervisor-side :class:`TelemetryBus` with
  per-shard labelled metrics and a :class:`ShardProgress` live line,
  and a crash :class:`FlightRecorder` with :func:`diagnose_crash`
  post-mortems.

Everything is opt-in: engines built without a recorder/registry/profiler
(and with no active one) skip all instrumentation at the cost of one
attribute test per step phase.
"""

from repro.obs.analysis import (
    ConvergenceReport,
    PhaseBreakdown,
    ProfileReport,
    SweepProgress,
    convergence_report,
    profile_report,
)
from repro.obs.distributed import (
    MERGED_SOURCE,
    SUPERVISOR_SOURCE,
    CrashReport,
    FlightRecorder,
    ShardProgress,
    TelemetryBus,
    TraceContext,
    diagnose_crash,
    merge_trace_files,
    merge_traces,
    new_run_id,
    parse_shard_source,
    shard_source,
    write_trace,
)
from repro.obs.events import (
    CLAMP,
    DECISION,
    HALO_EXCHANGE,
    ORDER_DECISION,
    RUN_END,
    RUN_START,
    SELECT,
    SHARD_ROUND,
    STEP,
    SWEEP_END,
    SWEEP_KINDS,
    SWEEP_START,
    SWEEP_TASK_COMPLETE,
    SWEEP_TASK_FAILED,
    SWEEP_TASK_QUARANTINED,
    SWEEP_TASK_RETRY,
    SWEEP_TASK_START,
    TraceEvent,
    event_from_json,
    event_to_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    activate_metrics,
    active_metrics,
    collecting_metrics,
    deactivate_metrics,
    labelled,
)
from repro.obs.export import (
    render_openmetrics,
    restore_registry,
    snapshot_registry,
    write_telemetry,
)
from repro.obs.recorder import (
    TraceRecorder,
    activate,
    active_recorder,
    deactivate,
    describe_seed,
    load_jsonl,
    load_jsonl_meta,
    recording,
)
from repro.obs.spans import (
    NULL_SPAN,
    SpanProfiler,
    SpanStat,
    activate_profiler,
    active_profiler,
    deactivate_profiler,
    profiling,
)

from repro.obs.replay import (
    ReplayController,
    ReplayReport,
    controller_from_config,
    controller_from_trace,
    recorded_seed,
    register_controller_builder,
    replay_decisions,
    split_runs,
    trajectory,
    verify_trace,
)

__all__ = [
    "TraceEvent",
    "RUN_START",
    "SELECT",
    "STEP",
    "HALO_EXCHANGE",
    "ORDER_DECISION",
    "SHARD_ROUND",
    "DECISION",
    "CLAMP",
    "RUN_END",
    "SWEEP_START",
    "SWEEP_END",
    "SWEEP_TASK_START",
    "SWEEP_TASK_FAILED",
    "SWEEP_TASK_RETRY",
    "SWEEP_TASK_QUARANTINED",
    "SWEEP_TASK_COMPLETE",
    "SWEEP_KINDS",
    "event_to_json",
    "event_from_json",
    "TraceRecorder",
    "load_jsonl",
    "load_jsonl_meta",
    "active_recorder",
    "activate",
    "deactivate",
    "recording",
    "describe_seed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "active_metrics",
    "activate_metrics",
    "deactivate_metrics",
    "collecting_metrics",
    "split_runs",
    "trajectory",
    "recorded_seed",
    "controller_from_config",
    "controller_from_trace",
    "register_controller_builder",
    "ReplayReport",
    "replay_decisions",
    "verify_trace",
    "ReplayController",
    "SpanStat",
    "SpanProfiler",
    "NULL_SPAN",
    "active_profiler",
    "activate_profiler",
    "deactivate_profiler",
    "profiling",
    "render_openmetrics",
    "snapshot_registry",
    "restore_registry",
    "write_telemetry",
    "PhaseBreakdown",
    "ProfileReport",
    "profile_report",
    "ConvergenceReport",
    "convergence_report",
    "SweepProgress",
    "labelled",
    "SUPERVISOR_SOURCE",
    "MERGED_SOURCE",
    "new_run_id",
    "shard_source",
    "parse_shard_source",
    "TraceContext",
    "merge_traces",
    "merge_trace_files",
    "write_trace",
    "ShardProgress",
    "TelemetryBus",
    "FlightRecorder",
    "CrashReport",
    "diagnose_crash",
]
