"""Observability layer: structured traces, metrics, deterministic replay.

Three cooperating pieces (see DESIGN.md §3):

* **event traces** (:mod:`repro.obs.events`, :mod:`repro.obs.recorder`) —
  per-step structured records of everything the runtime did and why the
  controller decided what it decided, in a bounded ring buffer with
  canonical JSONL export/import;
* **metrics** (:mod:`repro.obs.metrics`) — named counters/gauges/
  histograms aggregated across a run, cheap enough to leave on;
* **deterministic replay** (:mod:`repro.obs.replay`) — a trace alone
  reproduces the controller's ``m_t`` decision trajectory; a trace plus
  the original seed reproduces the entire engine run.

Everything is opt-in: engines built without a recorder/registry (and with
no active one) skip all instrumentation at the cost of one attribute test
per step.
"""

from repro.obs.events import (
    CLAMP,
    DECISION,
    RUN_END,
    RUN_START,
    SELECT,
    STEP,
    SWEEP_END,
    SWEEP_KINDS,
    SWEEP_START,
    SWEEP_TASK_COMPLETE,
    SWEEP_TASK_FAILED,
    SWEEP_TASK_QUARANTINED,
    SWEEP_TASK_RETRY,
    SWEEP_TASK_START,
    TraceEvent,
    event_from_json,
    event_to_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    activate_metrics,
    active_metrics,
    collecting_metrics,
    deactivate_metrics,
)
from repro.obs.recorder import (
    TraceRecorder,
    activate,
    active_recorder,
    deactivate,
    describe_seed,
    load_jsonl,
    recording,
)
from repro.obs.replay import (
    ReplayController,
    ReplayReport,
    controller_from_config,
    controller_from_trace,
    recorded_seed,
    replay_decisions,
    split_runs,
    trajectory,
    verify_trace,
)

__all__ = [
    "TraceEvent",
    "RUN_START",
    "SELECT",
    "STEP",
    "DECISION",
    "CLAMP",
    "RUN_END",
    "SWEEP_START",
    "SWEEP_END",
    "SWEEP_TASK_START",
    "SWEEP_TASK_FAILED",
    "SWEEP_TASK_RETRY",
    "SWEEP_TASK_QUARANTINED",
    "SWEEP_TASK_COMPLETE",
    "SWEEP_KINDS",
    "event_to_json",
    "event_from_json",
    "TraceRecorder",
    "load_jsonl",
    "active_recorder",
    "activate",
    "deactivate",
    "recording",
    "describe_seed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "active_metrics",
    "activate_metrics",
    "deactivate_metrics",
    "collecting_metrics",
    "split_runs",
    "trajectory",
    "recorded_seed",
    "controller_from_config",
    "controller_from_trace",
    "ReplayReport",
    "replay_decisions",
    "verify_trace",
    "ReplayController",
]
