"""Test-support utilities shipped with the library.

The package currently hosts the fault-injection harness used to prove
the sweep layer's fault tolerance (:mod:`repro.testing.faults`): a
serialisable :class:`FaultPlan` of deterministic failures — raise on the
n-th attempt, hang past the timeout, hard-kill the worker, corrupt a
cache entry — usable from unit tests and from the experiments CLI via
``--inject-faults``.  It lives under :mod:`repro` (not ``tests/``) so
that worker processes can import it and so users can fault-test their
own deployment wiring.
"""

from repro.testing.faults import PARENT_KINDS, WORKER_KINDS, FaultPlan, FaultSpec

__all__ = ["FaultPlan", "FaultSpec", "WORKER_KINDS", "PARENT_KINDS"]
