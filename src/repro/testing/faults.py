"""Deterministic fault injection for the sweep execution layer.

A :class:`FaultPlan` is a pure, JSON-serialisable description of the
failures a sweep should suffer — which lets the *same* plan drive a unit
test, cross a process boundary into a sweep worker, or arrive from the
command line via ``--inject-faults``.  Plans are stateless: every spec
matches on ``(experiment, attempt)`` where *attempt* is the config's
cumulative failure count, so firing behaviour is a pure function of the
sweep's history and never of wall-clock or call ordering.

Fault kinds:

``raise``
    Raise :class:`~repro.errors.InjectedFault` inside the worker before
    the experiment runs (a deterministic "transient" failure).
``hang``
    Sleep ``seconds`` inside the worker — long enough to trip the
    sweep's per-attempt timeout.
``exit``
    ``os._exit(exit_code)`` — the worker vanishes without reporting,
    bypassing all ``except``/``finally`` machinery.
``kill``
    ``SIGKILL`` the worker's own process — the hardest crash available;
    indistinguishable from the OOM killer from the parent's side.
``corrupt-cache``
    Parent-side: after the matching config's result is stored, truncate
    its on-disk cache entry, exercising the corrupt-entry recovery path
    on the next sweep.

``hang``, ``exit`` and ``kill`` require process isolation (the sweep
harness refuses to run them inline — they would take the test process
down with them); ``raise`` and ``corrupt-cache`` work everywhere.

The compact spec DSL used by the CLI is ``kind[:experiment[:attempts]]``
with ``;`` between specs, ``*`` as a wildcard, and ``,`` between attempt
indices::

    --inject-faults "exit:fig3:0;raise:*:0,1"

kills the first-ever ``fig3`` attempt and raises on every config's first
two attempts.  Targets whose *names* contain ``:`` — the sharded
runtime's ``shard:<i>`` worker identities — cannot ride the colon form;
for those the equivalent ``kind@target[@attempts]`` spelling exists::

    --inject-faults "kill@shard:2"

kills shard 2's first worker incarnation.  The two forms may be mixed
across ``;``-separated specs but not within one spec.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import FaultInjectionError, InjectedFault

__all__ = ["FaultSpec", "FaultPlan", "WORKER_KINDS", "PARENT_KINDS"]

#: kinds executed inside a worker attempt
WORKER_KINDS = frozenset({"raise", "hang", "exit", "kill"})
#: kinds executed by the sweep driver itself
PARENT_KINDS = frozenset({"corrupt-cache"})
#: kinds that must not run in the sweep driver's own process
ISOLATION_KINDS = frozenset({"hang", "exit", "kill"})

_ALL_KINDS = WORKER_KINDS | PARENT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One injectable failure, matched on ``(experiment, attempt)``.

    ``experiment=None`` matches every config; ``attempts=None`` matches
    every attempt, otherwise only the listed cumulative-failure indices
    (attempt 0 is the first attempt a config ever makes, across resumes).
    """

    kind: str
    experiment: "str | None" = None
    attempts: "tuple[int, ...] | None" = (0,)
    seconds: float = 3600.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(_ALL_KINDS)}"
            )
        if self.attempts is not None and any(a < 0 for a in self.attempts):
            raise FaultInjectionError(f"attempt indices must be >= 0: {self.attempts}")
        if self.seconds <= 0:
            raise FaultInjectionError(f"hang duration must be > 0, got {self.seconds}")

    def matches(self, experiment: str, attempt: int) -> bool:
        if self.experiment is not None and self.experiment != experiment:
            return False
        return self.attempts is None or attempt in self.attempts

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "experiment": self.experiment,
            "attempts": None if self.attempts is None else list(self.attempts),
            "seconds": self.seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        try:
            attempts = payload.get("attempts", (0,))
            return cls(
                kind=str(payload["kind"]),
                experiment=payload.get("experiment"),
                attempts=None if attempts is None else tuple(int(a) for a in attempts),
                seconds=float(payload.get("seconds", 3600.0)),
                exit_code=int(payload.get("exit_code", 13)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultInjectionError(f"malformed fault spec: {payload!r}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` records."""

    specs: "tuple[FaultSpec, ...]" = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultInjectionError(
                    f"FaultPlan takes FaultSpec entries, got {type(spec).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.specs)

    @property
    def needs_isolation(self) -> bool:
        """Whether any spec would take the driver process down if inline."""
        return any(spec.kind in ISOLATION_KINDS for spec in self.specs)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, experiment: str, attempt: int) -> None:
        """Execute every matching worker-side fault (in spec order).

        Called at the top of a worker attempt.  ``raise`` raises,
        ``hang`` sleeps then *returns* (so an un-timed-out hang still
        completes), ``exit``/``kill`` never return.
        """
        for spec in self.specs:
            if spec.kind not in WORKER_KINDS or not spec.matches(experiment, attempt):
                continue
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault: raise on {experiment} attempt {attempt}"
                )
            if spec.kind == "hang":
                time.sleep(spec.seconds)
            elif spec.kind == "exit":
                os._exit(spec.exit_code)
            elif spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)

    def corrupts_cache(self, experiment: str, attempt: int) -> bool:
        """Whether a ``corrupt-cache`` spec matches this completed attempt."""
        return any(
            spec.kind == "corrupt-cache" and spec.matches(experiment, attempt)
            for spec in self.specs
        )

    @staticmethod
    def corrupt_cache_entry(path: "str | Path") -> None:
        """Truncate a cache entry to half its bytes (a torn write)."""
        p = Path(path)
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 2])

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict) or "specs" not in payload:
            raise FaultInjectionError(f"malformed fault plan: {payload!r}")
        return cls(tuple(FaultSpec.from_dict(s) for s in payload["specs"]))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(f"fault plan is not valid JSON: {exc}") from exc

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI DSL ``kind[:experiment[:attempts]][;...]``.

        A leading ``{`` switches to JSON (the :meth:`to_json` form), so
        scripted callers can pass full-fidelity plans through the same
        flag.  A chunk containing ``@`` uses the alternative
        ``kind@target[@attempts]`` spelling, whose *target* field may
        itself contain ``:`` — the only way to address the sharded
        runtime's ``shard:<i>`` worker identities (``kill@shard:2``).
        """
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("{"):
            return cls.from_json(text)
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "@" in chunk:
                parts = chunk.split("@")
                if len(parts) > 3:
                    raise FaultInjectionError(
                        f"fault spec {chunk!r} has too many '@' fields "
                        "(want kind@target[@attempts])"
                    )
            else:
                parts = chunk.split(":")
                if len(parts) > 3:
                    raise FaultInjectionError(
                        f"fault spec {chunk!r} has too many ':' fields "
                        "(want kind[:experiment[:attempts]]; targets whose "
                        "names contain ':' need kind@target[@attempts])"
                    )
            kind = parts[0].strip()
            experiment: "str | None" = None
            attempts: "tuple[int, ...] | None" = (0,)
            if len(parts) >= 2 and parts[1].strip() not in ("", "*"):
                experiment = parts[1].strip()
            if len(parts) == 3:
                raw = parts[2].strip()
                if raw == "*":
                    attempts = None
                else:
                    try:
                        attempts = tuple(int(a) for a in raw.split(",") if a.strip())
                    except ValueError as exc:
                        raise FaultInjectionError(
                            f"bad attempt list in fault spec {chunk!r}"
                        ) from exc
            specs.append(FaultSpec(kind=kind, experiment=experiment, attempts=attempts))
        return cls(tuple(specs))

    def describe(self) -> str:
        """Human-readable one-liner for logs and sweep reports.

        Round-trips through :meth:`parse`: specs whose target contains
        ``:`` (shard identities) come out in the ``@`` spelling, all
        others in the classic colon form.
        """
        if not self.specs:
            return "no faults"
        parts = []
        for spec in self.specs:
            exp = spec.experiment or "*"
            att = "*" if spec.attempts is None else ",".join(map(str, spec.attempts))
            sep = "@" if ":" in exp else ":"
            parts.append(sep.join((spec.kind, exp, att)))
        return ";".join(parts)
