"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without intercepting unrelated built-in
exceptions.  Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "GeneratorError",
    "ModelError",
    "ControllerError",
    "RuntimeEngineError",
    "WorksetEmptyError",
    "ConflictDetectionError",
    "ApplicationError",
    "GeometryError",
    "ConfigError",
    "RegistryError",
    "ExperimentError",
    "SweepAbortedError",
    "FaultInjectionError",
    "InjectedFault",
    "ObservabilityError",
    "ReplayMismatchError",
]


class ReproError(Exception):
    """Base class for all :mod:`repro` exceptions."""


class GraphError(ReproError):
    """Malformed operation on a :class:`~repro.graph.CCGraph`."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was not present in the graph."""

    def __init__(self, node: int):
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return f"node {self.node} not in graph"


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was not present in the graph."""

    def __init__(self, u: int, v: int):
        super().__init__((u, v))
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return f"edge ({self.u}, {self.v}) not in graph"


class GeneratorError(ReproError, ValueError):
    """Invalid parameters passed to a graph generator."""


class ModelError(ReproError):
    """Invalid parameters or state in the analytic model layer."""


class ControllerError(ReproError):
    """Invalid configuration or use of a processor-allocation controller."""


class RuntimeEngineError(ReproError):
    """Invalid configuration or state of the optimistic runtime."""


class WorksetEmptyError(RuntimeEngineError):
    """An element was requested from an empty work-set."""


class ConflictDetectionError(RuntimeEngineError):
    """A conflict-detection policy was used incorrectly."""


class ApplicationError(ReproError):
    """Failure inside one of the irregular applications."""


class GeometryError(ApplicationError):
    """Degenerate geometric configuration the predicates cannot resolve."""


class ConfigError(ReproError, ValueError):
    """A typed run/sweep configuration failed validation."""


class RegistryError(ReproError, ValueError):
    """Unknown, duplicate, or malformed plugin-registry entry."""


class ExperimentError(ReproError):
    """An experiment was invoked with invalid parameters."""


class SweepAbortedError(ExperimentError):
    """A sweep config exhausted its retry budget with quarantine disabled."""


class FaultInjectionError(ReproError):
    """A fault-injection plan was malformed or misused."""


class InjectedFault(ReproError):
    """The deliberate failure raised by a ``raise``-kind injected fault."""


class ObservabilityError(ReproError):
    """Malformed trace, metric misuse, or invalid recorder state."""


class ReplayMismatchError(ObservabilityError):
    """A deterministic replay diverged from the recorded trajectory."""
