"""The unfriendly seating problem (§3, refs [7, 8, 11]).

The expected size of a greedy maximal independent set over a random arrival
order — people refuse to sit next to an occupied seat — is the paper's
measure of available parallelism.  We provide:

* :func:`path_expected_occupancy` — exact ``E[|IS|]`` on the path ``P_n``
  via the Freedman–Shepp splitting recurrence (O(n) with prefix sums):
  the first person sits at a uniform seat ``i``, splitting the row into
  independent sub-rows of ``i−2`` and ``n−i−1`` seats.
* :func:`cycle_expected_occupancy` — exact on the cycle ``C_n`` (rotational
  symmetry reduces it to one path instance).
* :func:`seating_density_limit` — the classic limit density
  ``(1 − e^{−2})/2 ≈ 0.432…``.
* :func:`expected_mis` — Monte-Carlo greedy-MIS expectation for arbitrary
  graphs (``EM_n`` in the paper's notation, i.e. a full permutation).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ModelError
from repro.graph.ccgraph import CCGraph, GraphSnapshot
from repro.model.conflict_ratio import estimate_em
from repro.utils.stats import MeanCI

__all__ = [
    "path_expected_occupancy",
    "cycle_expected_occupancy",
    "seating_density_limit",
    "expected_mis",
]


def path_expected_occupancy(n: int) -> float:
    """Exact expected greedy-MIS size on the path ``P_n``.

    Recurrence: ``E_0 = 0``, ``E_1 = 1`` and for ``n ≥ 2``::

        E_n = 1 + (1/n) Σ_{i=1}^{n} (E_{i−2} + E_{n−i−1})
            = 1 + (2/n) Σ_{j=0}^{n−2} E_j

    (seat ``i`` blocks seats ``i−1`` and ``i+1``; the two sides are
    independent sub-paths).
    """
    if n < 0:
        raise ModelError(f"negative seat count {n}")
    if n == 0:
        return 0.0
    e = np.zeros(n + 1)
    e[1] = 1.0
    running = e[0] + e[1]  # Σ_{j=0}^{k-1} E_j while computing e[k]
    for k in range(2, n + 1):
        sum_upto = running - e[k - 1]  # Σ_{j=0}^{k-2} E_j
        e[k] = 1.0 + 2.0 * sum_upto / k
        running += e[k]
    return float(e[n])


def cycle_expected_occupancy(n: int) -> float:
    """Exact expected greedy-MIS size on the cycle ``C_n``.

    For ``n ≥ 3`` the first person's seat is immaterial by symmetry and
    blocks both neighbours, leaving a path of ``n − 3`` seats::

        C_n = 1 + E_{n−3}
    """
    if n < 0:
        raise ModelError(f"negative seat count {n}")
    if n < 3:
        return path_expected_occupancy(n)
    return 1.0 + path_expected_occupancy(n - 3)


def seating_density_limit() -> float:
    """The limiting occupied fraction on long paths: ``(1 − e^{−2})/2``."""
    return (1.0 - math.exp(-2.0)) / 2.0


def expected_mis(
    graph: "CCGraph | GraphSnapshot", reps: int = 200, seed=None
) -> MeanCI:
    """Monte-Carlo expected greedy-MIS size over full random permutations.

    This is ``EM_n(G)`` — the paper's (and [15]'s) per-step measure of
    available amorphous data-parallelism.
    """
    snapshot = graph.snapshot() if isinstance(graph, CCGraph) else graph
    n = snapshot.num_nodes
    if n == 0:
        return MeanCI(0.0, 0.0, reps)
    return estimate_em(snapshot, n, reps=reps, seed=seed)
