"""Estimators of the conflict ratio ``r̄(m)`` and its relatives (§2.1, §3).

Quantities, in the paper's notation, for a static CC graph ``G`` with ``n``
nodes:

* ``k̄(m) = E[k(π_m)]`` — expected aborts over uniform ordered ``m``-prefixes
  (Lemma 1: non-decreasing, convex).
* ``r̄(m) = k̄(m)/m`` — the conflict ratio (Prop. 1: non-decreasing).
* ``EM_m(G) = m − k̄(m)`` — expected size of the greedy maximal independent
  set of the induced prefix subgraph (Thm. 2's quantity).
* ``b_m(G)`` — expected size of the *first-come* independent set (a node
  enters iff **no** neighbour precedes it, committed or not); Eq. (19–21)
  give it in closed form from the degree sequence alone, and
  ``b_m(G) ≤ EM_m(G)`` with equality on disjoint unions of cliques.

Everything stochastic is Monte-Carlo over the vectorised commit kernel; the
tiny-graph exact routine enumerates all ordered prefixes and is used to
validate the MC machinery in the tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.graph.ccgraph import CCGraph, GraphSnapshot
from repro.model.permutation import PrefixSampler, committed_set
from repro.utils.rng import ensure_rng
from repro.utils.stats import MeanCI, mean_ci

__all__ = [
    "ConflictCurve",
    "estimate_conflict_ratio",
    "estimate_kbar",
    "estimate_em",
    "conflict_ratio_curve",
    "exact_conflict_ratio",
    "exact_kbar",
    "first_come_bound",
    "first_come_probability",
]


@dataclass(frozen=True)
class ConflictCurve:
    """A sampled conflict-ratio curve ``m ↦ r̄(m)`` with uncertainty."""

    ms: np.ndarray
    ratios: np.ndarray
    half_widths: np.ndarray
    replications: int

    def __post_init__(self) -> None:
        if not (len(self.ms) == len(self.ratios) == len(self.half_widths)):
            raise ModelError("curve arrays must have equal length")

    def as_rows(self) -> list[tuple[int, float, float]]:
        """``(m, r̄, ±)`` rows for table rendering."""
        return [
            (int(m), float(r), float(h))
            for m, r, h in zip(self.ms, self.ratios, self.half_widths)
        ]

    def interpolate(self, m: float) -> float:
        """Piecewise-linear interpolation of the sampled curve."""
        return float(np.interp(m, self.ms, self.ratios))


def _sample_commits(
    snapshot: GraphSnapshot, m: int, reps: int, rng: np.random.Generator
) -> np.ndarray:
    """``float[reps]`` committed counts over independent random prefixes.

    All replications are drawn by one batched RNG call and resolved by one
    vectorised kernel pass (see :meth:`PrefixSampler.committed_counts`),
    so the estimator cost is a handful of array operations, not ``reps``
    Python-level walks.
    """
    if reps < 1:
        raise ModelError(f"need at least one replication, got {reps}")
    sampler = PrefixSampler(snapshot, rng)
    return sampler.committed_counts(m, reps).astype(float)


def estimate_kbar(
    graph: "CCGraph | GraphSnapshot", m: int, reps: int = 200, seed=None
) -> MeanCI:
    """Monte-Carlo estimate of ``k̄(m)`` with a 99% CI."""
    snapshot = graph.snapshot() if isinstance(graph, CCGraph) else graph
    rng = ensure_rng(seed)
    commits = _sample_commits(snapshot, m, reps, rng)
    return mean_ci(m - commits)


def estimate_em(
    graph: "CCGraph | GraphSnapshot", m: int, reps: int = 200, seed=None
) -> MeanCI:
    """Monte-Carlo estimate of ``EM_m(G)`` (expected greedy-MIS size)."""
    snapshot = graph.snapshot() if isinstance(graph, CCGraph) else graph
    rng = ensure_rng(seed)
    commits = _sample_commits(snapshot, m, reps, rng)
    return mean_ci(commits)


def estimate_conflict_ratio(
    graph: "CCGraph | GraphSnapshot", m: int, reps: int = 200, seed=None
) -> MeanCI:
    """Monte-Carlo estimate of ``r̄(m)`` with a 99% CI."""
    if m <= 0:
        raise ModelError(f"conflict ratio needs m >= 1, got {m}")
    snapshot = graph.snapshot() if isinstance(graph, CCGraph) else graph
    rng = ensure_rng(seed)
    commits = _sample_commits(snapshot, m, reps, rng)
    return mean_ci((m - commits) / m)


def conflict_ratio_curve(
    graph: "CCGraph | GraphSnapshot",
    ms: "np.ndarray | list[int]",
    reps: int = 200,
    seed=None,
) -> ConflictCurve:
    """Sample ``r̄(m)`` over a grid of prefix lengths *ms*."""
    snapshot = graph.snapshot() if isinstance(graph, CCGraph) else graph
    rng = ensure_rng(seed)
    ms_arr = np.asarray(sorted(int(m) for m in ms), dtype=np.int64)
    if ms_arr.size == 0:
        raise ModelError("empty m-grid")
    if ms_arr[0] < 1 or ms_arr[-1] > snapshot.num_nodes:
        raise ModelError(
            f"m-grid must lie in [1, {snapshot.num_nodes}], got "
            f"[{ms_arr[0]}, {ms_arr[-1]}]"
        )
    ratios = np.empty(ms_arr.shape[0])
    halves = np.empty(ms_arr.shape[0])
    for i, m in enumerate(ms_arr):
        ci = estimate_conflict_ratio(snapshot, int(m), reps=reps, seed=rng)
        ratios[i] = ci.mean
        halves[i] = ci.half_width
    return ConflictCurve(ms=ms_arr, ratios=ratios, half_widths=halves, replications=reps)


def exact_kbar(graph: CCGraph, m: int) -> float:
    """Exact ``k̄(m)`` by enumerating all ordered prefixes (tiny graphs).

    Cost is ``n!/(n−m)!`` commit walks; intended for ``n ≤ 8`` in tests.
    """
    nodes = graph.nodes()
    n = len(nodes)
    if not 0 <= m <= n:
        raise ModelError(f"m={m} out of range [0, {n}]")
    if math.perm(n, m) > 2_000_000:
        raise ModelError(
            f"refusing exact enumeration of {math.perm(n, m)} prefixes; "
            "use the Monte-Carlo estimator"
        )
    total = 0
    count = 0
    for order in itertools.permutations(nodes, m):
        total += m - len(committed_set(graph, order))
        count += 1
    return total / count if count else 0.0


def exact_conflict_ratio(graph: CCGraph, m: int) -> float:
    """Exact ``r̄(m)`` by enumeration (tiny graphs only)."""
    if m <= 0:
        raise ModelError(f"conflict ratio needs m >= 1, got {m}")
    return exact_kbar(graph, m) / m


def first_come_probability(n: int, degree: int, m: int) -> float:
    """Eq. (19): P[v ∈ IS_m] for a degree-``degree`` node.

    ``IS_m`` is the first-come independent set: ``v`` enters iff it lies in
    the first ``m`` positions and none of its neighbours precedes it::

        P = (1/n) Σ_{j=1}^{m} Π_{i=1}^{j-1} (n−i−d_v)/(n−i)
    """
    if n <= 0:
        raise ModelError(f"need n >= 1, got {n}")
    if not 0 <= degree < n:
        raise ModelError(f"degree {degree} out of range [0, {n - 1}]")
    if not 0 <= m <= n:
        raise ModelError(f"m={m} out of range [0, {n}]")
    total = 0.0
    prod = 1.0
    for j in range(1, m + 1):
        total += prod
        # extend the product with the i = j factor for the next term
        num = n - j - degree
        den = n - j
        prod *= max(num, 0) / den if den else 0.0
    return total / n


def first_come_bound(graph: "CCGraph | GraphSnapshot", m: int) -> float:
    """Eq. (20): ``b_m(G)`` from the degree sequence (exact, closed form).

    ``b_m(G) ≤ EM_m(G)`` for every graph (Thm. 2's proof device) with
    equality when ``G`` is a disjoint union of cliques.
    """
    if isinstance(graph, CCGraph):
        snapshot = graph.snapshot()
    else:
        snapshot = graph
    n = snapshot.num_nodes
    degrees = snapshot.degrees
    counts = np.bincount(degrees) if n else np.zeros(1, dtype=np.int64)
    total = 0.0
    for d, c in enumerate(counts):
        if c:
            total += int(c) * first_come_probability(n, d, m)
    return total
