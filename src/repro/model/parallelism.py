"""Parallelism profiles of irregular algorithms (à la LonESTAR [15]).

A *parallelism profile* records, for each temporal step of an execution,
how many tasks could have run together — operationally, the (expected) size
of a maximal independent set of the current CC graph.  The paper uses such
profiles to argue the controller must adapt fast (Delaunay refinement goes
from no parallelism to ~1000 parallel tasks within ~30 steps).

This module measures profiles from any object exposing the
:class:`WorkloadProtocol` below — in practice a runtime engine trace or a
replayed synthetic profile — and provides summary statistics (peak, rise
time, burstiness) used by the adaptation experiments.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.graph.ccgraph import CCGraph
from repro.model.seating import expected_mis
from repro.utils.rng import ensure_rng

__all__ = [
    "ParallelismProfile",
    "measure_profile",
    "profile_from_run",
    "profile_summary",
]


@dataclass(frozen=True)
class ParallelismProfile:
    """Available parallelism per temporal step.

    ``available[t]`` is the (estimated) expected maximal-independent-set
    size of the CC graph at step ``t``; ``workset[t]`` the number of
    pending tasks.
    """

    available: np.ndarray
    workset: np.ndarray

    def __post_init__(self) -> None:
        if len(self.available) != len(self.workset):
            raise ModelError("profile arrays must have equal length")

    def __len__(self) -> int:
        return int(len(self.available))

    @property
    def peak(self) -> float:
        """Maximum available parallelism over the run."""
        return float(self.available.max()) if len(self.available) else 0.0

    def rise_time(self, fraction: float = 0.9) -> int:
        """First step at which availability reaches *fraction* of peak."""
        if not 0 < fraction <= 1:
            raise ModelError(f"fraction must be in (0, 1], got {fraction}")
        if len(self.available) == 0:
            return 0
        target = fraction * self.peak
        hits = np.nonzero(self.available >= target)[0]
        return int(hits[0]) if hits.size else len(self.available)


def measure_profile(
    graphs: Sequence[CCGraph], reps: int = 50, seed=None
) -> ParallelismProfile:
    """Estimate the parallelism profile of a sequence of CC-graph states.

    *graphs* is the per-step CC graph (e.g. captured by an engine hook);
    each entry costs ``reps`` greedy-MIS Monte-Carlo draws.
    """
    rng = ensure_rng(seed)
    avail = np.empty(len(graphs))
    pending = np.empty(len(graphs))
    for t, g in enumerate(graphs):
        pending[t] = g.num_nodes
        avail[t] = expected_mis(g, reps=reps, seed=rng).mean if g.num_nodes else 0.0
    return ParallelismProfile(available=avail, workset=pending)


def profile_from_run(result) -> ParallelismProfile:
    """Observed-parallelism profile of a finished engine run.

    Uses committed counts as the per-step *exploited* parallelism — a
    lower bound on availability that needs no extra simulation (the [15]
    methodology applied to our own traces).  Pass a
    :class:`~repro.runtime.stats.RunResult`.
    """
    return ParallelismProfile(
        available=np.asarray(result.committed_trace, dtype=float),
        workset=np.asarray(result.workset_trace, dtype=float),
    )


def profile_summary(profile: ParallelismProfile) -> dict[str, float]:
    """Headline numbers for a profile: peak, mean, rise time, burstiness.

    *Burstiness* is the coefficient of variation of the step-to-step
    availability changes — near 0 for smooth profiles, large for spiky
    ones (the regime where controller speed matters most).
    """
    if len(profile) == 0:
        return {"peak": 0.0, "mean": 0.0, "rise_time": 0.0, "burstiness": 0.0}
    diffs = np.diff(profile.available) if len(profile) > 1 else np.zeros(1)
    scale = float(np.abs(diffs).mean())
    burst = float(diffs.std() / scale) if scale > 0 else 0.0
    return {
        "peak": profile.peak,
        "mean": float(profile.available.mean()),
        "rise_time": float(profile.rise_time()),
        "burstiness": burst,
    }
