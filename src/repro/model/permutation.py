"""Commit-order semantics of the optimistic scheduler (§2.1).

The scheduler draws ``m`` distinct nodes uniformly at random; the draw order
``π_m`` is the commit order.  Walking the prefix in order, a node *commits*
iff no neighbour of it has already committed; otherwise it *aborts* (its
speculative work is rolled back).  The committed set is therefore exactly
the greedy maximal independent set of the induced subgraph visited in
permutation order, and the number of aborts is ``k(π_m) = m − |committed|``.

Two implementations are provided:

* :func:`committed_set` — direct set-based walk over a :class:`CCGraph`;
  the readable reference used by the runtime engine (whose graphs are
  small-ish and mutate every step).
* :func:`committed_mask_csr` — vectorised resolution over a frozen
  :class:`GraphSnapshot`, used by the Monte-Carlo estimators which
  evaluate hundreds of thousands of prefixes of a *static* graph.  The
  actual array kernel lives in :mod:`repro.runtime.kernels` (it is shared
  with the engine's fast path); this module wraps it with model-level
  validation, and :func:`committed_mask_batch` resolves many independent
  prefixes through a *single* fixed-point iteration.

The tests cross-check the implementations against each other and against
brute-force enumeration on tiny graphs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ModelError
from repro.graph.ccgraph import CCGraph, GraphSnapshot
from repro.runtime.kernels import greedy_commit_mask_batch

__all__ = [
    "committed_set",
    "conflict_count",
    "conflict_ratio_realization",
    "committed_mask_csr",
    "committed_mask_batch",
    "PrefixSampler",
]


def committed_set(graph: CCGraph, order: Sequence[int]) -> list[int]:
    """Nodes of *order* that commit, walking the prefix in commit order.

    *order* must contain distinct nodes of *graph*.  Returns committed node
    ids in commit order.  The result is a maximal independent set of the
    subgraph induced by ``set(order)``.
    """
    committed: set[int] = set()
    out: list[int] = []
    seen: set[int] = set()
    for v in order:
        if v in seen:
            raise ModelError(f"duplicate node {v} in commit order")
        seen.add(v)
        neigh = graph.neighbors(v)  # raises NodeNotFoundError if absent
        if committed.isdisjoint(neigh):
            committed.add(v)
            out.append(v)
    return out


def conflict_count(graph: CCGraph, order: Sequence[int]) -> int:
    """``k(π_m)`` — number of aborted tasks for this commit order."""
    return len(order) - len(committed_set(graph, order))


def conflict_ratio_realization(graph: CCGraph, order: Sequence[int]) -> float:
    """``r(π_m) = k(π_m)/m`` for this commit order (0 for an empty prefix)."""
    m = len(order)
    if m == 0:
        return 0.0
    return conflict_count(graph, order) / m


def committed_mask_batch(
    snapshot: GraphSnapshot, prefixes: np.ndarray
) -> np.ndarray:
    """Resolve many commit-order prefixes through one vectorised pass.

    Parameters
    ----------
    snapshot:
        CSR view of the CC graph.
    prefixes:
        ``int64[R, m]`` array of node *indices* (positions in
        ``snapshot.node_ids``); each row is one commit order, without
        duplicates within the row.

    Returns
    -------
    ``bool[R, m]`` — ``True`` where the corresponding slot commits.
    """
    prefixes = np.asarray(prefixes, dtype=np.int64)
    if prefixes.ndim != 2:
        raise ModelError(f"prefixes must be 2-D, got shape {prefixes.shape}")
    if prefixes.size:
        if prefixes.min() < 0 or prefixes.max() >= snapshot.num_nodes:
            raise ModelError("prefix contains indices outside the snapshot")
    try:
        return greedy_commit_mask_batch(snapshot.indptr, snapshot.indices, prefixes)
    except ValueError as exc:
        raise ModelError(str(exc)) from None


def committed_mask_csr(
    snapshot: GraphSnapshot, prefix: np.ndarray
) -> np.ndarray:
    """Vectorised committed/aborted resolution on a frozen graph.

    Parameters
    ----------
    snapshot:
        CSR view of the CC graph.
    prefix:
        ``int64[m]`` array of node *indices* (positions in
        ``snapshot.node_ids``), in commit order, without duplicates.

    Returns
    -------
    ``bool[m]`` — ``True`` where the corresponding prefix entry commits.
    """
    prefix = np.asarray(prefix, dtype=np.int64)
    if prefix.ndim != 1:
        raise ModelError(f"prefix must be 1-D, got shape {prefix.shape}")
    if prefix.shape[0] == 0:
        return np.empty(0, dtype=bool)
    return committed_mask_batch(snapshot, prefix[None, :])[0]


class PrefixSampler:
    """Batched sampler of random commit prefixes over a fixed snapshot.

    Single draws re-use one permutation buffer (each draw is a fresh
    uniform permutation read off at ``m`` entries).  The batched entry
    points draw *all* replications in one vectorised RNG call
    (:meth:`draw_batch`) and resolve them through one fixed-point kernel
    pass (:meth:`committed_counts`) — the Monte-Carlo estimators of
    :mod:`repro.model.conflict_ratio` run entirely on this path.
    """

    #: soft cap on the elements materialised per batched draw; replication
    #: blocks beyond it are processed in chunks of this many elements
    MAX_BATCH_ELEMENTS = 1 << 23

    def __init__(self, snapshot: GraphSnapshot, rng: np.random.Generator):
        self._snapshot = snapshot
        self._rng = rng
        self._buffer = np.arange(snapshot.num_nodes, dtype=np.int64)

    def draw(self, m: int) -> np.ndarray:
        """One uniform ordered ``m``-prefix of node indices."""
        n = self._buffer.shape[0]
        if not 0 <= m <= n:
            raise ModelError(f"prefix length {m} out of range [0, {n}]")
        self._rng.shuffle(self._buffer)
        return self._buffer[:m].copy()

    def committed(self, m: int) -> np.ndarray:
        """Draw a prefix and return its committed mask."""
        return committed_mask_csr(self._snapshot, self.draw(m))

    def draw_batch(self, m: int, reps: int) -> np.ndarray:
        """``int64[reps, m]`` — *reps* independent prefixes, one RNG call.

        Each row is the head of an independent uniform permutation of all
        node indices (``rng.permuted`` over a ``reps × n`` matrix), so the
        rows follow exactly the paper's ``π_m`` distribution.
        """
        n = self._snapshot.num_nodes
        if not 0 <= m <= n:
            raise ModelError(f"prefix length {m} out of range [0, {n}]")
        if reps < 0:
            raise ModelError(f"cannot draw {reps} replications")
        base = np.tile(np.arange(n, dtype=np.int64), (reps, 1))
        return self._rng.permuted(base, axis=1)[:, :m]

    def committed_counts(self, m: int, reps: int) -> np.ndarray:
        """``int64[reps]`` committed counts over independent random prefixes.

        Replications are drawn and resolved in vectorised blocks (bounded
        by :attr:`MAX_BATCH_ELEMENTS` to keep the position scatter-table
        memory flat); with the default sizes used by the estimators the
        whole request is a single batched draw + kernel pass.
        """
        n = max(1, self._snapshot.num_nodes)
        rows_per_block = max(1, self.MAX_BATCH_ELEMENTS // n)
        out = np.empty(reps, dtype=np.int64)
        for start in range(0, reps, rows_per_block):
            block = min(rows_per_block, reps - start)
            prefixes = self.draw_batch(m, block)
            mask = committed_mask_batch(self._snapshot, prefixes)
            out[start : start + block] = mask.sum(axis=1)
        return out
