"""Commit-order semantics of the optimistic scheduler (§2.1).

The scheduler draws ``m`` distinct nodes uniformly at random; the draw order
``π_m`` is the commit order.  Walking the prefix in order, a node *commits*
iff no neighbour of it has already committed; otherwise it *aborts* (its
speculative work is rolled back).  The committed set is therefore exactly
the greedy maximal independent set of the induced subgraph visited in
permutation order, and the number of aborts is ``k(π_m) = m − |committed|``.

Two implementations are provided:

* :func:`committed_set` — direct set-based walk over a :class:`CCGraph`;
  the readable reference used by the runtime engine (whose graphs are
  small-ish and mutate every step).
* :func:`committed_mask_csr` — vectorised fixed-point iteration over a
  frozen :class:`GraphSnapshot`, used by the Monte-Carlo estimators which
  evaluate hundreds of thousands of prefixes of a *static* graph.  A node's
  fate is resolved in rounds: it aborts as soon as an earlier neighbour is
  known to commit, and commits once every earlier neighbour is known not
  to.  Expected number of rounds is O(log m) (longest chain of strictly
  decreasing positions along a path), and each round is pure NumPy segment
  arithmetic, giving ~50× over the Python walk at ``n = 2000``.

The tests cross-check the two against each other and against brute-force
enumeration on tiny graphs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ModelError
from repro.graph.ccgraph import CCGraph, GraphSnapshot

__all__ = [
    "committed_set",
    "conflict_count",
    "conflict_ratio_realization",
    "committed_mask_csr",
    "PrefixSampler",
]


def committed_set(graph: CCGraph, order: Sequence[int]) -> list[int]:
    """Nodes of *order* that commit, walking the prefix in commit order.

    *order* must contain distinct nodes of *graph*.  Returns committed node
    ids in commit order.  The result is a maximal independent set of the
    subgraph induced by ``set(order)``.
    """
    committed: set[int] = set()
    out: list[int] = []
    seen: set[int] = set()
    for v in order:
        if v in seen:
            raise ModelError(f"duplicate node {v} in commit order")
        seen.add(v)
        neigh = graph.neighbors(v)  # raises NodeNotFoundError if absent
        if committed.isdisjoint(neigh):
            committed.add(v)
            out.append(v)
    return out


def conflict_count(graph: CCGraph, order: Sequence[int]) -> int:
    """``k(π_m)`` — number of aborted tasks for this commit order."""
    return len(order) - len(committed_set(graph, order))


def conflict_ratio_realization(graph: CCGraph, order: Sequence[int]) -> float:
    """``r(π_m) = k(π_m)/m`` for this commit order (0 for an empty prefix)."""
    m = len(order)
    if m == 0:
        return 0.0
    return conflict_count(graph, order) / m


def _segment_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flatten ``[starts[i], starts[i]+counts[i])`` ranges into one index array."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_starts = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    return seg_starts + within


def committed_mask_csr(
    snapshot: GraphSnapshot, prefix: np.ndarray
) -> np.ndarray:
    """Vectorised committed/aborted resolution on a frozen graph.

    Parameters
    ----------
    snapshot:
        CSR view of the CC graph.
    prefix:
        ``int64[m]`` array of node *indices* (positions in
        ``snapshot.node_ids``), in commit order, without duplicates.

    Returns
    -------
    ``bool[m]`` — ``True`` where the corresponding prefix entry commits.
    """
    n = snapshot.num_nodes
    m = int(prefix.shape[0])
    if m == 0:
        return np.empty(0, dtype=bool)
    prefix = np.asarray(prefix, dtype=np.int64)
    if prefix.min() < 0 or prefix.max() >= n:
        raise ModelError("prefix contains indices outside the snapshot")
    # position of each selected node in the commit order; -1 = not selected
    pos = np.full(n, -1, dtype=np.int64)
    pos[prefix] = np.arange(m, dtype=np.int64)
    if np.count_nonzero(pos >= 0) != m:
        raise ModelError("duplicate node in commit order")

    # Build the induced adjacency restricted to *earlier* neighbours:
    # for each selected node, the selected neighbours that precede it.
    starts = snapshot.indptr[prefix]
    counts = snapshot.indptr[prefix + 1] - starts
    flat = _segment_ranges(starts, counts)
    nbr = snapshot.indices[flat]
    owner = np.repeat(np.arange(m, dtype=np.int64), counts)  # prefix slot
    nbr_pos = pos[nbr]
    keep = (nbr_pos >= 0) & (nbr_pos < owner)  # owner slot == its position
    nbr_slot = nbr_pos[keep]  # earlier neighbour's prefix slot
    own_slot = owner[keep]

    # states: 0 = undecided, 1 = committed, 2 = aborted
    state = np.zeros(m, dtype=np.int8)
    if own_slot.shape[0] == 0:
        state[:] = 1
        return state == 1
    # per-slot segment boundaries over the (own_slot-sorted) edge list
    order = np.argsort(own_slot, kind="stable")
    own_sorted = own_slot[order]
    nbr_sorted = nbr_slot[order]
    seg_counts = np.bincount(own_sorted, minlength=m)
    seg_ptr = np.concatenate(([0], np.cumsum(seg_counts)))

    undecided = np.ones(m, dtype=bool)
    # nodes with no earlier neighbours commit immediately
    no_earlier = seg_counts == 0
    state[no_earlier] = 1
    undecided[no_earlier] = False

    while undecided.any():
        nbr_state = state[nbr_sorted]
        committed_edge = (nbr_state == 1).astype(np.int64)
        undecided_edge = (nbr_state == 0).astype(np.int64)
        # segment sums via cumulative-sum differencing (reduceat chokes on
        # empty trailing segments; this form is uniform).
        c_committed = _segment_sum(committed_edge, seg_ptr)
        c_undecided = _segment_sum(undecided_edge, seg_ptr)
        newly_aborted = undecided & (c_committed > 0)
        newly_committed = undecided & (c_committed == 0) & (c_undecided == 0)
        if not (newly_aborted.any() or newly_committed.any()):
            raise ModelError("commit fixed-point stalled (cycle of undecided nodes)")
        state[newly_aborted] = 2
        state[newly_committed] = 1
        undecided &= ~(newly_aborted | newly_committed)
    return state == 1


def _segment_sum(values: np.ndarray, seg_ptr: np.ndarray) -> np.ndarray:
    """Sum *values* over segments delimited by *seg_ptr* (len = nseg+1)."""
    csum = np.concatenate(([0], np.cumsum(values)))
    return csum[seg_ptr[1:]] - csum[seg_ptr[:-1]]


class PrefixSampler:
    """Batched sampler of random commit prefixes over a fixed snapshot.

    Re-uses one permutation buffer across draws: each draw produces a fresh
    uniform permutation of all node indices and reads its first ``m``
    entries, matching the paper's "prefix of a random permutation" model
    exactly while avoiding per-draw allocation.
    """

    def __init__(self, snapshot: GraphSnapshot, rng: np.random.Generator):
        self._snapshot = snapshot
        self._rng = rng
        self._buffer = np.arange(snapshot.num_nodes, dtype=np.int64)

    def draw(self, m: int) -> np.ndarray:
        """One uniform ordered ``m``-prefix of node indices."""
        n = self._buffer.shape[0]
        if not 0 <= m <= n:
            raise ModelError(f"prefix length {m} out of range [0, {n}]")
        self._rng.shuffle(self._buffer)
        return self._buffer[:m].copy()

    def committed(self, m: int) -> np.ndarray:
        """Draw a prefix and return its committed mask."""
        return committed_mask_csr(self._snapshot, self.draw(m))
