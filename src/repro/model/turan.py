"""Turán-style bounds on exploitable parallelism (§3).

* :func:`turan_bound` — Thm. 1 (strong/probabilistic Turán): the greedy
  maximal independent set over a random permutation has expected size at
  least ``n/(d+1)``.
* :func:`em_kdn` — Thm. 3's closed form for the worst-case family
  ``K_d^n`` (``s = n/(d+1)`` disjoint ``(d+1)``-cliques)::

      EM_m(K_d^n) = s · (1 − Π_{i=1}^{m} (n−d−i)/(n+1−i))

* :func:`worst_case_conflict_ratio` — the resulting upper bound on
  ``r̄(m)`` (Eq. 24), valid for *every* graph with the same ``n`` and
  average degree ``d`` by Thm. 2.
* :func:`worst_case_conflict_ratio_approx` — Cor. 2's large-``n``
  approximation ``1 − n/(m(d+1)) · [1 − (1−m/n)^{d+1}]``.
* :func:`alpha_conflict_bound` — Cor. 3: with ``m = α·n/(d+1)``,
  ``r̄ ≤ 1 − (1−e^{−α})/α`` (degree-free form).
* :func:`initial_derivative` — Prop. 2: ``Δr̄(1) = d/(2(n−1))`` exactly,
  for any graph.
* :func:`safe_initial_m` — inversion of Cor. 3 used to seed the controller
  (§4): the largest ``m`` whose worst-case conflict ratio stays ≤ ρ.
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.utils.stats import hypergeom_miss_probability

__all__ = [
    "turan_bound",
    "em_kdn",
    "em_disjoint_cliques",
    "worst_case_conflict_ratio",
    "worst_case_conflict_ratio_approx",
    "alpha_conflict_bound",
    "alpha_conflict_bound_limit",
    "initial_derivative",
    "safe_initial_m",
    "predict_mu_linear",
]


def _check_nd(n: int, d: float) -> None:
    if n <= 0:
        raise ModelError(f"need n >= 1, got {n}")
    if d < 0 or d > n - 1:
        raise ModelError(f"average degree d={d} out of range [0, {n - 1}]")


def turan_bound(n: int, d: float) -> float:
    """Thm. 1 lower bound ``n/(d+1)`` on the expected greedy-MIS size."""
    _check_nd(n, d)
    return n / (d + 1.0)


def em_kdn(n: int, d: int, m: int) -> float:
    """Thm. 3 closed form ``EM_m(K_d^n)``.

    Requires integer ``d`` with ``(d+1) | n`` (the structure of ``K_d^n``).
    Each of the ``s`` cliques contributes one committed node iff the
    ``m``-sample hits it, so ``EM_m = s·(1 − P[clique untouched])`` with the
    hypergeometric miss probability of Eq. (26).
    """
    _check_nd(n, d)
    if not 0 <= m <= n:
        raise ModelError(f"m={m} out of range [0, {n}]")
    if n % (d + 1) != 0:
        raise ModelError(f"K_d^n needs (d+1) | n; got n={n}, d={d}")
    s = n // (d + 1)
    return s * (1.0 - hypergeom_miss_probability(n, d + 1, m))


def em_disjoint_cliques(sizes: "list[int] | tuple[int, ...]", m: int) -> float:
    """Exact ``EM_m`` for a disjoint union of cliques of arbitrary *sizes*.

    Generalises Thm. 3 beyond equal cliques (isolated nodes are cliques of
    size 1): each clique contributes one committed node iff the
    ``m``-sample hits it, so

        EM_m = Σ_k (1 − P[clique k missed])

    with the hypergeometric miss probability of Eq. (26) per clique.
    Example 1 and the synthetic profile graphs are special cases.
    """
    if any(s < 1 for s in sizes):
        raise ModelError(f"clique sizes must be >= 1, got {list(sizes)}")
    n = int(sum(sizes))
    if not 0 <= m <= n:
        raise ModelError(f"m={m} out of range [0, {n}]")
    return float(
        sum(1.0 - hypergeom_miss_probability(n, int(s), m) for s in sizes)
    )


def worst_case_conflict_ratio(n: int, d: int, m: int) -> float:
    """Eq. (24): exact upper bound on ``r̄(m)`` over all ``(n, d)`` graphs."""
    if m <= 0:
        raise ModelError(f"conflict ratio needs m >= 1, got {m}")
    return 1.0 - em_kdn(n, d, m) / m


def worst_case_conflict_ratio_approx(n: int, d: float, m: int) -> float:
    """Cor. 2: large-``n`` approximation of the worst-case bound.

    Unlike :func:`worst_case_conflict_ratio`, this accepts fractional
    average degree and does not need ``(d+1) | n``.
    """
    _check_nd(n, d)
    if m <= 0:
        raise ModelError(f"conflict ratio needs m >= 1, got {m}")
    if m > n:
        raise ModelError(f"m={m} exceeds n={n}")
    frac = n / (m * (d + 1.0))
    return 1.0 - frac * (1.0 - (1.0 - m / n) ** (d + 1.0))


def alpha_conflict_bound(alpha: float, d: float) -> float:
    """Cor. 3, finite-``d`` form: bound at ``m = α·n/(d+1)``."""
    if alpha <= 0:
        raise ModelError(f"need alpha > 0, got {alpha}")
    if d < 0:
        raise ModelError(f"need d >= 0, got {d}")
    if alpha > d + 1:
        raise ModelError(f"alpha={alpha} exceeds d+1={d + 1} (m would exceed n)")
    return 1.0 - (1.0 - (1.0 - alpha / (d + 1.0)) ** (d + 1.0)) / alpha


def alpha_conflict_bound_limit(alpha: float) -> float:
    """Cor. 3, degree-free form ``1 − (1 − e^{−α})/α`` (d → ∞ limit).

    At ``α = 1/2`` this evaluates to ≈ 21.3%, the paper's smart-start
    guarantee for ``m = n/(2(d+1))``.
    """
    if alpha <= 0:
        raise ModelError(f"need alpha > 0, got {alpha}")
    return 1.0 - (1.0 - math.exp(-alpha)) / alpha


def initial_derivative(n: int, d: float) -> float:
    """Prop. 2: ``Δr̄(1) = d/(2(n−1))`` for any graph (exact)."""
    if n < 2:
        raise ModelError(f"initial derivative needs n >= 2, got {n}")
    _check_nd(n, d)
    return d / (2.0 * (n - 1.0))


def predict_mu_linear(n: int, d: float, rho: float, m_min: int = 2) -> int:
    """Linearity-based prediction of the optimum ``μ`` (Recurrence B's premise).

    Fig. 2's experimental fact: in the operating region the conflict ratio
    is ≈ linear with the Prop.-2 slope, ``r̄(m) ≈ m·d/2(n−1)``, so

        μ ≈ 2ρ(n−1)/d

    One application of Recurrence B from any ``(m, r)`` on a linear curve
    lands exactly here — this function is the closed-form of that jump.
    For the Fig.-2 families (random and clique-union graphs) the true
    curves bend *below* the linear extrapolation, so this prediction
    underestimates μ — a safe, slightly conservative starting point
    (empirically ``predict_mu_linear ≤ safe_initial_m ≤ μ`` there).
    """
    _check_nd(n, d)
    if not 0.0 < rho < 1.0:
        raise ModelError(f"target conflict ratio must be in (0, 1), got {rho}")
    if m_min < 1:
        raise ModelError(f"m_min must be >= 1, got {m_min}")
    if d == 0:
        return n  # conflict-free: use everything
    mu = int(round(2.0 * rho * (n - 1) / d))
    return min(max(mu, m_min), n)


def safe_initial_m(n: int, d: float, rho: float, m_min: int = 2) -> int:
    """Largest ``m`` whose Cor.-3 worst-case conflict ratio is ≤ ρ.

    The paper's smart start (§4): if an estimate of the average degree is
    available, start the controller at a provably safe allocation instead
    of ``m₀ = 2``.  Monotonicity of the bound in ``α`` makes bisection
    valid; the result is clamped to ``[m_min, n]``.
    """
    _check_nd(n, d)
    if not 0.0 < rho < 1.0:
        raise ModelError(f"target conflict ratio must be in (0, 1), got {rho}")
    if m_min < 1:
        raise ModelError(f"m_min must be >= 1, got {m_min}")

    def bound_at(m: int) -> float:
        return worst_case_conflict_ratio_approx(n, d, m)

    lo, hi = 1, n
    if bound_at(1) > rho:
        return max(m_min, 1)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if bound_at(mid) <= rho:
            lo = mid
        else:
            hi = mid - 1
    return min(max(lo, m_min), n)
