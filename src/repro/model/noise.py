"""Noise model of the conflict-ratio signal (§4.1's variance remarks).

The paper's implementation optimisations — the ``T``-step averaging
window, the dead-band ``α₁`` and the separate small-``m`` tuning — all
exist because the per-step realisation ``r_t`` is noisy, *especially when
m is small*.  This module makes that noise quantitative:

* each launched task aborts roughly independently with probability
  ``r̄(m)``, so a single step's realisation has
  ``std(r_t) ≈ sqrt(r(1−r)/m)`` and a ``T``-step window average has
  ``σ_w = sqrt(r(1−r)/(m·T))`` (validated against simulation in the
  tests; correlations between same-step tasks make it approximate);
* the dead-band is a hypothesis test: with threshold ``α₁`` the
  false-trigger probability on-target is ``2·Φ(−α₁·ρ/σ_w)``;
* inverting these gives principled parameter choices:
  :func:`suggest_deadband` (band wide enough for a target false-trigger
  rate) and :func:`suggest_period` (window long enough for a wanted
  band).

These formulas power :class:`repro.control.adaptive.NoiseAdaptiveHybridController`,
which re-derives its thresholds from the *current* allocation each window
— the principled version of the paper's hand-tuned small-``m`` split.
"""

from __future__ import annotations

import math

from scipy.stats import norm

from repro.errors import ModelError

__all__ = [
    "window_std",
    "false_trigger_probability",
    "suggest_deadband",
    "suggest_period",
]


def window_std(r: float, m: int, period: int) -> float:
    """Predicted std of the ``period``-step window average of ``r_t``.

    Binomial approximation: ``sqrt(r(1−r)/(m·T))``.
    """
    if not 0.0 <= r <= 1.0:
        raise ModelError(f"conflict ratio {r} outside [0, 1]")
    if m < 1:
        raise ModelError(f"need m >= 1, got {m}")
    if period < 1:
        raise ModelError(f"need period >= 1, got {period}")
    return math.sqrt(r * (1.0 - r) / (m * period))


def false_trigger_probability(
    rho: float, alpha: float, m: int, period: int
) -> float:
    """P[window average leaves the dead-band | true ratio is exactly ρ].

    ``2·Φ(−α·ρ/σ_w)`` — the chance the controller updates when it should
    hold.
    """
    if not 0.0 < rho < 1.0:
        raise ModelError(f"target conflict ratio must be in (0,1), got {rho}")
    if alpha < 0:
        raise ModelError(f"dead-band alpha must be >= 0, got {alpha}")
    sigma = window_std(rho, m, period)
    if sigma == 0.0:
        return 0.0
    return float(2.0 * norm.cdf(-alpha * rho / sigma))


def suggest_deadband(rho: float, m: int, period: int, trigger_rate: float = 0.1) -> float:
    """Smallest dead-band ``α₁`` with on-target false triggers ≤ *trigger_rate*.

    ``α₁ = z_{1−rate/2} · σ_w / ρ``.
    """
    if not 0.0 < trigger_rate < 1.0:
        raise ModelError(f"trigger rate must be in (0,1), got {trigger_rate}")
    sigma = window_std(rho, m, period)
    z = float(norm.ppf(1.0 - trigger_rate / 2.0))
    return z * sigma / rho


def suggest_period(
    rho: float, m: int, max_deadband: float, trigger_rate: float = 0.1
) -> int:
    """Shortest window ``T`` keeping the suggested dead-band ≤ *max_deadband*.

    Inverts :func:`suggest_deadband` for ``T``; the result is clamped to
    ``[1, 64]`` (a window longer than that stops being "rapid response").
    """
    if max_deadband <= 0:
        raise ModelError(f"max dead-band must be positive, got {max_deadband}")
    if not 0.0 < trigger_rate < 1.0:
        raise ModelError(f"trigger rate must be in (0,1), got {trigger_rate}")
    z = float(norm.ppf(1.0 - trigger_rate / 2.0))
    t = (z / (max_deadband * rho)) ** 2 * rho * (1.0 - rho) / max(m, 1)
    return min(max(math.ceil(t), 1), 64)
