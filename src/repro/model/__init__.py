"""Analytic model layer: conflict ratios, Turán bounds, seating, profiles."""

from repro.model.conflict_ratio import (
    ConflictCurve,
    conflict_ratio_curve,
    estimate_conflict_ratio,
    estimate_em,
    estimate_kbar,
    exact_conflict_ratio,
    exact_kbar,
    first_come_bound,
    first_come_probability,
)
from repro.model.noise import (
    false_trigger_probability,
    suggest_deadband,
    suggest_period,
    window_std,
)
from repro.model.parallelism import (
    ParallelismProfile,
    measure_profile,
    profile_from_run,
    profile_summary,
)
from repro.model.permutation import (
    PrefixSampler,
    committed_mask_csr,
    committed_set,
    conflict_count,
    conflict_ratio_realization,
)
from repro.model.seating import (
    cycle_expected_occupancy,
    expected_mis,
    path_expected_occupancy,
    seating_density_limit,
)
from repro.model.turan import (
    alpha_conflict_bound,
    alpha_conflict_bound_limit,
    em_disjoint_cliques,
    em_kdn,
    initial_derivative,
    predict_mu_linear,
    safe_initial_m,
    turan_bound,
    worst_case_conflict_ratio,
    worst_case_conflict_ratio_approx,
)

__all__ = [
    "ConflictCurve",
    "conflict_ratio_curve",
    "estimate_conflict_ratio",
    "estimate_em",
    "estimate_kbar",
    "exact_conflict_ratio",
    "exact_kbar",
    "first_come_bound",
    "first_come_probability",
    "false_trigger_probability",
    "suggest_deadband",
    "suggest_period",
    "window_std",
    "ParallelismProfile",
    "measure_profile",
    "profile_from_run",
    "profile_summary",
    "PrefixSampler",
    "committed_mask_csr",
    "committed_set",
    "conflict_count",
    "conflict_ratio_realization",
    "cycle_expected_occupancy",
    "expected_mis",
    "path_expected_occupancy",
    "seating_density_limit",
    "alpha_conflict_bound",
    "alpha_conflict_bound_limit",
    "em_disjoint_cliques",
    "em_kdn",
    "initial_derivative",
    "predict_mu_linear",
    "safe_initial_m",
    "turan_bound",
    "worst_case_conflict_ratio",
    "worst_case_conflict_ratio_approx",
]
