"""Graph persistence: native edge lists, DIMACS, and SNAP.

Three formats:

* the native text format — a header ``# nodes <n>`` plus one ``u v`` pair
  per line (0-based), node ids remapped to ``0..n-1`` on write so files
  are stable regardless of the source graph's free-list history;
* the **DIMACS edge format** used by the irregular-algorithms community's
  benchmark inputs — ``p edge <n> <m>`` plus ``e <u> <v>`` lines
  (1-based), comments on ``c`` lines;
* the **SNAP edge-list format** of the Stanford Network Analysis
  Project datasets — bare ``u<TAB>v`` pairs with ``#`` (and ``%``)
  comment lines, no header, and *arbitrary* non-negative node ids.
  Loading remaps ids to dense ``0..n-1`` in first-appearance order,
  deduplicates repeated/reversed edges (SNAP files list directed arcs;
  the conflict graph is undirected), and drops self-loops by default
  (``self_loops="error"`` rejects them instead — a CC-graph edge is a
  conflict between *distinct* tasks).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.errors import GraphError
from repro.graph.ccgraph import CCGraph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "dumps_edgelist",
    "loads_edgelist",
    "dumps_dimacs",
    "loads_dimacs",
    "write_dimacs",
    "read_dimacs",
    "dumps_snap",
    "loads_snap",
    "write_snap",
    "read_snap",
]


def dumps_edgelist(graph: CCGraph) -> str:
    """Serialise *graph* to the edge-list text format."""
    remap = {u: i for i, u in enumerate(graph.nodes())}
    buf = io.StringIO()
    buf.write(f"# nodes {graph.num_nodes}\n")
    for u, v in sorted((remap[u], remap[v]) for u, v in graph.edges()):
        buf.write(f"{u} {v}\n")
    return buf.getvalue()


def loads_edgelist(text: str) -> CCGraph:
    """Parse the edge-list text format back into a :class:`CCGraph`."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("# nodes "):
        raise GraphError("edge-list input missing '# nodes <n>' header")
    try:
        n = int(lines[0].split()[2])
    except (IndexError, ValueError) as exc:
        raise GraphError(f"bad header line {lines[0]!r}") from exc
    if n < 0:
        raise GraphError(f"negative node count {n} in header")
    g = CCGraph.from_edges(n, [])
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"line {lineno}: expected 'u v', got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: non-integer endpoint in {line!r}") from exc
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"line {lineno}: endpoint outside 0..{n - 1}")
        g.add_edge(u, v)
    return g


def dumps_dimacs(graph: CCGraph, comment: str = "") -> str:
    """Serialise *graph* in DIMACS edge format (1-based node ids)."""
    remap = {u: i + 1 for i, u in enumerate(graph.nodes())}
    buf = io.StringIO()
    if comment:
        for line in comment.splitlines():
            buf.write(f"c {line}\n")
    buf.write(f"p edge {graph.num_nodes} {graph.num_edges}\n")
    for u, v in sorted((remap[u], remap[v]) for u, v in graph.edges()):
        buf.write(f"e {u} {v}\n")
    return buf.getvalue()


def loads_dimacs(text: str) -> CCGraph:
    """Parse DIMACS edge format into a :class:`CCGraph` (0-based ids)."""
    g: CCGraph | None = None
    declared_edges = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if g is not None:
                raise GraphError(f"line {lineno}: duplicate problem line")
            if len(parts) != 4 or parts[1] not in ("edge", "col"):
                raise GraphError(f"line {lineno}: malformed problem line {line!r}")
            try:
                n, declared_edges = int(parts[2]), int(parts[3])
            except ValueError as exc:
                raise GraphError(f"line {lineno}: non-integer sizes") from exc
            if n < 0 or declared_edges < 0:
                raise GraphError(f"line {lineno}: negative sizes")
            g = CCGraph.from_edges(n, [])
        elif parts[0] == "e":
            if g is None:
                raise GraphError(f"line {lineno}: edge before problem line")
            if len(parts) != 3:
                raise GraphError(f"line {lineno}: malformed edge line {line!r}")
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise GraphError(f"line {lineno}: non-integer endpoint") from exc
            if not (1 <= u <= g.num_nodes and 1 <= v <= g.num_nodes):
                raise GraphError(f"line {lineno}: endpoint outside 1..{g.num_nodes}")
            g.add_edge(u - 1, v - 1)
        else:
            raise GraphError(f"line {lineno}: unknown record type {parts[0]!r}")
    if g is None:
        raise GraphError("DIMACS input has no problem line")
    if g.num_edges != declared_edges:
        raise GraphError(
            f"problem line declared {declared_edges} edges, found {g.num_edges}"
        )
    return g


def dumps_snap(graph: CCGraph, comment: str = "") -> str:
    """Serialise *graph* as a SNAP edge list (tab-separated, 0-based).

    Node ids are remapped to ``0..n-1`` (iteration order) and each
    undirected edge is written once as ``u<TAB>v`` with ``u < v``.
    Isolated nodes cannot be represented in a bare edge list; a
    ``# Nodes:``/``# Edges:`` comment header records the true counts the
    way the published SNAP datasets do.
    """
    remap = {u: i for i, u in enumerate(graph.nodes())}
    buf = io.StringIO()
    if comment:
        for line in comment.splitlines():
            buf.write(f"# {line}\n")
    buf.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
    buf.write("# FromNodeId\tToNodeId\n")
    for u, v in sorted((remap[u], remap[v]) for u, v in graph.edges()):
        buf.write(f"{u}\t{v}\n")
    return buf.getvalue()


def loads_snap(text: str, *, self_loops: str = "drop") -> CCGraph:
    """Parse a SNAP edge list into a :class:`CCGraph`.

    Accepts the format as published: ``#`` (and ``%``) comment lines and
    blank lines anywhere, whitespace-separated endpoint pairs, arbitrary
    non-negative node ids (remapped to dense ``0..n-1`` in
    first-appearance order, left-to-right per line), duplicate and
    reversed arcs (collapsed onto one undirected edge).  *self_loops*
    chooses the policy for ``u u`` lines: ``"drop"`` (default — the id
    still materialises its node) or ``"error"``.
    """
    if self_loops not in ("drop", "error"):
        raise GraphError(
            f'self_loops must be "drop" or "error", got {self_loops!r}'
        )
    g = CCGraph()
    remap: dict[int, int] = {}

    def node_of(raw_id: int) -> int:
        nid = remap.get(raw_id)
        if nid is None:
            nid = remap[raw_id] = g.add_node()
        return nid

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(
                f"line {lineno}: expected 'u v' endpoint pair, got {line!r}"
            )
        try:
            raw_u, raw_v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(
                f"line {lineno}: non-integer endpoint in {line!r}"
            ) from exc
        if raw_u < 0 or raw_v < 0:
            raise GraphError(f"line {lineno}: negative node id in {line!r}")
        if raw_u == raw_v:
            if self_loops == "error":
                raise GraphError(f"line {lineno}: self-loop on node {raw_u}")
            node_of(raw_u)  # the node exists even though the loop is dropped
            continue
        g.add_edge(node_of(raw_u), node_of(raw_v))  # add_edge is idempotent
    return g


def write_snap(graph: CCGraph, path: "str | Path", comment: str = "") -> None:
    """Write *graph* to *path* as a SNAP edge list."""
    Path(path).write_text(dumps_snap(graph, comment=comment), encoding="utf-8")


def read_snap(path: "str | Path", *, self_loops: str = "drop") -> CCGraph:
    """Read a SNAP edge-list graph from *path*."""
    return loads_snap(
        Path(path).read_text(encoding="utf-8"), self_loops=self_loops
    )


def write_dimacs(graph: CCGraph, path: "str | Path", comment: str = "") -> None:
    """Write *graph* to *path* in DIMACS edge format."""
    Path(path).write_text(dumps_dimacs(graph, comment=comment), encoding="utf-8")


def read_dimacs(path: "str | Path") -> CCGraph:
    """Read a DIMACS edge-format graph from *path*."""
    return loads_dimacs(Path(path).read_text(encoding="utf-8"))


def write_edgelist(graph: CCGraph, path: "str | Path") -> None:
    """Write *graph* to *path* in the edge-list text format."""
    Path(path).write_text(dumps_edgelist(graph), encoding="utf-8")


def read_edgelist(path: "str | Path") -> CCGraph:
    """Read a :class:`CCGraph` from *path*."""
    return loads_edgelist(Path(path).read_text(encoding="utf-8"))
