"""Generators for the CC-graph families used in the paper's analysis.

Three families come straight from the text:

* :func:`union_of_cliques` — the worst-case graph ``K_d^n`` of Remark 2 /
  Thm. 2: ``s = n/(d+1)`` disjoint cliques of size ``d+1``.
* :func:`clique_plus_isolated` — Example 1's ``K_{n²} ∪ D_n`` (one huge
  clique plus isolated nodes), the graph whose maximal-IS size wildly
  overestimates exploitable parallelism.
* :func:`gnm_random` — "edges chosen uniformly at random until desired
  degree is reached" (Fig. 2's random graph), i.e. the G(n, M) model with
  ``M = n·d/2``.

The rest (regular, grid, path/cycle, geometric, power-law) provide degree
profiles for the theory tests (Thm. 2 dominance must hold for *any* graph
of equal ``n`` and ``d``) and for unfriendly-seating cross-checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeneratorError
from repro.graph.ccgraph import CCGraph
from repro.utils.rng import ensure_rng

__all__ = [
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "union_of_cliques",
    "kdn_worst_case",
    "clique_plus_isolated",
    "gnm_random",
    "gnp_random",
    "random_regular",
    "random_geometric",
    "powerlaw_graph",
]


def empty_graph(n: int) -> CCGraph:
    """``n`` isolated nodes — a fully parallel CC graph."""
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    return CCGraph.from_edges(n, [])


def complete_graph(n: int) -> CCGraph:
    """``K_n`` — a fully serial CC graph."""
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    return CCGraph.from_edges(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def path_graph(n: int) -> CCGraph:
    """Path ``P_n`` (the classic unfriendly-seating bench)."""
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    return CCGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> CCGraph:
    """Cycle ``C_n`` (unfriendly *theatre* seating)."""
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    if n < 3:
        return path_graph(n)
    edges = [(i, i + 1) for i in range(n - 1)] + [(n - 1, 0)]
    return CCGraph.from_edges(n, edges)


def grid_graph(rows: int, cols: int) -> CCGraph:
    """``rows × cols`` 4-neighbour mesh (statistical-physics seating)."""
    if rows < 0 or cols < 0:
        raise GeneratorError(f"negative grid dimension ({rows}, {cols})")
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return CCGraph.from_edges(rows * cols, edges)


def union_of_cliques(num_cliques: int, clique_size: int) -> CCGraph:
    """``num_cliques`` disjoint cliques of ``clique_size`` nodes each."""
    if num_cliques < 0:
        raise GeneratorError(f"negative clique count {num_cliques}")
    if clique_size < 1:
        raise GeneratorError(f"clique size must be >= 1, got {clique_size}")
    edges: list[tuple[int, int]] = []
    for k in range(num_cliques):
        base = k * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    return CCGraph.from_edges(num_cliques * clique_size, edges)


def kdn_worst_case(n: int, d: int) -> CCGraph:
    """The paper's ``K_d^n``: ``n`` nodes, average degree ``d``.

    Requires ``(d+1) | n`` (the paper's simplifying assumption in Thm. 3).
    """
    if n < 0 or d < 0:
        raise GeneratorError(f"invalid K_d^n parameters n={n}, d={d}")
    if d + 1 > max(n, 1):
        raise GeneratorError(f"degree d={d} impossible with n={n} nodes")
    if n % (d + 1) != 0:
        raise GeneratorError(f"K_d^n needs (d+1) | n; got n={n}, d={d}")
    return union_of_cliques(n // (d + 1), d + 1)


def clique_plus_isolated(clique_size: int, num_isolated: int) -> CCGraph:
    """A ``K_clique_size`` plus ``num_isolated`` disconnected nodes.

    Example 1 uses ``clique_size = n²`` and ``num_isolated = n``: every
    maximal independent set has size ``n + 1`` yet a uniform random choice
    of ``n + 1`` nodes contains ≈2 independent nodes in expectation.
    """
    if clique_size < 0 or num_isolated < 0:
        raise GeneratorError(
            f"negative sizes clique={clique_size}, isolated={num_isolated}"
        )
    edges = [
        (u, v) for u in range(clique_size) for v in range(u + 1, clique_size)
    ]
    return CCGraph.from_edges(clique_size + num_isolated, edges)


def gnm_random(n: int, avg_degree: float, seed=None) -> CCGraph:
    """G(n, M) with ``M = round(n·avg_degree/2)`` uniform distinct edges.

    This is Fig. 2's "random graph": edges drawn uniformly without
    replacement until the desired average degree is reached.
    """
    rng = ensure_rng(seed)
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    m = int(round(n * avg_degree / 2.0))
    max_edges = n * (n - 1) // 2
    if m < 0 or m > max_edges:
        raise GeneratorError(
            f"requested {m} edges but K_{n} has only {max_edges}"
        )
    g = CCGraph.from_edges(n, [])
    if m == 0:
        return g
    # Sample edge codes without replacement from the triangular index space.
    # For the sparse regimes we use (m << max_edges), rejection batching is
    # far cheaper than materialising all C(n,2) codes.
    chosen: set[int] = set()
    while len(chosen) < m:
        need = m - len(chosen)
        codes = rng.integers(0, max_edges, size=max(64, 2 * need))
        for code in codes:
            chosen.add(int(code))
            if len(chosen) == m:
                break
    for code in chosen:
        # decode triangular index: row u such that u*(2n-u-1)/2 <= code
        u = int(
            math.floor(
                (2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * code)) / 2.0
            )
        )
        base = u * (2 * n - u - 1) // 2
        while base > code:  # guard float rounding at row boundaries
            u -= 1
            base = u * (2 * n - u - 1) // 2
        while u + 1 < n and (u + 1) * (2 * n - (u + 1) - 1) // 2 <= code:
            u += 1
            base = u * (2 * n - u - 1) // 2
        v = u + 1 + (code - base)
        g.add_edge(u, v)
    return g


def gnp_random(n: int, p: float, seed=None) -> CCGraph:
    """Erdős–Rényi G(n, p) via geometric edge skipping (O(n + m))."""
    rng = ensure_rng(seed)
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    if not 0.0 <= p <= 1.0:
        raise GeneratorError(f"edge probability p={p} outside [0, 1]")
    g = CCGraph.from_edges(n, [])
    if p == 0.0 or n < 2:
        return g
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                g.add_edge(u, v)
        return g
    # Batagelj–Brandes skipping over the triangular edge enumeration.
    lp = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        lr = math.log(1.0 - rng.random())
        w = w + 1 + int(lr / lp)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(v, w)
    return g


def random_regular(n: int, d: int, seed=None, max_retries: int = 200) -> CCGraph:
    """Random ``d``-regular graph.

    For small degree (``d ≤ 6``) the classic configuration/pairing model
    with rejection is used; its success probability decays like
    ``exp(−(d²−1)/4)``, so for denser graphs we delegate to networkx's
    Steger–Wormald style generator, which succeeds w.h.p. at any degree.
    """
    rng = ensure_rng(seed)
    if n < 0 or d < 0:
        raise GeneratorError(f"invalid regular-graph parameters n={n}, d={d}")
    if (n * d) % 2 != 0:
        raise GeneratorError(f"n·d must be even for a d-regular graph (n={n}, d={d})")
    if d >= n and n > 0:
        raise GeneratorError(f"degree d={d} impossible with n={n} nodes")
    if n == 0 or d == 0:
        return empty_graph(n)
    if d > 6:
        import networkx as nx

        nxg = nx.random_regular_graph(d, n, seed=int(rng.integers(0, 2**31 - 1)))
        g = CCGraph.from_edges(n, [])
        for u, v in nxg.edges():
            g.add_edge(int(u), int(v))
        return g
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    for _ in range(max_retries):
        perm = rng.permutation(stubs)
        us, vs = perm[0::2], perm[1::2]
        if np.any(us == vs):
            continue
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        codes = lo * n + hi
        if np.unique(codes).shape[0] != codes.shape[0]:
            continue
        g = CCGraph.from_edges(n, [])
        for u, v in zip(lo.tolist(), hi.tolist()):
            g.add_edge(u, v)
        return g
    raise GeneratorError(
        f"pairing model failed to produce a simple graph after {max_retries} tries "
        f"(n={n}, d={d})"
    )


def random_geometric(n: int, radius: float, seed=None) -> CCGraph:
    """Random geometric graph on the unit square.

    Conflicts-by-proximity mimic cavity overlaps in mesh refinement: two
    tasks conflict when their working regions intersect.
    """
    rng = ensure_rng(seed)
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    if radius < 0:
        raise GeneratorError(f"negative radius {radius}")
    pts = rng.random((n, 2))
    g = CCGraph.from_edges(n, [])
    if n == 0:
        return g
    # Cell-bucket neighbour search keeps this O(n) for constant density.
    cell = max(radius, 1e-12)
    buckets: dict[tuple[int, int], list[int]] = {}
    for i, (x, y) in enumerate(pts):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(i)
    r2 = radius * radius
    for (cx, cy), members in buckets.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                other = buckets.get((cx + dx, cy + dy))
                if other is None:
                    continue
                for i in members:
                    for j in other:
                        if i < j:
                            diff = pts[i] - pts[j]
                            if diff[0] * diff[0] + diff[1] * diff[1] <= r2:
                                g.add_edge(i, j)
    for i in range(n):
        g.set_data(i, (float(pts[i, 0]), float(pts[i, 1])))
    return g


def powerlaw_graph(n: int, attach: int, seed=None) -> CCGraph:
    """Barabási–Albert preferential attachment (skewed conflict degrees).

    Each new node attaches to ``attach`` existing nodes chosen with
    probability proportional to degree (repeated-endpoint sampling).
    """
    rng = ensure_rng(seed)
    if n < 0:
        raise GeneratorError(f"negative node count {n}")
    if attach < 1:
        raise GeneratorError(f"attachment count must be >= 1, got {attach}")
    if n <= attach:
        return complete_graph(n)
    g = complete_graph(attach + 1)
    for _ in range(attach + 1, n):
        g.add_node()
    # endpoint multiset for preferential sampling
    endpoints: list[int] = []
    for u, v in g.edges():
        endpoints.extend((u, v))
    for u in range(attach + 1, n):
        targets: set[int] = set()
        while len(targets) < attach:
            if endpoints:
                t = endpoints[int(rng.integers(0, len(endpoints)))]
            else:  # pragma: no cover - only if attach+1 == 1
                t = int(rng.integers(0, u))
            if t != u:
                targets.add(t)
        for t in targets:
            g.add_edge(u, t)
            endpoints.extend((u, t))
    return g
