"""CC-graph substrate: dynamic conflict graphs, generators, morphs, I/O."""

from repro.graph.ccgraph import CCGraph, GraphSnapshot
from repro.graph.generators import (
    clique_plus_isolated,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnm_random,
    gnp_random,
    grid_graph,
    kdn_worst_case,
    path_graph,
    powerlaw_graph,
    random_geometric,
    random_regular,
    union_of_cliques,
)
from repro.graph.io import (
    dumps_dimacs,
    dumps_edgelist,
    loads_dimacs,
    loads_edgelist,
    read_dimacs,
    read_edgelist,
    write_dimacs,
    write_edgelist,
)
from repro.graph.morph import attach_clique, boundary, contract_nodes, replace_cavity

__all__ = [
    "CCGraph",
    "GraphSnapshot",
    "clique_plus_isolated",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "gnm_random",
    "gnp_random",
    "grid_graph",
    "kdn_worst_case",
    "path_graph",
    "powerlaw_graph",
    "random_geometric",
    "random_regular",
    "union_of_cliques",
    "dumps_dimacs",
    "dumps_edgelist",
    "loads_dimacs",
    "loads_edgelist",
    "read_dimacs",
    "read_edgelist",
    "write_dimacs",
    "write_edgelist",
    "attach_clique",
    "boundary",
    "contract_nodes",
    "replace_cavity",
]
