"""Edge-cut graph partitioning with halo views for sharded execution.

A :class:`GraphPartition` assigns every node of a :class:`CCGraph` to
exactly one of ``k`` shards.  The assignment is a *total function over
node ids* — ids the partitioner has never seen (nodes added by later
graph morphs) fall back to a deterministic ``id % k`` rule — so a
partition built once stays valid while the graph mutates underneath it,
mirroring how :class:`~repro.graph.ccgraph.ConflictDeltaView` absorbs
morphs without rebuilding.

On top of the assignment the module provides the *halo* vocabulary of
distributed graph processing:

* the **boundary** of a shard: its own nodes with at least one neighbour
  in another shard;
* the **halo** (ghost nodes) of a shard: the nodes of *other* shards
  adjacent to it — exactly the set a shard worker must hear about before
  it can commit a boundary node;
* per-shard **intra-edge** arrays and the global **cut-edge** array,
  projected from the memoised CSR snapshot.

Finally it implements the two-phase commit rule used by
``ShardedCommitOrder`` (:mod:`repro.runtime.policies`) and the
process-backed shard runtime (:mod:`repro.runtime.sharded`):

* **phase 1 (local)** — each shard resolves its slice of the batch with
  the usual greedy walk, consulting only intra-shard edges;
* **phase 2 (halo exchange)** — locally committed tasks are walked once
  more in global batch order and survive iff no earlier *surviving*
  cross-shard neighbour committed.

The composition never commits two adjacent tasks in one round (phase 1
rules out intra-shard pairs, phase 2 rules out cut pairs), so sharding
preserves conflict-serializability; it may abort strictly more than the
global greedy walk — that surplus is the price of bounded cross-shard
staleness, and ``shards=1`` degenerates to the plain greedy walk with no
cut edges at all.  Both a reference implementation and a vectorised
kernel-backed one are provided; the differential suite pins them to each
other byte-for-byte.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.ccgraph import CCGraph, ConflictDeltaView

__all__ = [
    "GraphPartition",
    "partition_graph",
    "two_phase_commit_mask",
    "two_phase_commit_mask_fast",
    "local_greedy_positions",
]


class GraphPartition:
    """A total, morph-stable assignment of node ids to ``shards`` shards.

    Nodes known at build time carry a balanced contiguous-block
    assignment (sorted ids split into near-equal runs, which keeps
    id-local adjacency — paths, grids, generator output — mostly
    intra-shard); any id beyond the build-time table maps to
    ``id % shards``.  Node ids are never reused by :class:`CCGraph`, so
    the function stays stable under arbitrary add/remove sequences.
    """

    def __init__(self, shards: int, lookup: np.ndarray):
        if shards < 1:
            raise GraphError(f"shard count must be >= 1, got {shards}")
        self.shards = int(shards)
        self._lookup = np.ascontiguousarray(lookup, dtype=np.int64)

    # -- assignment ------------------------------------------------------
    def shard_of(self, nid: int) -> int:
        """Shard owning node id *nid* (total: any int >= 0 has an owner)."""
        if 0 <= nid < self._lookup.size:
            return int(self._lookup[nid])
        return int(nid) % self.shards

    def shard_of_array(self, ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of` over an int array of node ids."""
        ids = np.asarray(ids, dtype=np.int64)
        out = ids % self.shards
        known = (ids >= 0) & (ids < self._lookup.size)
        out[known] = self._lookup[ids[known]]
        return out

    # -- views over a live graph ----------------------------------------
    def members(self, graph: "CCGraph", shard: int) -> "list[int]":
        """Live nodes owned by *shard*, in ascending id order."""
        self._check_shard(shard)
        return [n for n in sorted(graph.nodes()) if self.shard_of(n) == shard]

    def boundary(self, graph: "CCGraph", shard: int) -> "frozenset[int]":
        """Nodes of *shard* with at least one neighbour in another shard."""
        self._check_shard(shard)
        return frozenset(
            n
            for n in graph.nodes()
            if self.shard_of(n) == shard
            and any(self.shard_of(b) != shard for b in graph.neighbors(n))
        )

    def halo(self, graph: "CCGraph", shard: int) -> "frozenset[int]":
        """Ghost nodes of *shard*: foreign nodes adjacent to its members."""
        self._check_shard(shard)
        ghosts: set[int] = set()
        for n in graph.nodes():
            if self.shard_of(n) != shard:
                continue
            for b in graph.neighbors(n):
                if self.shard_of(b) != shard:
                    ghosts.add(b)
        return frozenset(ghosts)

    def edge_split(
        self, graph: "CCGraph"
    ) -> "tuple[dict[int, np.ndarray], np.ndarray]":
        """Split the live edge set into per-shard intra edges and cut edges.

        Returns ``(intra, cut)`` where ``intra[s]`` is an ``(e_s, 2)``
        int64 array of node-id pairs with both endpoints owned by shard
        ``s`` and ``cut`` is the ``(c, 2)`` array of cross-shard pairs.
        Projected from the memoised CSR snapshot, so repeated calls on an
        unchanged graph are cheap.
        """
        snap = graph.csr()
        iu, iv = snap.edge_list
        u = snap.node_ids[iu]
        v = snap.node_ids[iv]
        su = self.shard_of_array(u)
        sv = self.shard_of_array(v)
        same = su == sv
        pairs = np.stack([u, v], axis=1)
        intra = {
            s: pairs[same & (su == s)] for s in range(self.shards)
        }
        return intra, pairs[~same]

    def cut_fraction(self, graph: "CCGraph") -> float:
        """Fraction of live edges crossing a shard boundary."""
        total = graph.num_edges
        if total == 0:
            return 0.0
        _, cut = self.edge_split(graph)
        return len(cut) / total

    def describe(self) -> "dict[str, object]":
        return {"type": "block", "shards": self.shards, "table": self._lookup.size}

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise GraphError(
                f"shard index {shard} outside [0, {self.shards})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GraphPartition(shards={self.shards}, table={self._lookup.size})"


def partition_graph(graph: "CCGraph", shards: int) -> GraphPartition:
    """Balanced edge-cut partition of *graph* into *shards* shards.

    Deterministic: sorted live node ids are split into ``shards``
    contiguous near-equal blocks (``np.array_split`` semantics).  Ids in
    the gaps — and any id minted after this call — follow the
    ``id % shards`` fallback, so the partition remains a total function
    under later morphs.
    """
    if shards < 1:
        raise GraphError(f"shard count must be >= 1, got {shards}")
    ids = np.asarray(sorted(graph.nodes()), dtype=np.int64)
    size = int(ids[-1]) + 1 if ids.size else 0
    lookup = np.arange(size, dtype=np.int64) % shards
    for s, block in enumerate(np.array_split(ids, shards)):
        if block.size:
            lookup[block] = s
    return GraphPartition(shards, lookup)


# -- two-phase resolution ----------------------------------------------


def two_phase_commit_mask(
    graph: "CCGraph", partition: GraphPartition, nodes: "Iterable[int]"
) -> "tuple[np.ndarray, np.ndarray]":
    """Reference two-phase (local greedy + halo exchange) commit rule.

    ``nodes`` is the batch's payload nodes in commit order.  Returns
    ``(final, local)`` boolean masks over batch positions: ``local`` is
    the phase-1 (intra-shard greedy) outcome, ``final`` the surviving
    commits after the phase-2 halo exchange.  ``final`` implies
    ``local``.  Raises :class:`GraphError` on dead or duplicate nodes,
    mirroring the reference conflict policy's validation.
    """
    nodes = list(nodes)
    m = len(nodes)
    local = np.zeros(m, dtype=bool)
    final = np.zeros(m, dtype=bool)
    seen: set[int] = set()
    locally_committed: dict[int, int] = {}  # node -> owning shard
    for i, node in enumerate(nodes):
        if not isinstance(node, (int, np.integer)) or node not in graph:
            raise GraphError(f"batch node {node!r} is not a live node")
        if node in seen:
            raise GraphError(f"node {node} appears twice in batch")
        seen.add(node)
        s = partition.shard_of(node)
        if all(
            locally_committed.get(b, -1) != s for b in graph.neighbors(node)
        ):
            local[i] = True
            locally_committed[node] = s
    survivors: dict[int, int] = {}  # node -> owning shard
    for i, node in enumerate(nodes):
        if not local[i]:
            continue
        s = partition.shard_of(node)
        if all(
            survivors.get(b, s) == s for b in graph.neighbors(node)
        ):
            final[i] = True
            survivors[node] = s
    return final, local


def two_phase_commit_mask_fast(
    view: "ConflictDeltaView",
    partition: GraphPartition,
    payloads: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Vectorised two-phase commit rule over the incremental CSR view.

    Mirrors the fast conflict path
    (:meth:`~repro.runtime.conflict.ExplicitGraphPolicy.resolve_fast`):
    project batch payloads onto slots, gather the slot-space edge
    arrays, then run the greedy kernel twice — once on intra-shard pairs
    over the whole batch (phase 1: shards never interact through these
    edges, so one call computes every shard's local greedy at once), and
    once on cut pairs compressed to the locally-committed positions
    (phase 2).  Returns ``(final, local)`` masks, or ``None`` for
    degenerate batches (dead/duplicate nodes) which the caller resolves
    through :func:`two_phase_commit_mask` for exact reference errors.
    """
    # imported here, not at module top: repro.graph must stay importable
    # without dragging in (or cycling through) the runtime package
    from repro.runtime.kernels import greedy_commit_mask_from_slots

    m = len(payloads)
    if m == 0:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=bool)
    payloads = np.asarray(payloads)
    if payloads.dtype.kind != "i":
        return None
    idx = view.project(payloads)
    if idx is None:
        return None
    pos = np.full(view.num_slots, -1, dtype=np.int64)
    pos[idx] = np.arange(m, dtype=np.int64)
    if int(np.count_nonzero(pos >= 0)) != m:
        return None  # duplicate payload nodes
    u, v = view.edge_arrays()
    pu = pos[u]
    pv = pos[v]
    both = np.flatnonzero((pu >= 0) & (pv >= 0))
    pu = pu[both]
    pv = pv[both]
    shard_by_pos = partition.shard_of_array(payloads)
    intra = shard_by_pos[pu] == shard_by_pos[pv]
    local = greedy_commit_mask_from_slots(
        np.maximum(pu[intra], pv[intra]),
        np.minimum(pu[intra], pv[intra]),
        m,
        checked=False,
    )
    cu = pu[~intra]
    cv = pv[~intra]
    live = local[cu] & local[cv]
    cu = cu[live]
    cv = cv[live]
    committed_pos = np.flatnonzero(local)
    rank = np.full(m, -1, dtype=np.int64)
    rank[committed_pos] = np.arange(committed_pos.size, dtype=np.int64)
    ru = rank[cu]
    rv = rank[cv]
    sub = greedy_commit_mask_from_slots(
        np.maximum(ru, rv),
        np.minimum(ru, rv),
        int(committed_pos.size),
        checked=False,
    )
    final = np.zeros(m, dtype=bool)
    final[committed_pos[sub]] = True
    return final, local


def local_greedy_positions(
    adjacency: "dict[int, set[int]]", sub_batch: "list[tuple[int, int]]"
) -> "list[int]":
    """Phase-1 greedy walk of one shard's batch slice, in worker form.

    ``adjacency`` holds the shard's *intra-shard* edges only;
    ``sub_batch`` is the shard's ``(position, node)`` pairs sorted by
    global batch position.  Returns the positions that commit locally.
    Stale adjacency entries pointing at removed nodes are harmless: a
    removed node never reappears in a batch, so its edges never fire —
    the same staleness argument the incremental CSR view relies on.
    """
    committed: set[int] = set()
    out: "list[int]" = []
    empty: "set[int]" = set()
    for pos, node in sub_batch:
        if committed.isdisjoint(adjacency.get(node, empty)):
            committed.add(node)
            out.append(pos)
    return out
