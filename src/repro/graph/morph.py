"""Graph-morphing helpers for dynamic CC graphs.

Amorphous data-parallel operators do more than delete their own node: mesh
refinement replaces a *cavity* of tasks with freshly created ones, Borůvka
contracts components, clustering merges neighbourhoods.  These helpers
express those rewrites on a :class:`~repro.graph.CCGraph` so applications
and synthetic workloads share one vocabulary.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.ccgraph import CCGraph

__all__ = ["replace_cavity", "contract_nodes", "attach_clique", "boundary"]


def boundary(graph: CCGraph, cavity: Iterable[int]) -> set[int]:
    """Nodes outside *cavity* adjacent to at least one cavity node."""
    cav = set(cavity)
    out: set[int] = set()
    for u in cav:
        out |= graph.neighbors(u)
    return out - cav


def replace_cavity(
    graph: CCGraph,
    cavity: Iterable[int],
    num_new: int,
    connect_boundary: bool = True,
    clique_new: bool = True,
) -> list[int]:
    """Delete *cavity* and insert ``num_new`` replacement tasks.

    Mirrors Delaunay refinement: the retriangulated region spawns new
    (possibly bad) triangles that conflict with each other (``clique_new``)
    and with the tasks that surrounded the old cavity
    (``connect_boundary``).  Returns the new node ids.
    """
    cav = list(dict.fromkeys(cavity))
    if not cav:
        raise GraphError("cavity must contain at least one node")
    if num_new < 0:
        raise GraphError(f"cannot create {num_new} nodes")
    rim = boundary(graph, cav)
    for u in cav:
        graph.remove_node(u)
    new_ids = [graph.add_node() for _ in range(num_new)]
    if clique_new:
        for i, u in enumerate(new_ids):
            for v in new_ids[i + 1 :]:
                graph.add_edge(u, v)
    if connect_boundary:
        for u in new_ids:
            for v in rim:
                graph.add_edge(u, v)
    return new_ids


def contract_nodes(graph: CCGraph, nodes: Iterable[int]) -> int:
    """Merge *nodes* into a single fresh node inheriting their union
    neighbourhood (Borůvka-style component contraction).

    Returns the id of the merged node.
    """
    group = list(dict.fromkeys(nodes))
    if not group:
        raise GraphError("cannot contract an empty node set")
    for u in group:
        if u not in graph:
            raise NodeNotFoundError(u)
    rim = boundary(graph, group)
    for u in group:
        graph.remove_node(u)
    merged = graph.add_node()
    for v in rim:
        graph.add_edge(merged, v)
    return merged


def attach_clique(graph: CCGraph, size: int, anchors: Iterable[int] = ()) -> list[int]:
    """Insert a fresh ``size``-clique wired to every *anchor* node.

    Used by synthetic workloads to inject a burst of mutually conflicting
    tasks (a sudden drop in available parallelism).
    """
    if size < 0:
        raise GraphError(f"cannot create {size} nodes")
    anchor_list = list(dict.fromkeys(anchors))
    for a in anchor_list:
        if a not in graph:
            raise NodeNotFoundError(a)
    new_ids = [graph.add_node() for _ in range(size)]
    for i, u in enumerate(new_ids):
        for v in new_ids[i + 1 :]:
            graph.add_edge(u, v)
        for a in anchor_list:
            graph.add_edge(u, a)
    return new_ids
