"""The computations/conflicts (CC) graph.

The paper's model (§2) views an optimistically-parallelised irregular
algorithm as a *dynamic* undirected graph ``G_t = (V_t, E_t)``: nodes are
pending computations (tasks) and edges are run-time conflicts between them.
Executing a task removes its node; the application operator may then morph
the neighbourhood (add nodes, add/remove edges) — e.g. Delaunay refinement
retriangulates a cavity, creating new bad triangles.

:class:`CCGraph` is the mutable substrate shared by the analytic model, the
optimistic runtime and the applications.  Design points:

* **Integer node ids** handed out by an internal counter, never reused, so
  task identity is stable across morphs and the runtime can log per-task
  histories.
* **Set-based adjacency** for O(1) expected edge updates and O(deg) node
  removal — the access pattern of graph morphs is pointer-chasing, not
  array-scannable, which is exactly why these algorithms are "irregular".
* **Frozen CSR snapshots** (:meth:`snapshot`) for the analytic layer: the
  Monte-Carlo estimators sample hundreds of thousands of permutations of a
  *static* graph, and a packed CSR + vectorised NumPy walk is ~50× faster
  than chasing Python sets.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

__all__ = ["CCGraph", "GraphSnapshot", "ConflictDeltaView"]


@dataclass(frozen=True)
class GraphSnapshot:
    """Immutable CSR view of a :class:`CCGraph` at one instant.

    Attributes
    ----------
    node_ids:
        ``int64[n]`` — the graph's node ids in index order.
    indptr, indices:
        standard CSR adjacency over *indices into* ``node_ids`` (not raw
        ids), so downstream vectorised code works on a dense ``0..n-1``
        universe.
    """

    node_ids: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0] // 2)

    @property
    def degrees(self) -> np.ndarray:
        """``int64[n]`` degree of each node in index order."""
        return np.diff(self.indptr)

    @property
    def average_degree(self) -> float:
        """Mean degree ``d = 2|E|/|V|`` (0 for the empty graph)."""
        n = self.num_nodes
        return float(self.indices.shape[0]) / n if n else 0.0

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbour *indices* of node *index* (CSR slice view)."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    @cached_property
    def index_of(self) -> dict[int, int]:
        """Node id → CSR index lookup (built lazily, cached)."""
        return {int(nid): i for i, nid in enumerate(self.node_ids)}

    @cached_property
    def ids_dense(self) -> bool:
        """True when node ids coincide with CSR indices ``0..n-1``.

        Holds for every graph that never had a node removed (generators,
        stationary workloads) and lets the fast path skip the id → index
        translation entirely.
        """
        n = self.num_nodes
        return bool(np.array_equal(self.node_ids, np.arange(n, dtype=np.int64)))

    @cached_property
    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """``(u, v)`` index pairs, one row per undirected edge, ``u < v``.

        Built once per snapshot from the CSR arrays; the engine's fast
        path projects these onto each batch's commit slots instead of
        slicing per-node adjacency.
        """
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        keep = src < self.indices
        return src[keep], self.indices[keep]


class CCGraph:
    """Dynamic undirected computations/conflicts graph.

    Self-loops are rejected (a task never conflicts with itself in the
    model); parallel edges collapse silently (adjacency is a set).  Optional
    per-node payloads let applications attach their task state.
    """

    __slots__ = (
        "_adj",
        "_data",
        "_next_id",
        "_num_edges",
        "_version",
        "_csr",
        "_delta",
        "_morph_hook",
    )

    def __init__(self) -> None:
        self._adj: dict[int, set[int]] = {}
        self._data: dict[int, object] = {}
        self._next_id = 0
        self._num_edges = 0
        # topology version counter + memoised CSR view keyed on it; lets
        # the engine's fast path reuse one snapshot across steps when the
        # graph does not morph (stationary workloads never rebuild).
        self._version = 0
        self._csr: "tuple[int, GraphSnapshot] | None" = None
        # incrementally-maintained conflict projection; created on first
        # conflict_view() call and fed by the mutation hooks below (one
        # is-None test per mutation when no view exists).
        self._delta: "ConflictDeltaView | None" = None
        # optional morph observer (set_morph_hook); same one-is-None-test
        # cost model as _delta.  The workload-trace recorder uses it to
        # attribute graph morphs to the committing task.
        self._morph_hook: "object | None" = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Iterable[tuple[int, int]]
    ) -> "CCGraph":
        """Build a graph with nodes ``0..num_nodes-1`` and the given edges."""
        g = cls()
        for _ in range(num_nodes):
            g.add_node()
        for u, v in edges:
            g.add_edge(u, v)
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "CCGraph":
        """Import an undirected :class:`networkx.Graph`.

        Arbitrary node labels are remapped to ``0..n-1`` (sorted by their
        repr for determinism); self-loops are dropped (a task cannot
        conflict with itself in the model).
        """
        nodes = sorted(nxg.nodes(), key=repr)
        index = {node: i for i, node in enumerate(nodes)}
        g = cls.from_edges(len(nodes), [])
        for u, v in nxg.edges():
            if u != v:
                g.add_edge(index[u], index[v])
        return g

    def add_node(self, data: object | None = None) -> int:
        """Create an isolated node, returning its fresh id."""
        nid = self._next_id
        self._next_id += 1
        self._adj[nid] = set()
        self._version += 1
        if self._delta is not None:
            self._delta._record_add_node(nid)
        if self._morph_hook is not None:
            self._morph_hook("add_node", nid)
        if data is not None:
            self._data[nid] = data
        return nid

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected conflict edge ``{u, v}`` (idempotent)."""
        if u == v:
            raise GraphError(f"self-loop on node {u} is not a conflict")
        au = self._adj.get(u)
        av = self._adj.get(v)
        if au is None:
            raise NodeNotFoundError(u)
        if av is None:
            raise NodeNotFoundError(v)
        if v not in au:
            au.add(v)
            av.add(u)
            self._num_edges += 1
            self._version += 1
            if self._delta is not None:
                self._delta._record_add_edge(u, v)
            if self._morph_hook is not None:
                self._morph_hook("add_edge", u, v)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``; raises if absent."""
        au = self._adj.get(u)
        av = self._adj.get(v)
        if au is None:
            raise NodeNotFoundError(u)
        if av is None:
            raise NodeNotFoundError(v)
        if v not in au:
            raise EdgeNotFoundError(u, v)
        au.discard(v)
        av.discard(u)
        self._num_edges -= 1
        self._version += 1
        if self._delta is not None:
            self._delta._record_remove_edge()
        if self._morph_hook is not None:
            self._morph_hook("remove_edge", u, v)

    def remove_node(self, u: int) -> None:
        """Remove node *u* and all incident edges (a task commit)."""
        neigh = self._adj.get(u)
        if neigh is None:
            raise NodeNotFoundError(u)
        if self._delta is not None:
            self._delta._record_remove_node(u, len(neigh))
        for v in neigh:
            self._adj[v].discard(u)
        self._num_edges -= len(neigh)
        del self._adj[u]
        self._data.pop(u, None)
        self._version += 1
        if self._morph_hook is not None:
            self._morph_hook("remove_node", u)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, u: Hashable) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def version(self) -> int:
        """Monotone topology version: bumps on every structural mutation."""
        return self._version

    def set_morph_hook(self, hook) -> None:
        """Install (or, with ``None``, remove) a morph observer.

        *hook* is called after every structural mutation as
        ``hook("add_node", nid)``, ``hook("add_edge", u, v)``,
        ``hook("remove_edge", u, v)`` or ``hook("remove_node", u)``.
        At most one hook is active at a time; installing over an existing
        one raises so two observers cannot silently drop each other's
        morphs.  The hook must not mutate the graph.
        """
        if hook is not None and self._morph_hook is not None:
            raise GraphError("a morph hook is already installed on this graph")
        self._morph_hook = hook

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def average_degree(self) -> float:
        """Mean degree ``d = 2|E|/|V|`` (0 for the empty graph)."""
        n = len(self._adj)
        return 2.0 * self._num_edges / n if n else 0.0

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the conflict edge ``{u, v}`` is present."""
        au = self._adj.get(u)
        return au is not None and v in au

    def degree(self, u: int) -> int:
        """Number of conflicts incident to node *u*."""
        neigh = self._adj.get(u)
        if neigh is None:
            raise NodeNotFoundError(u)
        return len(neigh)

    def neighbors(self, u: int) -> frozenset[int]:
        """Immutable view of *u*'s neighbourhood (safe during mutation)."""
        neigh = self._adj.get(u)
        if neigh is None:
            raise NodeNotFoundError(u)
        return frozenset(neigh)

    def nodes(self) -> list[int]:
        """Current node ids (insertion order)."""
        return list(self._adj)

    def edges(self) -> list[tuple[int, int]]:
        """Current edges as ``(min, max)`` pairs, each reported once."""
        return [(u, v) for u, vs in self._adj.items() for v in vs if u < v]

    def get_data(self, u: int) -> object | None:
        """Per-node payload (``None`` when unset)."""
        if u not in self._adj:
            raise NodeNotFoundError(u)
        return self._data.get(u)

    def set_data(self, u: int, data: object) -> None:
        """Attach a payload to node *u*."""
        if u not in self._adj:
            raise NodeNotFoundError(u)
        self._data[u] = data

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def copy(self) -> "CCGraph":
        """Deep-copy topology and shallow-copy payload references."""
        g = CCGraph()
        g._adj = {u: set(vs) for u, vs in self._adj.items()}
        g._data = dict(self._data)
        g._next_id = self._next_id
        g._num_edges = self._num_edges
        return g

    def induced_subgraph(self, nodes: Iterable[int]) -> "CCGraph":
        """Subgraph induced by *nodes*; ids are preserved."""
        keep = set(nodes)
        missing = keep - self._adj.keys()
        if missing:
            raise NodeNotFoundError(min(missing))
        g = CCGraph()
        g._adj = {u: self._adj[u] & keep for u in keep}
        g._data = {u: self._data[u] for u in keep if u in self._data}
        g._next_id = self._next_id
        g._num_edges = sum(len(vs) for vs in g._adj.values()) // 2
        return g

    def snapshot(self) -> GraphSnapshot:
        """Freeze the current topology into a CSR :class:`GraphSnapshot`."""
        node_ids = np.fromiter(self._adj.keys(), dtype=np.int64, count=len(self._adj))
        index_of = {int(nid): i for i, nid in enumerate(node_ids)}
        degrees = np.fromiter(
            (len(self._adj[int(nid)]) for nid in node_ids),
            dtype=np.int64,
            count=node_ids.shape[0],
        )
        indptr = np.zeros(node_ids.shape[0] + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for i, nid in enumerate(node_ids):
            neigh = self._adj[int(nid)]
            start = indptr[i]
            for j, v in enumerate(neigh):
                indices[start + j] = index_of[v]
        return GraphSnapshot(node_ids=node_ids, indptr=indptr, indices=indices)

    def csr(self) -> GraphSnapshot:
        """Memoised CSR view, rebuilt only after a structural mutation.

        The engine's fast path calls this every step; on stationary
        workloads (no graph morphs between steps) it is a version check
        plus a cache hit, so the CSR build cost amortises to zero.
        """
        cached = self._csr
        if cached is not None and cached[0] == self._version:
            return cached[1]
        snap = self.snapshot()
        self._csr = (self._version, snap)
        return snap

    def conflict_view(self) -> "ConflictDeltaView":
        """Incrementally-maintained conflict projection of this graph.

        Unlike :meth:`csr`, which throws its snapshot away on *any*
        mutation, the returned view absorbs the morphs the engine's
        workloads actually perform — node removals (commits) and node/edge
        additions (new work) — in O(delta), rebuilding only on edge
        removals or when compaction pays (see
        :meth:`ConflictDeltaView.refresh`).  The first call builds the
        view and registers it with the mutation hooks; later calls
        refresh and return the same instance.
        """
        view = self._delta
        if view is None:
            view = ConflictDeltaView(self)
            self._delta = view
        view.refresh()
        return view

    def to_networkx(self):
        """Export to :class:`networkx.Graph` (for tests and inspection)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:
        return f"CCGraph(n={self.num_nodes}, m={self.num_edges}, d={self.average_degree:.3g})"


class ConflictDeltaView:
    """Tombstoned slot projection of a :class:`CCGraph`, updated in O(delta).

    The engine's fast conflict path needs two things per step: a map from
    task payloads (node ids) to a dense slot universe, and the edge list
    over those slots.  :meth:`CCGraph.csr` delivers both but rebuilds the
    whole snapshot after *any* mutation — on morphing workloads that is a
    full Python adjacency walk every step.  This view keeps both
    structures alive across morphs instead:

    * ``id → slot`` is one ``int64`` array indexed by node id (ids are
      never reused, so it only ever grows); removing a node writes a
      ``-1`` tombstone, adding one appends a fresh slot;
    * added edges accumulate in pending lists, consolidated into the edge
      arrays lazily on :meth:`refresh`;
    * removed nodes leave their incident edges in place as *stale* edges.
      Staleness is sound because every stale edge has a tombstoned
      endpoint: batch payloads are live nodes, so a stale edge can never
      project onto two batch slots and never changes a resolution.  Only
      :meth:`CCGraph.remove_edge` — which disconnects two *live* nodes —
      invalidates the edge arrays, and it marks the view dirty for a full
      rebuild.

    Rebuilds also trigger when compaction pays: once stale edges are the
    majority of the arrays, or tombstoned slots dominate the slot
    universe, one rebuild is cheaper than dragging the garbage through
    every step's projection.  :attr:`rebuilds` counts them — on morphing
    workloads it grows logarithmically, not per step (the step benchmark
    asserts this).

    The morph-fuzz suite holds the view to full-snapshot equality after
    arbitrary mutation sequences.
    """

    __slots__ = (
        "_graph",
        "_id_to_slot",
        "_edge_u",
        "_edge_v",
        "_pending_u",
        "_pending_v",
        "num_slots",
        "_live",
        "_stale",
        "_dirty",
        "rebuilds",
    )

    def __init__(self, graph: CCGraph):
        self._graph = graph
        self._pending_u: list[int] = []
        self._pending_v: list[int] = []
        self._dirty = True  # first refresh() builds everything
        self.rebuilds = 0

    # -- mutation hooks (called by CCGraph, mutation-time state) --------
    def _record_add_node(self, nid: int) -> None:
        if self._dirty:
            return
        table = self._id_to_slot
        if nid >= table.shape[0]:
            grown = np.full(max(2 * table.shape[0], nid + 1), -1, dtype=np.int64)
            grown[: table.shape[0]] = table
            self._id_to_slot = table = grown
        table[nid] = self.num_slots
        self.num_slots += 1
        self._live += 1

    def _record_remove_node(self, nid: int, degree: int) -> None:
        # called *before* the adjacency is torn down, so *degree* counts
        # the edges that are about to go stale
        if self._dirty:
            return
        self._id_to_slot[nid] = -1
        self._live -= 1
        self._stale += degree

    def _record_add_edge(self, u: int, v: int) -> None:
        # both endpoints are live (CCGraph validated them), so their
        # slots are current; consolidation into the arrays is deferred
        if self._dirty:
            return
        table = self._id_to_slot
        self._pending_u.append(int(table[u]))
        self._pending_v.append(int(table[v]))

    def _record_remove_edge(self) -> None:
        # the one mutation that can leave a both-endpoints-live edge in
        # the arrays: no O(delta) story, rebuild on next refresh
        self._dirty = True

    # -- maintenance ----------------------------------------------------
    def refresh(self) -> None:
        """Bring the view up to date: consolidate, compact, or no-op."""
        if self._dirty:
            self._rebuild()
            return
        total_edges = self._edge_u.shape[0] + len(self._pending_u)
        if 2 * self._stale > total_edges or self.num_slots > 2 * self._live + 64:
            self._rebuild()
            return
        if self._pending_u:
            pend_u = np.asarray(self._pending_u, dtype=np.int64)
            pend_v = np.asarray(self._pending_v, dtype=np.int64)
            self._edge_u = np.concatenate([self._edge_u, pend_u])
            self._edge_v = np.concatenate([self._edge_v, pend_v])
            self._pending_u.clear()
            self._pending_v.clear()

    def _rebuild(self) -> None:
        graph = self._graph
        snap = graph.snapshot()
        n = snap.num_nodes
        table = np.full(max(graph._next_id, 1), -1, dtype=np.int64)
        table[snap.node_ids] = np.arange(n, dtype=np.int64)
        self._id_to_slot = table
        self._edge_u, self._edge_v = snap.edge_list
        self._pending_u.clear()
        self._pending_v.clear()
        self.num_slots = n
        self._live = n
        self._stale = 0
        self._dirty = False
        self.rebuilds += 1

    # -- queries (valid after refresh) ----------------------------------
    def project(self, payloads: np.ndarray) -> "np.ndarray | None":
        """Slots of *payloads* (int array of node ids), or ``None``.

        ``None`` means at least one payload is out of range or
        tombstoned (a dead node) — the caller falls back to the
        reference walk, which raises the exact domain error.
        """
        table = self._id_to_slot
        if payloads.shape[0] == 0:
            return payloads.astype(np.int64, copy=False)
        if int(payloads.min()) < 0 or int(payloads.max()) >= table.shape[0]:
            return None
        slots = table[payloads]
        if int(slots.min()) < 0:
            return None
        return slots

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(u, v)`` slot pairs, one per edge, stale edges included.

        Consumers must mask against live batch slots (projection yields
        ``-1`` for every stale endpoint), exactly as the fast path's
        batch filter already does.
        """
        return self._edge_u, self._edge_v
