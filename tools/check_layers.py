#!/usr/bin/env python
"""Import-layering lint for the ``repro`` package.

The codebase is layered — each module may import only from its own layer
or lower ones.  The intended order (low to high)::

    errors / _version
    utils / testing
    graph
    model
    runtime primitives (task, workset, conflict, kernels, costs, stats, ...)
    runtime.core
    runtime.policies
    runtime (engine, ordered, workloads, ...)
    control
    obs
    apps
    config
    registry
    experiments
    api / repro (package root)

A module-level import that reaches *up* the stack (a back-edge) couples a
low layer to a high one and eventually turns into an import cycle; this
lint fails CI on any such edge.  Imports inside functions/methods and
under ``if TYPE_CHECKING:`` are deliberately exempt — they are the
sanctioned mechanism for a lower layer to *optionally* use a higher one
at call time (e.g. the runtime attaching to an active ``repro.obs``
recorder).

A few *downward* edges are banned too (``FORBIDDEN_EDGES``): the apps
layer may not import ``repro.runtime.engine`` / ``repro.runtime.ordered``
at module level — apps describe workloads, and which engine family runs
them is wired at call time by ``make_engine`` / the registry.

Usage::

    python tools/check_layers.py [--src src] [--verbose]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: layer rank per module prefix; longest (most specific) prefix wins.
#: a module may import only modules of equal or lower rank.
LAYERS: dict[str, int] = {
    "repro.errors": 0,
    "repro._version": 0,
    "repro.utils": 1,
    "repro.testing": 1,
    "repro.graph": 2,
    "repro.model": 3,
    # pure-array kernels shared by the model's estimators and the
    # runtime's fast path; depends on numpy alone, so it sits with graph
    "repro.runtime.kernels": 2,
    # the edge-cut partitioner is graph vocabulary (its kernel use is
    # call-time only), so it shares the graph layer
    "repro.graph.partition": 2,
    # runtime primitives every runtime module builds on; supervised
    # child processes are such a primitive (extracted from the sweep
    # harness so the shard runtime can use them without an up-reach)
    "repro.runtime.task": 4,
    "repro.runtime.stats": 4,
    "repro.runtime.workset": 4,
    "repro.runtime.active_set": 4,
    "repro.runtime.costs": 4,
    "repro.runtime.conflict": 4,
    "repro.runtime.threads": 4,
    "repro.runtime.supervise": 4,
    # the step pipeline, then the order policies plugged into it
    "repro.runtime.core": 5,
    "repro.runtime.policies": 6,
    # the rest of the runtime (engine/ordered shims, workloads,
    # recording, the process-backed shard runtime)
    "repro.runtime": 7,
    "repro.runtime.sharded": 7,
    "repro.control": 8,
    "repro.obs": 9,
    "repro.apps": 10,
    "repro.config": 11,
    "repro.registry": 12,
    "repro.experiments": 13,
    "repro.api": 14,
    "repro": 15,  # the package root facade re-exports everything
}


#: module-level import edges banned even though they point *down* the
#: stack.  Each entry is (importer prefix, imported module, exact, why):
#: with ``exact`` False the imported module's submodules are covered
#: too; True bans only the named module (``repro.runtime`` itself is the
#: package facade whose __init__ pulls in the engines, while its
#: primitive submodules stay importable).
FORBIDDEN_EDGES: "tuple[tuple[str, str, bool, str], ...]" = (
    (
        "repro.apps",
        "repro.runtime.engine",
        False,
        "apps wire engines at call time (make_engine), never at import time",
    ),
    (
        "repro.apps",
        "repro.runtime.ordered",
        False,
        "apps wire engines at call time (make_engine), never at import time",
    ),
    (
        "repro.apps",
        "repro.runtime",
        True,
        "the runtime package facade re-exports the engines; import the "
        "specific primitive submodule instead",
    ),
)


def _prefix_match(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def rank_of(module: str) -> "int | None":
    """Layer rank for *module*, or ``None`` for non-repro modules."""
    if module != "repro" and not module.startswith("repro."):
        return None
    candidate = module
    while candidate:
        if candidate in LAYERS:
            return LAYERS[candidate]
        if "." not in candidate:
            break
        candidate = candidate.rsplit(".", 1)[0]
    return None


def module_name(path: Path, src: Path) -> str:
    rel = path.relative_to(src).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class _ImportCollector(ast.NodeVisitor):
    """Module-level imports only: function bodies and TYPE_CHECKING are exempt."""

    def __init__(self, module: str):
        self.module = module
        self.edges: "list[tuple[int, str]]" = []  # (lineno, imported module)

    # don't descend into code that runs at call time, not import time
    def visit_FunctionDef(self, node):  # noqa: N802 - ast API
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_If(self, node):  # noqa: N802 - ast API
        if self._is_type_checking(node.test):
            for clause in node.orelse:
                self.visit(clause)
            return
        self.generic_visit(node)

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
            return True
        return (
            isinstance(test, ast.Attribute)
            and test.attr == "TYPE_CHECKING"
            and isinstance(test.value, ast.Name)
        )

    def visit_Import(self, node):  # noqa: N802 - ast API
        for alias in node.names:
            self.edges.append((node.lineno, alias.name))

    def visit_ImportFrom(self, node):  # noqa: N802 - ast API
        if node.level:  # relative import: resolve against this module
            base = self.module.rsplit(".", node.level)[0] if "." in self.module else ""
            target = f"{base}.{node.module}" if node.module else base
        else:
            target = node.module or ""
        if target:
            self.edges.append((node.lineno, target))


def check_file(path: Path, src: Path) -> "list[str]":
    module = module_name(path, src)
    my_rank = rank_of(module)
    if my_rank is None:  # not part of the layered package
        return []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    collector = _ImportCollector(module)
    collector.visit(tree)
    violations = []
    for lineno, imported in collector.edges:
        imported_rank = rank_of(imported)
        if imported_rank is None:  # stdlib / third-party
            continue
        if imported_rank > my_rank:
            violations.append(
                f"{path}:{lineno}: {module} (layer {my_rank}) imports "
                f"{imported} (layer {imported_rank}) — back-edge up the stack"
            )
            continue
        for importer, banned, exact, why in FORBIDDEN_EDGES:
            if not _prefix_match(module, importer):
                continue
            if imported == banned or (
                not exact and _prefix_match(imported, banned)
            ):
                violations.append(
                    f"{path}:{lineno}: {module} imports {imported} — "
                    f"forbidden edge: {why}"
                )
                break
    return violations


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", default="src", help="source root (default: src)")
    parser.add_argument(
        "--verbose", action="store_true", help="list every checked module"
    )
    args = parser.parse_args(argv)

    src = Path(args.src)
    package = src / "repro"
    if not package.is_dir():
        print(f"error: {package} is not a directory", file=sys.stderr)
        return 2

    files = sorted(package.rglob("*.py"))
    violations: list[str] = []
    for path in files:
        if args.verbose:
            print(f"checking {module_name(path, src)}")
        violations.extend(check_file(path, src))

    if violations:
        print(f"{len(violations)} layering violation(s):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"layering OK: {len(files)} modules, no back-edges")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
