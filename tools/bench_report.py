#!/usr/bin/env python
"""Aggregate all ``BENCH_*.json`` artifacts into one trajectory table.

Every benchmark gate in CI writes a ``BENCH_<name>.json`` at the repo
root (uploaded as a ``bench-<name>`` artifact).  This tool folds
whichever of them are present into a single report — one row per gated
metric: which benchmark, the gate it is held to, the measured value,
whether it passes, and the PR that introduced it — as a markdown table
(``--md``) and/or a machine-readable JSON summary (``--json``).  The CI
``bench-report`` job downloads all ``bench-*`` artifacts into one
directory and uploads the combined report.

Missing files are noted, not fatal: the report of a partial artifact set
simply has fewer rows.  Exit code is 0 even when a gate row fails —
enforcement belongs to the individual bench jobs, this is the ledger.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: every known benchmark artifact, in trajectory (PR) order
BENCH_FILES = (
    "BENCH_kernels.json",
    "BENCH_obs.json",
    "BENCH_steps.json",
    "BENCH_relaxed.json",
    "BENCH_shard.json",
)


def _row(bench, metric, gate, measured, ok, pr):
    return {
        "bench": bench,
        "metric": metric,
        "gate": gate,
        "measured": measured,
        "pass": ok,
        "pr": pr,
    }


def _extract_kernels(data: dict) -> "list[dict]":
    rows = []
    gate = float(data["gate_min_speedup"])
    speedup = float(data["speedup"])
    rows.append(
        _row("kernels", "fast-path step speedup", f">= {gate}x",
             f"{speedup:.2f}x", speedup >= gate, 2)
    )
    policy = data.get("policy_resolve")
    if policy:
        gate = float(policy["gate_min_speedup"])
        speedup = float(policy["speedup"])
        rows.append(
            _row("kernels", "policy resolve speedup", f">= {gate}x",
                 f"{speedup:.2f}x", speedup >= gate, 6)
        )
    return rows


def _extract_obs(data: dict) -> "list[dict]":
    rows = []
    gate = float(data["gate_max_overhead"])
    overhead = float(data["overhead_fraction"])
    rows.append(
        _row("obs", "instrumentation overhead (median/step)",
             f"< {gate:.0%}", f"{overhead:.2%}", overhead < gate, 4)
    )
    cov_gate = float(data["gate_min_coverage"])
    coverage = float(data["span_coverage"])
    rows.append(
        _row("obs", "span coverage of step wall-clock",
             f">= {cov_gate:.0%}", f"{coverage:.2%}", coverage >= cov_gate, 4)
    )
    sharded = data.get("sharded")
    if sharded:
        gate = float(sharded["gate_max_overhead"])
        overhead = float(sharded["overhead_fraction"])
        rows.append(
            _row("obs",
                 f"distributed tracing overhead (median/round, "
                 f"{sharded.get('shards', '?')} shards)",
                 f"< {gate:.0%}", f"{overhead:.2%}", overhead < gate, 9)
        )
    return rows


def _extract_steps(data: dict) -> "list[dict]":
    gate = float(data["gate_min_speedup"])
    speedup = float(data["speedup_vs_reference"])
    rows = [
        _row("steps", "incremental-select step speedup vs reference",
             f">= {gate}x", f"{speedup:.2f}x", speedup >= gate, 6)
    ]
    if "speedup_vs_fast" in data:
        rows.append(
            _row("steps", "incremental-select step speedup vs fast",
                 "(recorded)", f"{float(data['speedup_vs_fast']):.2f}x",
                 True, 6)
        )
    return rows


def _extract_relaxed(data: dict) -> "list[dict]":
    case = data["matched_work_case"]
    gate = float(case["gate_max_overhead"])
    overhead = float(case["overhead_vs_ordered"])
    return [
        _row("relaxed", "relaxed step overhead vs ordered (matched work)",
             f"<= {gate}x", f"{overhead:.3f}x", overhead <= gate, 7)
    ]


def _extract_shard(data: dict) -> "list[dict]":
    gate = float(data["gate_min_speedup"])
    speedup = float(data["speedup"])
    enforced = bool(data.get("gate_enforced", True))
    label = f">= {gate}x" + ("" if enforced else " (not enforced: <4 CPUs)")
    return [
        _row("shard", "pool speedup at 4 shards vs single worker",
             label, f"{speedup:.2f}x", speedup >= gate or not enforced, 8)
    ]


EXTRACTORS = {
    "BENCH_kernels.json": _extract_kernels,
    "BENCH_obs.json": _extract_obs,
    "BENCH_steps.json": _extract_steps,
    "BENCH_relaxed.json": _extract_relaxed,
    "BENCH_shard.json": _extract_shard,
}


def collect(directory: Path) -> "tuple[list[dict], list[str]]":
    """All gate rows found under *directory*, plus the missing file names."""
    rows: "list[dict]" = []
    missing: "list[str]" = []
    for name in BENCH_FILES:
        path = directory / name
        if not path.exists():
            missing.append(name)
            continue
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            rows.extend(EXTRACTORS[name](data))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            rows.append(
                _row(name.removeprefix("BENCH_").removesuffix(".json"),
                     f"unreadable artifact ({exc})", "-", "-", False, "?")
            )
    return rows, missing


def render_markdown(rows: "list[dict]", missing: "list[str]") -> str:
    """The trajectory table as GitHub-flavoured markdown."""
    lines = [
        "# Benchmark trajectory",
        "",
        "| Bench | Metric | Gate | Measured | Pass | PR |",
        "|---|---|---|---|---|---|",
    ]
    for r in rows:
        mark = "yes" if r["pass"] else "**NO**"
        lines.append(
            f"| {r['bench']} | {r['metric']} | {r['gate']} "
            f"| {r['measured']} | {mark} | {r['pr']} |"
        )
    if not rows:
        lines.append("| - | no artifacts found | - | - | - | - |")
    if missing:
        lines += ["", f"Missing artifacts: {', '.join(missing)}"]
    return "\n".join(lines) + "\n"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-report",
        description="Aggregate BENCH_*.json gate results into one table.",
    )
    parser.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json files (default: cwd)",
    )
    parser.add_argument(
        "--md", default=None, metavar="PATH",
        help="write the markdown table here (default: print to stdout)",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the rows as machine-readable JSON",
    )
    args = parser.parse_args(argv)
    rows, missing = collect(Path(args.dir))
    markdown = render_markdown(rows, missing)
    if args.md is not None:
        Path(args.md).write_text(markdown, encoding="utf-8")
        print(f"wrote {args.md} ({len(rows)} rows)")
    else:
        print(markdown, end="")
    if args.json_out is not None:
        Path(args.json_out).write_text(
            json.dumps(
                {"rows": rows, "missing": missing}, indent=2, sort_keys=True
            ) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
