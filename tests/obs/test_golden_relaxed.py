"""Golden-trace regression test for the relaxed commit order.

A checked-in JSONL fixture records a reference ``relaxed:2`` run of the
hybrid controller on a ``gnm_random(200, d=8)`` draining workload — the
same workload as the strict golden trace, with the commit order relaxed
to depth 2.  Beyond the usual step/decision schema, the fixture pins the
``order_decision`` channel: the exact windowed-draw sequence of the
k-of-top policy, RNG trajectory included.  Any change to the relaxation
semantics, the window-draw kernel, or the event serialisation shows up
as a byte diff here.

Regenerate (only after an intentional semantic change!) with::

    PYTHONPATH=src python -c "from tests.obs.test_golden_relaxed import regenerate; regenerate()"
"""

from pathlib import Path

import numpy as np

from repro.api import run
from repro.config import RunConfig
from repro.graph.generators import gnm_random
from repro.obs import ORDER_DECISION, TraceRecorder, load_jsonl, trajectory, verify_trace

FIXTURE = Path(__file__).parent / "fixtures" / "golden_relaxed2_gnm200_d8.jsonl"

GRAPH_SEED = 2011  # SPAA 2011
ENGINE_SEED = 8
MAX_STEPS = 60
DEPTH = 2


def golden_trace() -> TraceRecorder:
    """The reference run: hybrid control under relaxed:2 commit order."""
    rec = TraceRecorder()
    run(
        RunConfig(
            workload="consuming",
            rho=0.25,
            m_max=64,
            order=f"relaxed:{DEPTH}",
            max_steps=MAX_STEPS,
        ),
        graph=gnm_random(200, 8, seed=GRAPH_SEED),
        seed=ENGINE_SEED,
        recorder=rec,
    )
    return rec


def regenerate() -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    golden_trace().save_jsonl(FIXTURE)
    print(f"wrote {FIXTURE}")


class TestGoldenRelaxedTrace:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), "golden fixture missing; run regenerate()"

    def test_rerun_is_byte_identical(self):
        fresh = golden_trace().to_jsonl()
        assert fresh == FIXTURE.read_text(encoding="utf-8"), (
            "golden relaxed trace drifted: relaxation/draw/serialisation "
            "semantics changed; if intentional, regenerate the fixture"
        )

    def test_fixture_replays_deterministically(self):
        events = load_jsonl(FIXTURE)
        reports = verify_trace(events)
        assert len(reports) == 1
        assert reports[0].controller_type == "HybridController"

    def test_fixture_matches_live_trajectory(self):
        events = load_jsonl(FIXTURE)
        ms_fixture, rs_fixture = trajectory(events)
        ms_live, rs_live = trajectory(golden_trace().events)
        assert np.array_equal(ms_fixture, ms_live)
        assert np.array_equal(rs_fixture, rs_live)

    def test_fixture_shape_sanity(self):
        events = load_jsonl(FIXTURE)
        kinds = [e.kind for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert 0 < kinds.count("step") == kinds.count("select") <= MAX_STEPS
        assert "decision" in kinds
        assert events[0].data["seed"] == ENGINE_SEED
        assert events[0].data["policy"] == f"relaxed:{DEPTH}"
        steps = [e for e in events if e.kind == "step"]
        total_committed = sum(e.data["committed"] for e in steps)
        assert total_committed == 200  # the whole workload drained

    def test_order_decisions_pin_the_draw_sequence(self):
        # one windowed draw per step, window = DEPTH, every in-window
        # rank strictly below it — the replayable decision channel
        events = load_jsonl(FIXTURE)
        decisions = [e for e in events if e.kind == ORDER_DECISION]
        steps = [e for e in events if e.kind == "step"]
        assert len(decisions) == len(steps)
        for decision, step in zip(decisions, steps):
            assert decision.data["policy"] == f"relaxed:{DEPTH}"
            assert decision.data["window"] == DEPTH
            draws = decision.data["draws"]
            assert len(draws) == step.data["launched"]
            assert all(0 <= d < DEPTH for d in draws)
        # depth 2 with fixed seeds must actually exercise both ranks
        flat = [d for e in decisions for d in e.data["draws"]]
        assert set(flat) == {0, 1}
